//! Demonstrates what the round pipeline buys: with a barrier schedule,
//! every worker thread stalls while the serial merge phase drains; with
//! [`itag::crowd::parallel::pipelined_map`], the merge of item `k`
//! overlaps the work on items `> k`, so the wall clock approaches
//! `max(parallel work, serial merge)` instead of their sum — even on one
//! core, when the phases spend their time waiting (I/O, fsync, channel
//! stalls) rather than computing.
//!
//! ```text
//! cargo run --release --example pipeline_overlap
//! ```

use itag::crowd::parallel::{pipelined_map, scoped_map};
use std::time::{Duration, Instant};

fn main() {
    let items: Vec<u32> = (0..16).collect();
    let threads = 4;
    let work = Duration::from_millis(5);
    let merge = Duration::from_millis(5);

    // Barrier schedule: work everything, then merge everything.
    let start = Instant::now();
    let staged = scoped_map(items.clone(), threads, |_, x| {
        std::thread::sleep(work);
        x
    });
    let merged: Vec<u32> = staged
        .into_iter()
        .map(|x| {
            std::thread::sleep(merge);
            x * 2
        })
        .collect();
    let barrier_time = start.elapsed();

    // Pipelined: a dedicated merger drains in order while workers go on.
    let start = Instant::now();
    let pipelined: Vec<u32> = pipelined_map(
        items,
        threads,
        2,
        |_, x| {
            std::thread::sleep(work);
            x
        },
        |_, x| x,
        |_, x| x,
        |_, x| {
            std::thread::sleep(merge);
            x * 2
        },
    );
    let pipelined_time = start.elapsed();

    assert_eq!(merged, pipelined, "identical results by contract");
    println!("barrier schedule: {barrier_time:?}");
    println!("round pipeline:   {pipelined_time:?}");
    println!(
        "overlap win: {:.2}x",
        barrier_time.as_secs_f64() / pipelined_time.as_secs_f64()
    );
}
