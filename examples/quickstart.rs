//! Quickstart: improve the tagging quality of a skewed corpus with a
//! budget of crowdsourced tagging tasks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use itag::model::delicious::DeliciousConfig;
use itag::quality::metric::QualityMetric;
use itag::strategy::framework::Framework;
use itag::strategy::simenv::SimWorld;
use itag::strategy::StrategyKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A Delicious-like corpus: 1000 resources, popularity-skewed posts.
    let corpus = DeliciousConfig {
        resources: 1_000,
        initial_posts: 5_000,
        eval_posts: 0,
        seed: 42,
        ..DeliciousConfig::default()
    }
    .generate();
    let stats = corpus.dataset.stats();
    println!(
        "corpus: {} resources, {} posts, gini {:.2}, {:.0}% untagged",
        stats.resources,
        stats.total_posts,
        stats.gini,
        stats.zero_fraction * 100.0
    );

    // 2. Wrap it in a simulation world with the paper's stability metric.
    let mut world = SimWorld::new(corpus.dataset, QualityMetric::default());

    // 3. Spend a budget of 5000 tasks with the FP-MU hybrid (Table I's
    //    "most effective" strategy).
    let mut strategy = StrategyKind::FpMu { min_posts: 5 }.build();
    let mut rng = StdRng::seed_from_u64(7);
    let report = Framework::default().run(&mut world, strategy.as_mut(), 5_000, &mut rng);

    // 4. The objective of the paper: q(R, c+x) − q(R, c).
    println!(
        "strategy {}: quality {:.4} → {:.4} (improvement {:+.4}) over {} tasks",
        report.strategy,
        report.initial_quality,
        report.final_quality,
        report.improvement(),
        report.spent
    );
    for point in report.series.iter().step_by(4) {
        let bar = "#".repeat((point.mean_quality * 50.0) as usize);
        println!(
            "  B={:>5}  q={:.4} {}",
            point.spent, point.mean_quality, bar
        );
    }
}
