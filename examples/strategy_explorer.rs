//! Interactive-ish strategy exploration: sweep one knob from the command
//! line and compare strategies under it.
//!
//! ```text
//! cargo run --release --example strategy_explorer -- noise 0.5
//! cargo run --release --example strategy_explorer -- window 10
//! cargo run --release --example strategy_explorer -- budget 8000
//! cargo run --release --example strategy_explorer -- resources 5000
//! ```

use itag::model::delicious::DeliciousConfig;
use itag::quality::metric::{QualityMetric, StabilityKernel};
use itag::strategy::framework::Framework;
use itag::strategy::simenv::SimWorld;
use itag::strategy::StrategyKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Knobs {
    resources: usize,
    budget: u32,
    noise: f64,
    window: u32,
}

impl Default for Knobs {
    fn default() -> Self {
        Knobs {
            resources: 1_000,
            budget: 5_000,
            noise: 0.0,
            window: 5,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut knobs = Knobs::default();
    if args.len() >= 2 {
        let value = &args[1];
        match args[0].as_str() {
            "noise" => knobs.noise = value.parse().expect("noise in [0,1]"),
            "window" => knobs.window = value.parse().expect("window ≥ 1"),
            "budget" => knobs.budget = value.parse().expect("budget ≥ 0"),
            "resources" => knobs.resources = value.parse().expect("resources ≥ 1"),
            other => {
                eprintln!("unknown knob '{other}' (noise|window|budget|resources)");
                std::process::exit(2);
            }
        }
    }
    println!(
        "n={} budget={} noise={} window={}\n",
        knobs.resources, knobs.budget, knobs.noise, knobs.window
    );

    let corpus = DeliciousConfig {
        resources: knobs.resources,
        initial_posts: knobs.resources * 5,
        eval_posts: 0,
        seed: 0xE5,
        ..DeliciousConfig::default()
    }
    .generate();
    let metric = QualityMetric::Stability {
        window: knobs.window,
        kernel: StabilityKernel::Cosine,
    };

    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>10}",
        "strategy", "Δq(stab)", "Δq(oracle)", "q≥0.9", "spent"
    );
    for kind in StrategyKind::paper_lineup(knobs.window) {
        let mut world = SimWorld::new(corpus.dataset.clone(), metric).with_noise(knobs.noise);
        let oracle0 = world.oracle_mean_quality();
        let mut strategy = kind.build();
        let mut rng = StdRng::seed_from_u64(0xE5);
        let report =
            Framework::default().run(&mut world, strategy.as_mut(), knobs.budget, &mut rng);
        println!(
            "{:<8} {:>+10.4} {:>+10.4} {:>12} {:>10}",
            report.strategy,
            report.improvement(),
            world.oracle_mean_quality() - oracle0,
            world.count_quality_at_least(0.9),
            report.spent,
        );
    }
}
