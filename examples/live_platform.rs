//! The full iTag system driven like the demo (Figs. 3–8): a provider adds
//! a project, monitors quality in real time, promotes and stops individual
//! resources, reacts to notifications, switches strategies, and finally
//! exports the tagged corpus.
//!
//! ```text
//! cargo run --release --example live_platform
//! ```

use itag::core::config::EngineConfig;
use itag::core::engine::ITagEngine;
use itag::core::monitor::SortKey;
use itag::core::notify::Notification;
use itag::core::project::ProjectSpec;
use itag::model::delicious::DeliciousConfig;
use itag::strategy::StrategyKind;

fn main() {
    let mut engine = ITagEngine::new(EngineConfig::in_memory(0xD3)).expect("engine");

    // --- Provider signs up and adds a project (Fig. 4) ---------------
    let provider = engine.register_provider("acme-datasets").expect("register");
    let dataset = DeliciousConfig {
        resources: 300,
        initial_posts: 1_500,
        eval_posts: 0,
        seed: 0xD3,
        ..DeliciousConfig::default()
    }
    .generate()
    .dataset;
    let mut spec = ProjectSpec::demo("web-urls-2010", 3_000);
    spec.description = "Low-quality Web URL tags from the 2010 crawl".into();
    let project = engine
        .add_project(provider, spec, dataset)
        .expect("project");
    println!("created {project} for provider {provider}\n");

    // iTag suggests a strategy from the corpus statistics.
    let suggestion = engine.suggest_strategy(project).expect("suggest");
    println!("iTag suggests: {}\n", suggestion.label());

    // --- First funding tranche; monitor (Fig. 3) ---------------------
    engine.run(project, 1_000).expect("run");
    let mut m = engine.monitor(project).expect("monitor");
    m.sort_rows(SortKey::QualityAsc);
    println!("{}", m.render_table(8));

    // --- Manual steering (Promote / Stop buttons) --------------------
    let worst = m.rows.first().expect("rows").id;
    let best = m.rows.last().expect("rows").id;
    engine.promote(project, worst).expect("promote");
    engine.stop_resource(project, best).expect("stop");
    println!("promoted {worst} (worst quality), stopped {best} (already good)\n");

    // --- Provider dissatisfied with progress: switch strategy (Fig. 5)
    engine
        .switch_strategy(project, StrategyKind::MostUnstable)
        .expect("switch");
    engine.run(project, 1_000).expect("run");

    // --- Single-resource drill-down (Fig. 6) -------------------------
    let detail = engine.resource_detail(project, worst).expect("detail");
    println!(
        "resource {} [{}] posts={} quality={:.4}",
        detail.id, detail.uri, detail.posts, detail.quality
    );
    for (tag, count) in detail.top_tags.iter().take(5) {
        println!("  {tag:<16} ×{count}");
    }
    println!();

    // --- Notifications (Fig. 6's Notification section) ---------------
    let notes = engine.take_notifications();
    let decided = notes
        .iter()
        .filter(|n| matches!(n, Notification::TagDecided { .. }))
        .count();
    println!(
        "{} notifications ({} tag decisions); last non-tag events:",
        notes.len(),
        decided
    );
    for n in notes
        .iter()
        .filter(|n| !matches!(n, Notification::TagDecided { .. }))
        .rev()
        .take(5)
    {
        println!("  {n:?}");
    }
    println!();

    // --- Finish the budget; settle accounts --------------------------
    engine.run(project, u32::MAX).expect("run to completion");
    let m = engine.monitor(project).expect("monitor");
    println!(
        "final: state={} quality {:.4} (Δ {:+.4}) | {} approved, {} rejected | paid {}c refunded {}c",
        m.state,
        m.quality_mean,
        m.improvement(),
        m.tasks_approved,
        m.tasks_rejected,
        m.paid,
        m.refunded
    );
    println!(
        "provider approval rate (generosity): {:.2}",
        engine.provider_approval_rate(provider).expect("rate")
    );

    // --- Export (the Export button) -----------------------------------
    let export = engine.export(project).expect("export");
    let csv = export.to_csv();
    println!(
        "\nexport: {} resources; first CSV lines:",
        export.resources.len()
    );
    for line in csv.lines().take(4) {
        println!("  {line}");
    }
}
