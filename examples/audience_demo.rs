//! The demonstration's "Audience Participation" mode (Section IV): the
//! audience tags resources live, earning incentives when the provider
//! approves — here scripted, but through the exact API a conference-room
//! UI (or a real marketplace adapter) would call.
//!
//! ```text
//! cargo run --release --example audience_demo
//! ```

use itag::core::config::EngineConfig;
use itag::core::engine::ITagEngine;
use itag::core::project::ProjectSpec;
use itag::crowd::audience::ManualPlatform;
use itag::crowd::platform::{CrowdPlatform, PlatformKind};
use itag::model::delicious::DeliciousConfig;
use itag::model::ids::TaggerId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut engine = ITagEngine::new(EngineConfig::in_memory(0xA0D1)).expect("engine");
    let provider = engine
        .register_provider("icde-demo-host")
        .expect("register");

    // The host publishes one of the "several prepared workloads".
    let corpus = DeliciousConfig {
        resources: 60,
        initial_posts: 240,
        eval_posts: 0,
        seed: 0xA0D1,
        ..DeliciousConfig::default()
    }
    .generate();
    let latents = corpus.dataset.latent.clone();
    let project = engine
        .add_project_with_platform(
            provider,
            ProjectSpec::demo("audience-session", 120),
            corpus.dataset,
            Box::new(ManualPlatform::new(PlatformKind::Facebook)),
        )
        .expect("project");

    println!("audience session open: 120 tasks, 5c each\n");
    let mut rng = StdRng::seed_from_u64(0xA0D1);

    // Six rounds: publish a batch, the "audience" tags what's open.
    for round in 1..=6 {
        let published = engine.publish_batch(project, 20).expect("publish");
        let open: Vec<_> = {
            let platform: &mut ManualPlatform = engine.platform_mut(project).expect("platform");
            let ids: Vec<_> = platform.open_task_ids().collect();
            ids.iter()
                .map(|&t| (t, platform.task(t).expect("open task").resource))
                .collect()
        };

        // Audience members (varying diligence) claim and tag.
        for (task, resource) in open {
            let member = TaggerId(rng.gen_range(0..12u32));
            let latent = &latents[resource.index()];
            // Most members copy the resource's evident tags; a few troll.
            let tags = if rng.gen::<f64>() < 0.85 {
                latent.top_k(2 + rng.gen_range(0..2usize)).to_vec()
            } else {
                vec![itag::model::ids::TagId(rng.gen_range(0..5_000u32))]
            };
            let platform: &mut ManualPlatform = engine.platform_mut(project).expect("platform");
            let _ = platform.submit(task, member, tags);
        }

        let (approved, rejected) = engine.collect_once(project).expect("collect");
        let m = engine.monitor(project).expect("monitor");
        println!(
            "round {round}: published {published:>2}, approved {approved:>2}, rejected {rejected:>2} | quality {:.4} (Δ {:+.4})",
            m.quality_mean,
            m.improvement()
        );
    }

    let m = engine.monitor(project).expect("monitor");
    println!(
        "\nsession over: {} approved, {} rejected, {}c paid to the audience, {}c saved by rejections",
        m.tasks_approved, m.tasks_rejected, m.paid, m.refunded
    );
    let listings = engine.browse_projects().expect("browse");
    println!(
        "tagger-side listing: '{}' pays {}c/task, provider approval rate {:.2}",
        listings[0].name, listings[0].pay_per_task_cents, listings[0].provider_approval_rate
    );
}
