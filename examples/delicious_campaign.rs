//! The Section-IV demonstration protocol on the synthetic Delicious trace:
//! split the tagging history at a point in time ("before February 1st
//! 2007"), treat the earlier posts as the providers' data, and compare all
//! allocation strategies — including the optimal — on the later era.
//!
//! ```text
//! cargo run --release --example delicious_campaign
//! ```

use itag::model::delicious::DeliciousConfig;
use itag::quality::metric::QualityMetric;
use itag::strategy::framework::Framework;
use itag::strategy::simenv::SimWorld;
use itag::strategy::StrategyKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // "We have prepared all tagging data for Web URLs from Delicious" —
    // here: the synthetic equivalent, with an explicit temporal split.
    let corpus = DeliciousConfig {
        resources: 2_000,
        initial_posts: 10_000,
        eval_posts: 20_000,
        seed: 2010,
        ..DeliciousConfig::default()
    }
    .generate();

    let (provider_era, eval_era) = corpus.eval_trace.split_at_time(10_000);
    println!(
        "trace: {} provider-era events kept aside, {} evaluation events, {} initial posts",
        provider_era.len(),
        eval_era.len(),
        corpus.dataset.initial_posts.len()
    );
    let stats = corpus.dataset.stats();
    println!(
        "pre-campaign quality of the corpus: gini {:.2}, head share {:.2}, {} resources with zero posts\n",
        stats.gini,
        stats.head_share,
        (stats.zero_fraction * stats.resources as f64) as usize
    );

    // "We demonstrate in our system how different allocation strategies
    // affect the tagging quality, and compare them with the optimal
    // allocation strategy."
    let budget = 10_000u32;
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12}",
        "strategy", "Δq(stab)", "Δq(oracle)", "low-post", "q≥0.9"
    );
    for kind in StrategyKind::paper_lineup(5) {
        let mut world = SimWorld::new(corpus.dataset.clone(), QualityMetric::default());
        let oracle0 = world.oracle_mean_quality();
        let mut strategy = kind.build();
        let mut rng = StdRng::seed_from_u64(2010);
        let report = Framework::default().run(&mut world, strategy.as_mut(), budget, &mut rng);
        println!(
            "{:<8} {:>+10.4} {:>+10.4} {:>12} {:>12}",
            report.strategy,
            report.improvement(),
            world.oracle_mean_quality() - oracle0,
            world.count_below_posts(10),
            world.count_quality_at_least(0.9),
        );
    }
    println!(
        "\nExpected shape (paper §IV / Table I): FC worst, FP best on low-post,\n\
         MU best on q≥τ, FP-MU closest to OPT on Δq, OPT on top."
    );
}
