//! Repo-invariant lint: a registry-free, token-level checker for the
//! cross-cutting rules the compiler cannot see.
//!
//! The workspace has conventions that span crates — "environment knobs
//! are read in exactly two places", "the store never panics on its
//! commit/recovery paths", "locks go through the instrumented
//! `parking_lot` shim", "determinism-contracted regions never read the
//! clock". Each lives in module docs somewhere; this lint makes them
//! enforceable. It has no `syn`, no registry dependency at all: it walks
//! `crates/*/src` and `src/`, strips comments and string literals with a
//! small state machine, tracks `#[cfg(test)]` regions by brace depth,
//! and matches tokens line by line.
//!
//! ## Rules
//!
//! * `env-var` — `std::env::var` (and `var_os`) may appear only in
//!   `crates/core/src/config.rs` (the engine's sanctioned override
//!   surface) and `crates/store/src/envknob.rs` (the raw store's shared
//!   strict parser). Everything else must take configuration as
//!   arguments.
//! * `store-unwrap` — no `.unwrap()` / `.expect(` in non-test store
//!   code: commit and recovery paths return typed `StoreError`s instead
//!   of unwinding mid-protocol.
//! * `std-sync` — no direct `std::sync::{Mutex, RwLock, Condvar}`
//!   anywhere under `crates/`: every crate must use the instrumented
//!   `parking_lot` shim so the lockcheck tracker sees each acquisition.
//!   (`crowd::model` is the one exemption — its scheduler IS the
//!   instrumentation and needs the raw primitives, as does the shim
//!   itself, which is not walked.)
//! * `determinism-instant` — no `Instant::now()` / `SystemTime::now()`
//!   between a `lint: determinism` fence comment and its matching
//!   `lint: end determinism`: fenced regions promise bit-identical
//!   output for a given input and seed.
//!
//! ## Directives
//!
//! A comment line of exactly `lint: allow(<rule>)` (after `//`) waives
//! the next match of `<rule>` within the following four lines. Waivers
//! are budgeted per rule ([`waiver_budget`]): a rule at budget zero
//! cannot be waived at all — extending its allowlist here, in reviewed
//! code, is the only way out. A waiver that suppresses nothing is a
//! violation too (stale waivers rot), as is a waiver naming an unknown
//! rule. Fences open with `lint: determinism` and close with
//! `lint: end determinism`; unbalanced fences are violations.
//!
//! `allow(panic-path)` is accepted but handled by the call-graph
//! analyses in [`crate::analyze`] (function-granular, budgeted there).

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule breach (or lint-configuration problem) at a location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Root-relative path with forward slashes.
    pub file: String,
    /// 1-based line, 0 for file-level problems.
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A waiver directive that suppressed a match.
#[derive(Debug, Clone)]
pub struct UsedWaiver {
    pub file: String,
    pub line: usize,
    pub rule: String,
}

/// Outcome of a lint run.
#[derive(Debug, Default)]
pub struct LintReport {
    pub violations: Vec<Violation>,
    pub files_scanned: usize,
    /// Every waiver that actually fired — the run's reviewed-exception
    /// list, printed even on clean runs so it stays visible.
    pub waivers_used: Vec<UsedWaiver>,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

const RULES: [&str; 4] = ["env-var", "store-unwrap", "std-sync", "determinism-instant"];

/// Rules handled by the call-graph analyses in `crate::analyze`, not
/// here. Their `lint: allow(...)` directives are legal comments (so a
/// file can carry both kinds), but this lint neither applies nor
/// stale-tracks them — `itag-lint panics` does.
const EXTERNAL_RULES: [&str; 1] = ["panic-path"];

/// Files where `env::var` is sanctioned.
const ENV_VAR_ALLOWED: [&str; 2] = ["crates/core/src/config.rs", "crates/store/src/envknob.rs"];

/// The `std-sync` rule covers every crate except `crowd::model`: the
/// schedule explorer IS the instrumentation and needs raw primitives
/// (as does the `parking_lot` shim itself, which is not walked).
fn std_sync_in_scope(rel: &str) -> bool {
    rel.starts_with("crates/") && rel != "crates/crowd/src/model.rs"
}

/// How many `lint: allow(<rule>)` directives each rule tolerates
/// repo-wide. Raising a budget is a reviewed change to this file.
pub fn waiver_budget(rule: &str) -> usize {
    match rule {
        // The two apply-batch shard-guard expects in `store::db`: the
        // guard set is computed from the same routes the loop indexes
        // with, and the batch is already in the WAL — there is no caller
        // left to surface an error to.
        "store-unwrap" => 2,
        _ => 0,
    }
}

/// A directive window: waives `rule` matches on lines
/// `line..=line + WAIVER_WINDOW`.
const WAIVER_WINDOW: usize = 4;

struct Waiver {
    rule: String,
    line: usize,
    used: bool,
}

/// Lints the workspace rooted at `root`; see the module docs for the
/// rule set.
pub fn run(root: &Path) -> LintReport {
    let mut report = LintReport::default();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    collect_rs_files(&root.join("src"), &mut files);
    files.sort();

    let mut waivers_per_rule: Vec<(String, usize)> = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(content) = std::fs::read_to_string(path) else {
            report.violations.push(Violation {
                file: rel,
                line: 0,
                rule: "env-var",
                message: "file could not be read as UTF-8".into(),
            });
            continue;
        };
        report.files_scanned += 1;
        lint_file(&rel, &content, &mut report, &mut waivers_per_rule);
    }

    for rule in RULES {
        let used = waivers_per_rule
            .iter()
            .filter(|(r, _)| r == rule)
            .map(|(_, n)| n)
            .sum::<usize>();
        let budget = waiver_budget(rule);
        if used > budget {
            report.violations.push(Violation {
                file: "<workspace>".into(),
                line: 0,
                rule: rule_static(rule),
                message: format!(
                    "{used} waivers for rule `{rule}` exceed its budget of {budget}; \
                     fix the new site or raise the budget in src/lint.rs (reviewed)"
                ),
            });
        }
    }
    report
}

fn rule_static(rule: &str) -> &'static str {
    RULES
        .iter()
        .find(|r| **r == rule)
        .copied()
        .unwrap_or("env-var")
}

pub(crate) fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if matches!(name.as_ref(), "tests" | "benches" | "examples" | "target") {
                continue;
            }
            collect_rs_files(&path, out);
        } else if name.ends_with(".rs") && name != "testutil.rs" {
            out.push(path);
        }
    }
}

fn lint_file(
    rel: &str,
    content: &str,
    report: &mut LintReport,
    waivers_per_rule: &mut Vec<(String, usize)>,
) {
    let stripped = strip_comments_and_strings(content);
    let raw_lines: Vec<&str> = content.lines().collect();
    let code_lines: Vec<&str> = stripped.lines().collect();

    let mut waivers: Vec<Waiver> = Vec::new();
    let mut fence_open_at: Option<usize> = None;
    let mut depth: i32 = 0;
    let mut test_region: Option<i32> = None;
    let mut pending_test = false;

    // Pattern text lives in literals so the lint never flags itself:
    // string contents are stripped before matching.
    let p_env = "env::var";
    let p_unwrap = ".unwrap()";
    let p_expect = ".expect(";
    let p_std_sync = "std::sync::";
    let p_instant = "Instant::now";
    let p_systime = "SystemTime::now";

    for (idx, raw) in raw_lines.iter().enumerate() {
        let line_no = idx + 1;
        let trimmed = raw.trim_start();

        // -- directives (read from the raw line; they are comments) --
        if let Some(rest) = trimmed.strip_prefix("// lint: ") {
            let rest = rest.trim_end();
            if rest == "determinism" {
                if fence_open_at.is_some() {
                    report.violations.push(Violation {
                        file: rel.into(),
                        line: line_no,
                        rule: "determinism-instant",
                        message: "nested determinism fence (previous one never closed)".into(),
                    });
                }
                fence_open_at = Some(line_no);
            } else if rest == "end determinism" {
                if fence_open_at.take().is_none() {
                    report.violations.push(Violation {
                        file: rel.into(),
                        line: line_no,
                        rule: "determinism-instant",
                        message: "`end determinism` without an open fence".into(),
                    });
                }
            } else if let Some(rule) = rest
                .strip_prefix("allow(")
                .and_then(|r| r.strip_suffix(')'))
            {
                if RULES.contains(&rule) {
                    waivers.push(Waiver {
                        rule: rule.to_string(),
                        line: line_no,
                        used: false,
                    });
                } else if EXTERNAL_RULES.contains(&rule) {
                    // Owned by crate::analyze; nothing to do here.
                } else {
                    report.violations.push(Violation {
                        file: rel.into(),
                        line: line_no,
                        rule: rule_static(rule),
                        message: format!("waiver names unknown rule `{rule}`"),
                    });
                }
            }
            // Anything else after "// lint: " is prose, not a directive.
        }

        let code = code_lines.get(idx).copied().unwrap_or("");

        // -- test-region tracking --
        let in_test = test_region.is_some() || pending_test;
        if test_region.is_none() && code.contains("cfg(test") {
            pending_test = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if pending_test {
                        test_region = Some(depth);
                        pending_test = false;
                    }
                }
                '}' => {
                    depth -= 1;
                    if let Some(d) = test_region {
                        if depth < d {
                            test_region = None;
                        }
                    }
                }
                ';' => {
                    // `#[cfg(test)] use ...;` — item without a body.
                    pending_test = false;
                }
                _ => {}
            }
        }
        if in_test {
            continue;
        }

        // -- rules --
        let mut flag = |rule: &'static str, message: String| {
            if let Some(w) = waivers.iter_mut().find(|w| {
                w.rule == rule && !w.used && (w.line..=w.line + WAIVER_WINDOW).contains(&line_no)
            }) {
                w.used = true;
                report.waivers_used.push(UsedWaiver {
                    file: rel.into(),
                    line: w.line,
                    rule: rule.to_string(),
                });
                return;
            }
            report.violations.push(Violation {
                file: rel.into(),
                line: line_no,
                rule,
                message,
            });
        };

        if code.contains(p_env) && !ENV_VAR_ALLOWED.contains(&rel) {
            flag(
                "env-var",
                "environment read outside core::config / store::envknob; \
                 take the value as an argument instead"
                    .into(),
            );
        }
        if rel.starts_with("crates/store/src/")
            && (code.contains(p_unwrap) || code.contains(p_expect))
        {
            flag(
                "store-unwrap",
                "panic in non-test store code; return a typed StoreError".into(),
            );
        }
        if std_sync_in_scope(rel)
            && code.contains(p_std_sync)
            && ["Mutex", "RwLock", "Condvar"]
                .iter()
                .any(|t| code.contains(t))
        {
            flag(
                "std-sync",
                "direct std::sync lock where the instrumented parking_lot shim is mandated".into(),
            );
        }
        if fence_open_at.is_some() && (code.contains(p_instant) || code.contains(p_systime)) {
            flag(
                "determinism-instant",
                "clock read inside a determinism fence".into(),
            );
        }
    }

    if let Some(open) = fence_open_at {
        report.violations.push(Violation {
            file: rel.into(),
            line: open,
            rule: "determinism-instant",
            message: "determinism fence never closed".into(),
        });
    }

    for w in waivers {
        if w.used {
            waivers_per_rule.push((w.rule, 1));
        } else {
            report.violations.push(Violation {
                file: rel.into(),
                line: w.line,
                rule: rule_static(&w.rule),
                message: format!("stale waiver: no `{}` match within its window", w.rule),
            });
        }
    }
}

/// Blanks comments, string/char literals, and raw strings, preserving
/// newlines (so line numbers survive) and all other code characters.
fn strip_comments_and_strings(content: &str) -> String {
    let b: Vec<char> = content.chars().collect();
    let mut out = String::with_capacity(b.len());
    let mut i = 0usize;

    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(usize),
        CharLit,
    }
    let mut st = St::Code;

    // Pushes a blank for a consumed non-code char, keeping newlines.
    fn blank(out: &mut String, c: char) {
        out.push(if c == '\n' { '\n' } else { ' ' });
    }

    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => {
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    st = St::LineComment;
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(1);
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Str;
                    out.push(' ');
                    i += 1;
                } else if c == 'r' && !prev_is_ident(&b, i) {
                    // Possible raw string: r#*"
                    let mut j = i + 1;
                    let mut hashes = 0usize;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        st = St::RawStr(hashes);
                        for _ in i..=j {
                            out.push(' ');
                        }
                        i = j + 1;
                    } else {
                        out.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    match b.get(i + 1) {
                        Some('\\') => {
                            st = St::CharLit;
                            out.push(' ');
                            i += 1;
                        }
                        Some(_) if b.get(i + 2) == Some(&'\'') => {
                            // 'x' — a plain char literal.
                            out.push_str("   ");
                            i += 3;
                        }
                        _ => {
                            // A lifetime; keep it as code.
                            out.push(c);
                            i += 1;
                        }
                    }
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
                i += 1;
            }
            St::BlockComment(depth) => {
                if c == '*' && b.get(i + 1) == Some(&'/') {
                    let d = depth - 1;
                    st = if d == 0 {
                        St::Code
                    } else {
                        St::BlockComment(d)
                    };
                    out.push_str("  ");
                    i += 2;
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(depth + 1);
                    out.push_str("  ");
                    i += 2;
                } else {
                    blank(&mut out, c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' && i + 1 < b.len() {
                    blank(&mut out, c);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else {
                    if c == '"' {
                        st = St::Code;
                    }
                    blank(&mut out, c);
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' && (0..hashes).all(|k| b.get(i + 1 + k) == Some(&'#')) {
                    for k in 0..=hashes {
                        blank(&mut out, *b.get(i + k).unwrap_or(&' '));
                    }
                    i += 1 + hashes;
                    st = St::Code;
                } else {
                    blank(&mut out, c);
                    i += 1;
                }
            }
            St::CharLit => {
                if c == '\\' && i + 1 < b.len() {
                    blank(&mut out, c);
                    blank(&mut out, b[i + 1]);
                    i += 2;
                } else {
                    if c == '\'' {
                        st = St::Code;
                    }
                    blank(&mut out, c);
                    i += 1;
                }
            }
        }
    }
    out
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_source(rel: &str, src: &str) -> LintReport {
        let mut report = LintReport::default();
        let mut wpr = Vec::new();
        lint_file(rel, src, &mut report, &mut wpr);
        report
    }

    #[test]
    fn stripping_blanks_comments_strings_and_chars_but_not_lifetimes() {
        let src = "let a = \"env::var\"; // env::var\nfn f<'a>(x: &'a str) { let c = 'x'; }\n";
        let s = strip_comments_and_strings(src);
        assert!(!s.contains("env::var"));
        assert!(s.contains("fn f<'a>(x: &'a str)"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn stripping_handles_raw_strings_and_nested_block_comments() {
        let src = "let p = r#\"std::sync::Mutex\"#; /* outer /* std::sync::Mutex */ still */ let q = 1;\n";
        let s = strip_comments_and_strings(src);
        assert!(!s.contains("Mutex"));
        assert!(s.contains("let q = 1;"));
    }

    #[test]
    fn env_var_flagged_outside_allowlist_only() {
        let bad = "fn f() { let v = std::env::var(\"X\"); }\n";
        assert_eq!(
            lint_source("crates/core/src/engine.rs", bad)
                .violations
                .len(),
            1
        );
        assert!(lint_source("crates/core/src/config.rs", bad).is_clean());
        assert!(lint_source("crates/store/src/envknob.rs", bad).is_clean());
    }

    #[test]
    fn store_unwrap_skips_test_modules() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn g(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   }\n";
        let r = lint_source("crates/store/src/db.rs", src);
        assert_eq!(r.violations.len(), 1, "{:?}", r.violations);
        assert_eq!(r.violations[0].line, 1);
    }

    #[test]
    fn waiver_suppresses_within_window_and_stale_waivers_are_flagged() {
        let waived = "// lint: allow(store-unwrap)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let r = lint_source("crates/store/src/db.rs", waived);
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.waivers_used.len(), 1);

        let stale = "// lint: allow(store-unwrap)\nfn f() {}\n";
        let r = lint_source("crates/store/src/db.rs", stale);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("stale"));

        let unknown = "// lint: allow(no-such-rule)\n";
        let r = lint_source("crates/store/src/db.rs", unknown);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("unknown rule"));

        // Externally-owned rules pass through without stale-tracking.
        let external = "// lint: allow(panic-path)\nfn f() {}\n";
        assert!(lint_source("crates/store/src/db.rs", external).is_clean());
    }

    #[test]
    fn std_sync_scope_covers_parallel_but_not_model() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(
            lint_source("crates/crowd/src/parallel.rs", src)
                .violations
                .len(),
            1
        );
        assert!(lint_source("crates/crowd/src/model.rs", src).is_clean());
        assert_eq!(
            lint_source("crates/store/src/db.rs", src).violations.len(),
            1
        );
        // The server's session/engine locks must go through the shim too.
        assert_eq!(
            lint_source("crates/server/src/queue.rs", src)
                .violations
                .len(),
            1
        );
        // Since PR 9 the scope is every crate (minus model.rs).
        for rel in [
            "crates/quality/src/metric.rs",
            "crates/strategy/src/lib.rs",
            "crates/model/src/delicious.rs",
            "crates/crowd/src/behavior.rs",
        ] {
            assert_eq!(lint_source(rel, src).violations.len(), 1, "{rel}");
        }
        // Arc and atomics are fine everywhere.
        assert!(lint_source("crates/store/src/db.rs", "use std::sync::Arc;\n").is_clean());
    }

    #[test]
    fn determinism_fence_catches_clock_reads_and_unbalanced_fences() {
        let src =
            "// lint: determinism\nlet t = std::time::Instant::now();\n// lint: end determinism\n";
        let r = lint_source("crates/crowd/src/parallel.rs", src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].line, 2);

        let outside = "let t = std::time::Instant::now();\n";
        assert!(lint_source("crates/crowd/src/parallel.rs", outside).is_clean());

        let unclosed = "// lint: determinism\nfn f() {}\n";
        let r = lint_source("crates/crowd/src/parallel.rs", unclosed);
        assert_eq!(r.violations.len(), 1);
        assert!(r.violations[0].message.contains("never closed"));
    }

    #[test]
    fn the_workspace_itself_is_clean() {
        // The tier-1 gate also lives in tests/lint_clean.rs; this copy
        // keeps `cargo test -p itag --lib` self-contained.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let report = run(root);
        assert!(
            report.is_clean(),
            "repo lint violations:\n{}",
            report
                .violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.files_scanned > 40, "walk found too few files");
    }
}
