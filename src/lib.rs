//! # iTag — incentive-based tagging
//!
//! Facade crate re-exporting the full iTag reproduction stack. Most users
//! want [`core::engine::ITagEngine`] (the whole system) or
//! [`strategy`] + [`quality`] (the pure algorithms).
//!
//! Crate map (bottom-up):
//!
//! * [`store`] — embedded WAL/snapshot storage engine (MySQL substitute),
//! * [`model`] — resources, tags, posts, and the synthetic Delicious trace,
//! * [`quality`] — rfd stability quality metrics and learning curves,
//! * [`strategy`] — the Algorithm-1 framework and FC/FP/MU/FP-MU/OPT,
//! * [`crowd`] — the crowdsourcing platform and tagger simulator,
//! * [`core`] — the iTag engine: managers, projects, monitoring,
//! * [`server`] — the framed-TCP front-end and its blocking client.
//!
//! ```no_run
//! use itag::prelude::*;
//! ```

pub mod analyze;
pub mod lint;

pub use itag_core as core;
pub use itag_crowd as crowd;
pub use itag_model as model;
pub use itag_quality as quality;
pub use itag_server as server;
pub use itag_store as store;
pub use itag_strategy as strategy;

/// Commonly used items, re-exported for examples and downstream users.
pub mod prelude {
    pub use itag_core::config::EngineConfig;
    pub use itag_core::engine::ITagEngine;
    pub use itag_core::project::{ProjectSpec, ProjectState};
    pub use itag_crowd::behavior::TaggerBehavior;
    pub use itag_crowd::platform::PlatformKind;
    pub use itag_model::delicious::{DeliciousConfig, DeliciousDataset};
    pub use itag_model::ids::{ProjectId, ResourceId, TagId, TaggerId};
    pub use itag_quality::metric::{QualityMetric, StabilityKernel};
    pub use itag_strategy::StrategyKind;
}
