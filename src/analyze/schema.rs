//! serbin schema-drift lock.
//!
//! `serbin` is positional: struct fields concatenate in declaration
//! order, enum variants are tagged by declaration index. Reordering
//! `ErrorCode` or a `records.rs` struct silently corrupts wire/disk
//! bytes — nothing fails until a peer or a recovery decodes garbage.
//! This analysis freezes the canonical shape of every
//! `#[derive(Serialize)]` type in the wire protocol and the on-disk
//! record set into `schema.lock`, and diffs it on every run.
//!
//! Evolution rules, per section:
//!
//! * identical fingerprint + identical version → clean;
//! * **enum append-at-end** with a *raised* section version
//!   (`PROTOCOL_VERSION` / `SCHEMA_VERSION`) → clean: positional tags
//!   of existing variants are untouched, so old bytes still decode
//!   (this is how PR 8 added `ErrorCode::Degraded` under protocol v2);
//! * everything else — variant reorder, middle insertion, removal,
//!   field change, struct edits of any kind, version decrease, a new
//!   serialized type, append without a bump — is a violation until a
//!   human re-blesses the lock (`ITAG_BLESS=1` through the gate test,
//!   or `itag-lint schema --bless`). Blessing is the explicit override
//!   that says "I know this breaks decoding of old bytes".

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use super::parse::{ParsedFile, TypeKind};
use super::AnalysisPart;
use crate::lint::Violation;

pub const RULE: &str = "schema-drift";

/// One locked section: serialized types in `file`, versioned by
/// `version_const` in `version_file`.
pub struct Section {
    pub name: &'static str,
    pub file: &'static str,
    pub version_file: &'static str,
    pub version_const: &'static str,
}

/// The repo's sections: the wire protocol and the on-disk records.
pub const SECTIONS: &[Section] = &[
    Section {
        name: "proto",
        file: "crates/server/src/proto.rs",
        version_file: "crates/server/src/proto.rs",
        version_const: "PROTOCOL_VERSION",
    },
    Section {
        name: "records",
        file: "crates/core/src/records.rs",
        version_file: "crates/core/src/engine.rs",
        version_const: "SCHEMA_VERSION",
    },
];

/// Canonical fingerprint of one serialized type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeFp {
    pub kind: TypeKind,
    /// For enums: `(variant, rendered fields)`; for structs:
    /// `(field, type)`. Order is the positional contract.
    pub entries: Vec<(String, String)>,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SectionFp {
    pub version: u64,
    /// Type name → fingerprint (BTreeMap: lock file order is stable).
    pub types: BTreeMap<String, TypeFp>,
}

/// Extracts a section fingerprint from parsed files.
pub fn fingerprint(files: &[ParsedFile], section: &Section) -> Result<SectionFp, String> {
    let Some(pf) = files.iter().find(|f| f.rel == section.file) else {
        return Err(format!(
            "schema file `{}` not found in workspace",
            section.file
        ));
    };
    let Some(vf) = files.iter().find(|f| f.rel == section.version_file) else {
        return Err(format!(
            "version file `{}` not found in workspace",
            section.version_file
        ));
    };
    let Some(vconst) = vf.consts.iter().find(|c| c.name == section.version_const) else {
        return Err(format!(
            "version const `{}` not found in `{}`",
            section.version_const, section.version_file
        ));
    };
    let version = vconst
        .value
        .iter()
        .find_map(|t| match &t.tok {
            super::parse::Tok::Num(n) => {
                let digits: String = n.chars().take_while(|c| c.is_ascii_digit()).collect();
                digits.parse::<u64>().ok()
            }
            _ => None,
        })
        .ok_or_else(|| {
            format!(
                "version const `{}` has no numeric literal value",
                section.version_const
            )
        })?;

    let mut types = BTreeMap::new();
    for ty in &pf.types {
        if ty.in_test
            || !ty
                .derives
                .iter()
                .any(|d| d == "Serialize" || d == "Deserialize")
        {
            continue;
        }
        let entries = match ty.kind {
            TypeKind::Struct => ty
                .fields
                .iter()
                .map(|f| (f.name.clone(), f.ty.clone()))
                .collect(),
            TypeKind::Enum => ty
                .variants
                .iter()
                .map(|v| {
                    let fields = v
                        .fields
                        .iter()
                        .map(|f| format!("{}: {}", f.name, f.ty))
                        .collect::<Vec<_>>()
                        .join(", ");
                    (v.name.clone(), fields)
                })
                .collect(),
        };
        types.insert(
            ty.name.clone(),
            TypeFp {
                kind: ty.kind,
                entries,
            },
        );
    }
    Ok(SectionFp { version, types })
}

// ------------------------------------------------------------ lock IO

/// Renders every section into the `schema.lock` text format.
pub fn render_lock(sections: &[(&str, SectionFp)]) -> String {
    let mut out = String::new();
    out.push_str(
        "# schema.lock — canonical serbin fingerprints (positional: order IS the format).\n\
         # Re-bless after a reviewed change: `itag-lint schema --bless`, or\n\
         # `ITAG_BLESS=1 cargo test --test analysis_gate`.\n",
    );
    for (name, fp) in sections {
        let _ = writeln!(out, "\n[{name}] version={}", fp.version);
        for (tyname, tfp) in &fp.types {
            let _ = writeln!(out, "{} {}", tfp.kind, tyname);
            for (ename, erest) in &tfp.entries {
                if erest.is_empty() {
                    let _ = writeln!(out, "  - {ename}");
                } else {
                    let _ = writeln!(out, "  - {ename} :: {erest}");
                }
            }
        }
    }
    out
}

/// Parses a lock file back into section fingerprints.
pub fn parse_lock(text: &str) -> Result<Vec<(String, SectionFp)>, String> {
    let mut sections: Vec<(String, SectionFp)> = Vec::new();
    let mut cur_type: Option<String> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim_end();
        let lno = idx + 1;
        if line.is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let (name, rest) = rest
                .split_once(']')
                .ok_or_else(|| format!("lock line {lno}: malformed section header"))?;
            let version = rest
                .trim()
                .strip_prefix("version=")
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| format!("lock line {lno}: malformed section version"))?;
            sections.push((
                name.to_string(),
                SectionFp {
                    version,
                    types: BTreeMap::new(),
                },
            ));
            cur_type = None;
            continue;
        }
        if let Some(entry) = line.trim_start().strip_prefix("- ") {
            let (sec, tyname, lno) = match (sections.last_mut(), &cur_type) {
                (Some((_, sec)), Some(ty)) => (sec, ty.clone(), lno),
                _ => return Err(format!("lock line {lno}: entry outside a type")),
            };
            let (ename, erest) = match entry.split_once(" :: ") {
                Some((n, r)) => (n.to_string(), r.to_string()),
                None => (entry.to_string(), String::new()),
            };
            sec.types
                .get_mut(&tyname)
                .ok_or_else(|| format!("lock line {lno}: entry for unknown type"))?
                .entries
                .push((ename, erest));
            continue;
        }
        let (kind, tyname) = line
            .split_once(' ')
            .ok_or_else(|| format!("lock line {lno}: malformed type line"))?;
        let kind = match kind {
            "struct" => TypeKind::Struct,
            "enum" => TypeKind::Enum,
            _ => return Err(format!("lock line {lno}: unknown kind `{kind}`")),
        };
        let Some((_, sec)) = sections.last_mut() else {
            return Err(format!("lock line {lno}: type outside a section"));
        };
        sec.types.insert(
            tyname.to_string(),
            TypeFp {
                kind,
                entries: Vec::new(),
            },
        );
        cur_type = Some(tyname.to_string());
    }
    Ok(sections)
}

// ------------------------------------------------------------ checking

/// Runs the drift check. With `bless`, (re)writes the lock and reports
/// clean.
pub fn check(root: &Path, files: &[ParsedFile], lock_path: &Path, bless: bool) -> AnalysisPart {
    let _ = root;
    let mut part = AnalysisPart::new("schema-drift");

    let mut current: Vec<(&str, SectionFp)> = Vec::new();
    for section in SECTIONS {
        match fingerprint(files, section) {
            Ok(fp) => current.push((section.name, fp)),
            Err(msg) => {
                part.violations.push(Violation {
                    file: section.file.into(),
                    line: 0,
                    rule: RULE,
                    message: msg,
                });
            }
        }
    }
    if !part.violations.is_empty() {
        return part;
    }

    if bless {
        match std::fs::write(lock_path, render_lock(&current)) {
            Ok(()) => part.notes.push(format!("blessed {}", lock_path.display())),
            Err(e) => part.violations.push(Violation {
                file: lock_path.to_string_lossy().into_owned(),
                line: 0,
                rule: RULE,
                message: format!("could not write schema.lock: {e}"),
            }),
        }
        return part;
    }

    let lock_text = match std::fs::read_to_string(lock_path) {
        Ok(t) => t,
        Err(_) => {
            part.violations.push(Violation {
                file: lock_path.to_string_lossy().into_owned(),
                line: 0,
                rule: RULE,
                message: "schema.lock missing — run `itag-lint schema --bless` and commit it"
                    .into(),
            });
            return part;
        }
    };
    let locked = match parse_lock(&lock_text) {
        Ok(l) => l,
        Err(msg) => {
            part.violations.push(Violation {
                file: lock_path.to_string_lossy().into_owned(),
                line: 0,
                rule: RULE,
                message: format!("unparseable schema.lock: {msg}"),
            });
            return part;
        }
    };

    for (name, cur) in &current {
        let Some((_, lock)) = locked.iter().find(|(n, _)| n == name) else {
            part.violations.push(Violation {
                file: "schema.lock".into(),
                line: 0,
                rule: RULE,
                message: format!("section `[{name}]` missing from schema.lock — re-bless"),
            });
            continue;
        };
        diff_section(name, cur, lock, &mut part);
    }
    part
}

fn diff_section(name: &str, cur: &SectionFp, lock: &SectionFp, part: &mut AnalysisPart) {
    let mut flag = |ty: &str, message: String| {
        part.violations.push(Violation {
            file: "schema.lock".into(),
            line: 0,
            rule: RULE,
            message: format!("[{name}] {ty}: {message}"),
        });
    };
    if cur.version < lock.version {
        flag(
            "<version>",
            format!(
                "section version went backwards ({} → {})",
                lock.version, cur.version
            ),
        );
    }
    let bumped = cur.version > lock.version;
    let mut compatible_appends = 0usize;

    for (tyname, lfp) in &lock.types {
        let Some(cfp) = cur.types.get(tyname) else {
            flag(
                tyname,
                "serialized type removed; old bytes become undecodable — re-bless to accept".into(),
            );
            continue;
        };
        if cfp.kind != lfp.kind {
            flag(
                tyname,
                format!("kind changed ({} → {})", lfp.kind, cfp.kind),
            );
            continue;
        }
        if cfp.entries == lfp.entries {
            continue;
        }
        let is_prefix_append = cfp.kind == TypeKind::Enum
            && cfp.entries.len() > lfp.entries.len()
            && cfp.entries[..lfp.entries.len()] == lfp.entries[..];
        if is_prefix_append {
            if bumped {
                compatible_appends += 1;
                part.notes.push(format!(
                    "[{name}] {tyname}: {} variant(s) appended under version bump \
                     {} → {} (compatible; re-bless at leisure)",
                    cfp.entries.len() - lfp.entries.len(),
                    lock.version,
                    cur.version
                ));
            } else {
                flag(
                    tyname,
                    format!(
                        "variant(s) appended without bumping the section version \
                         (still {}); bump it so peers can negotiate",
                        cur.version
                    ),
                );
            }
            continue;
        }
        // Pinpoint the first diverging position for the report.
        let pos = cfp
            .entries
            .iter()
            .zip(lfp.entries.iter())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| cfp.entries.len().min(lfp.entries.len()));
        let locked_at = lfp
            .entries
            .get(pos)
            .map(|(n, _)| n.as_str())
            .unwrap_or("<end>");
        let now_at = cfp
            .entries
            .get(pos)
            .map(|(n, _)| n.as_str())
            .unwrap_or("<end>");
        flag(
            tyname,
            format!(
                "positional layout changed at index {pos} (locked `{locked_at}`, now `{now_at}`); \
                 serbin bytes written by the old layout will decode as garbage — \
                 re-bless schema.lock only after migrating stored/in-flight data"
            ),
        );
    }
    for tyname in cur.types.keys() {
        if !lock.types.contains_key(tyname) {
            flag(
                tyname,
                "new serialized type not in schema.lock — re-bless to freeze its layout".into(),
            );
        }
    }
    if cur.version > lock.version && compatible_appends == 0 && cur.types == lock.types {
        part.notes.push(format!(
            "[{name}] version bumped {} → {} with unchanged layout — re-bless to quiet this note",
            lock.version, cur.version
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parse::parse_file;

    const BASE_PROTO: &str = "pub const PROTOCOL_VERSION: u32 = 2;\n\
         #[derive(Serialize, Deserialize)]\n\
         pub enum ErrorCode { BadRequest, NotFound, Busy, Degraded }\n\
         #[derive(Serialize)]\n\
         pub struct Spec { pub name: String, pub cap: u32 }\n";
    const BASE_RECORDS: &str =
        "#[derive(Serialize, Deserialize)]\npub struct Rec { pub id: u64 }\n";
    const BASE_ENGINE: &str = "pub const SCHEMA_VERSION: u32 = 2;\n";

    fn files(proto: &str, engine: &str) -> Vec<ParsedFile> {
        vec![
            parse_file("crates/server/src/proto.rs", proto),
            parse_file("crates/core/src/records.rs", BASE_RECORDS),
            parse_file("crates/core/src/engine.rs", engine),
        ]
    }

    fn check_against_blessed(proto: &str, engine: &str) -> AnalysisPart {
        let dir = std::env::temp_dir().join(format!(
            "itag-schema-test-{}-{:p}",
            std::process::id(),
            &proto
        ));
        let _ = std::fs::create_dir_all(&dir);
        let lock = dir.join("schema.lock");
        let base = files(BASE_PROTO, BASE_ENGINE);
        let blessed = check(Path::new("."), &base, &lock, true);
        assert!(blessed.is_clean(), "{:?}", blessed.violations);
        let part = check(Path::new("."), &files(proto, engine), &lock, false);
        let _ = std::fs::remove_dir_all(&dir);
        part
    }

    #[test]
    fn identical_schema_is_clean() {
        let part = check_against_blessed(BASE_PROTO, BASE_ENGINE);
        assert!(part.is_clean(), "{:?}", part.violations);
    }

    #[test]
    fn variant_reorder_is_caught_even_with_a_bump() {
        let reordered = "pub const PROTOCOL_VERSION: u32 = 3;\n\
             #[derive(Serialize, Deserialize)]\n\
             pub enum ErrorCode { NotFound, BadRequest, Busy, Degraded }\n\
             #[derive(Serialize)]\n\
             pub struct Spec { pub name: String, pub cap: u32 }\n";
        let part = check_against_blessed(reordered, BASE_ENGINE);
        assert_eq!(part.violations.len(), 1, "{:?}", part.violations);
        assert!(part.violations[0].message.contains("index 0"));
        assert!(part.violations[0].message.contains("decode as garbage"));
    }

    #[test]
    fn append_at_end_with_bump_passes_without_one_fails() {
        let appended_v3 = "pub const PROTOCOL_VERSION: u32 = 3;\n\
             #[derive(Serialize, Deserialize)]\n\
             pub enum ErrorCode { BadRequest, NotFound, Busy, Degraded, Throttled }\n\
             #[derive(Serialize)]\n\
             pub struct Spec { pub name: String, pub cap: u32 }\n";
        let part = check_against_blessed(appended_v3, BASE_ENGINE);
        assert!(part.is_clean(), "{:?}", part.violations);
        assert_eq!(part.notes.len(), 1, "{:?}", part.notes);

        let appended_v2 =
            appended_v3.replace("PROTOCOL_VERSION: u32 = 3", "PROTOCOL_VERSION: u32 = 2");
        let part = check_against_blessed(&appended_v2, BASE_ENGINE);
        assert_eq!(part.violations.len(), 1, "{:?}", part.violations);
        assert!(part.violations[0].message.contains("without bumping"));
    }

    #[test]
    fn struct_field_type_change_is_caught() {
        let changed = BASE_PROTO.replace("pub cap: u32", "pub cap: u64");
        let part = check_against_blessed(&changed, BASE_ENGINE);
        assert_eq!(part.violations.len(), 1, "{:?}", part.violations);
        assert!(part.violations[0].message.contains("Spec"));
    }

    #[test]
    fn version_decrease_and_new_type_are_caught() {
        let down = BASE_PROTO.replace("PROTOCOL_VERSION: u32 = 2", "PROTOCOL_VERSION: u32 = 1");
        let part = check_against_blessed(&down, BASE_ENGINE);
        assert!(part
            .violations
            .iter()
            .any(|v| v.message.contains("backwards")));

        let extra = format!("{BASE_PROTO}#[derive(Serialize)]\npub struct Extra {{ pub x: u8 }}\n");
        let part = check_against_blessed(&extra, BASE_ENGINE);
        assert!(part
            .violations
            .iter()
            .any(|v| v.message.contains("new serialized type")));
    }

    #[test]
    fn lock_roundtrips() {
        let base = files(BASE_PROTO, BASE_ENGINE);
        let fps: Vec<(&str, SectionFp)> = SECTIONS
            .iter()
            .map(|s| (s.name, fingerprint(&base, s).unwrap()))
            .collect();
        let text = render_lock(&fps);
        let parsed = parse_lock(&text).unwrap();
        for ((n1, fp1), (n2, fp2)) in fps.iter().zip(parsed.iter()) {
            assert_eq!(n1, n2);
            assert_eq!(fp1, fp2);
        }
    }
}
