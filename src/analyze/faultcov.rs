//! Fault-site coverage: durability I/O must be reachable by the fault
//! injector, and `faults::SITES` is the single source of truth.
//!
//! Two checks:
//!
//! 1. **Coverage** — every raw `File::create` / `.write_all` /
//!    `.sync_data` / `.sync_all` in `crates/store/src/{wal,snapshot,db}.rs`
//!    must sit in a function that consults a named fault site: directly
//!    (`faults::check_io(SITE)`, `FaultFile::new(_, SITE)`,
//!    `.with_sync_site(SITE)` or any `faults::` reference), through a
//!    tier-A direct callee that does, or on a struct whose fields route
//!    I/O through a `FaultFile` (the writer wrappers). New LSM/MVCC
//!    code that opens a file bare fails here until it claims a site.
//! 2. **Registry** — every site name used anywhere in non-test code
//!    must resolve to a member of `faults::SITES`, and every `SITES`
//!    member must be consulted somewhere (no orphaned sites).

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use super::callgraph::{SiteRef, Workspace};
use super::AnalysisPart;
use crate::lint::Violation;

pub const RULE: &str = "fault-site";

/// Files whose raw I/O must be fault-covered.
const COVERED_FILES: &[&str] = &[
    "crates/store/src/wal.rs",
    "crates/store/src/snapshot.rs",
    "crates/store/src/db.rs",
];

const FAULTS_RS: &str = "crates/store/src/faults.rs";

/// Extracts the site-name registry from `faults.rs`: const name →
/// string value, plus the `SITES` membership list.
pub fn site_registry(ws: &Workspace) -> Option<(BTreeMap<String, String>, BTreeSet<String>)> {
    let pf = ws.files.iter().find(|f| f.rel == FAULTS_RS)?;
    let mut consts: BTreeMap<String, String> = BTreeMap::new();
    for c in &pf.consts {
        if let Some(s) = c.value.iter().find_map(|t| t.str_lit()) {
            consts.insert(c.name.clone(), s.to_string());
        }
    }
    let sites_const = pf.consts.iter().find(|c| c.name == "SITES")?;
    let mut sites: BTreeSet<String> = BTreeSet::new();
    for t in &sites_const.value {
        if let Some(name) = t.ident() {
            if let Some(v) = consts.get(name) {
                sites.insert(v.clone());
            }
        } else if let Some(s) = t.str_lit() {
            sites.insert(s.to_string());
        }
    }
    Some((consts, sites))
}

pub fn check(_root: &Path, ws: &Workspace) -> AnalysisPart {
    let mut part = AnalysisPart::new("fault-site coverage");

    let Some((consts, sites)) = site_registry(ws) else {
        part.violations.push(Violation {
            file: FAULTS_RS.into(),
            line: 0,
            rule: RULE,
            message: "could not extract the SITES registry from faults.rs — \
                      the fault layer moved; update src/analyze/faultcov.rs"
                .into(),
        });
        return part;
    };

    // ---- registry check: every site reference resolves to SITES ----
    let mut consulted: BTreeSet<String> = BTreeSet::new();
    for f in &ws.fns {
        if f.item.in_test || f.file == FAULTS_RS || f.file.starts_with("src/") {
            continue;
        }
        for r in &f.facts.site_refs {
            let (resolved, line, shown) = match r {
                SiteRef::Const(name, line) => {
                    (consts.get(name).cloned(), *line, format!("faults::{name}"))
                }
                SiteRef::Lit(s, line) => (Some(s.clone()), *line, format!("{s:?}")),
            };
            match resolved {
                Some(v) if sites.contains(&v) => {
                    consulted.insert(v);
                }
                Some(v) => {
                    part.violations.push(Violation {
                        file: f.file.clone(),
                        line,
                        rule: RULE,
                        message: format!(
                            "fault site {shown} (= {v:?}) is not a member of faults::SITES — \
                             register it there first"
                        ),
                    });
                }
                None => {
                    part.violations.push(Violation {
                        file: f.file.clone(),
                        line,
                        rule: RULE,
                        message: format!(
                            "fault site {shown} does not resolve to a known faults const"
                        ),
                    });
                }
            }
        }
    }
    for site in &sites {
        if !consulted.contains(site) {
            part.violations.push(Violation {
                file: FAULTS_RS.into(),
                line: 0,
                rule: RULE,
                message: format!(
                    "orphaned fault site {site:?}: listed in SITES but consulted by no \
                     non-test call site"
                ),
            });
        }
    }

    // ---- coverage check ----
    // A fn "consults" if it references faults:: / check_io /
    // FaultFile::new / with_sync_site.
    let n = ws.fns.len();
    let consults: Vec<bool> = ws
        .fns
        .iter()
        .map(|f| f.facts.consults_faults || !f.facts.site_refs.is_empty())
        .collect();
    // Owner structs with a FaultFile-routed field.
    let faultfile_owner = |owner: &Option<String>| -> bool {
        let Some(o) = owner else { return false };
        ws.files.iter().any(|pf| {
            pf.types
                .iter()
                .any(|t| t.name == *o && t.fields.iter().any(|fd| fd.ty.contains("FaultFile")))
        })
    };

    for i in 0..n {
        let f = &ws.fns[i];
        if f.item.in_test || !COVERED_FILES.contains(&f.file.as_str()) {
            continue;
        }
        if f.facts.raw_io.is_empty() {
            continue;
        }
        let covered = consults[i]
            || faultfile_owner(&f.item.owner)
            || ws.edges_a[i].iter().any(|&j| consults[j]);
        if covered {
            continue;
        }
        for (line, what) in &f.facts.raw_io {
            part.violations.push(Violation {
                file: f.file.clone(),
                line: *line,
                rule: RULE,
                message: format!(
                    "raw `{what}` in `{}` without a named fault site in reach — route it \
                     through FaultFile or consult faults::check_io(<SITE>) so torture tests \
                     can injure it",
                    f.qname()
                ),
            });
        }
    }

    part.notes.push(format!(
        "{} registered sites, {} consulted in non-test code",
        sites.len(),
        consulted.len()
    ));
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::callgraph::Workspace;
    use crate::analyze::parse::parse_file;

    const FAULTS_STUB: &str = "pub const WAL_APPEND: &str = \"wal.append\";\n\
         pub const WAL_SYNC: &str = \"wal.sync\";\n\
         pub const SITES: &[&str] = &[WAL_APPEND, WAL_SYNC];\n";

    fn ws(srcs: &[(&str, &str)]) -> Workspace {
        let mut files: Vec<_> = srcs.iter().map(|(r, s)| parse_file(r, s)).collect();
        files.push(parse_file("crates/store/src/faults.rs", FAULTS_STUB));
        Workspace::from_files(files)
    }

    #[test]
    fn uncovered_raw_io_flagged_and_direct_consult_clears_it() {
        let w = ws(&[(
            "crates/store/src/wal.rs",
            "fn bare(p: &Path) { let f = File::create(p); }\n\
             fn guarded(p: &Path) { faults::check_io(faults::WAL_APPEND); let f = File::create(p); f.sync_all(); }\n",
        )]);
        let part = check(Path::new("."), &w);
        let cov: Vec<&Violation> = part
            .violations
            .iter()
            .filter(|v| v.message.contains("without a named fault site"))
            .collect();
        assert_eq!(cov.len(), 1, "{:?}", part.violations);
        assert!(cov[0].message.contains("bare"));
    }

    #[test]
    fn one_hop_delegation_and_faultfile_fields_cover() {
        let w = ws(&[(
            "crates/store/src/wal.rs",
            "fn wrap(f: File) { faults::check_io(faults::WAL_SYNC); }\n\
             fn create(p: &Path) { let f = File::create(p); wrap(f); }\n\
             struct Wal { writer: BufWriter<FaultFile> }\n\
             impl Wal { fn sync(&self) { self.writer.get_ref().sync_data(); } }\n",
        )]);
        let part = check(Path::new("."), &w);
        assert!(
            !part
                .violations
                .iter()
                .any(|v| v.message.contains("without a named fault site")),
            "{:?}",
            part.violations
        );
    }

    #[test]
    fn unregistered_and_orphaned_sites_flagged() {
        let w = ws(&[(
            "crates/store/src/snapshot.rs",
            "fn f() { faults::check_io(\"snapshot.bogus\"); faults::check_io(faults::WAL_APPEND); }\n",
        )]);
        let part = check(Path::new("."), &w);
        assert!(
            part.violations
                .iter()
                .any(|v| v.message.contains("not a member of faults::SITES")),
            "{:?}",
            part.violations
        );
        // wal.sync is registered but never consulted → orphan.
        assert!(
            part.violations
                .iter()
                .any(|v| v.message.contains("orphaned fault site \"wal.sync\"")),
            "{:?}",
            part.violations
        );
    }

    #[test]
    fn test_code_raw_io_is_exempt() {
        let w = ws(&[(
            "crates/store/src/db.rs",
            "#[cfg(test)]\nmod tests { fn t(p: &Path) { let f = File::create(p); } }\n\
             fn consult() { faults::check_io(faults::WAL_APPEND); faults::check_io(faults::WAL_SYNC); }\n",
        )]);
        let part = check(Path::new("."), &w);
        assert!(part.is_clean(), "{:?}", part.violations);
    }
}
