//! Static lock-order: the compile-time twin of PR 6's runtime
//! lockcheck tracker.
//!
//! The runtime tracker only sees acquisition orders a test actually
//! schedules. This analysis extracts every `Mutex::named` /
//! `RwLock::named` construction (class name = first string literal in
//! the call, `{…}` format captures wildcarded to `*`), maps guard
//! bindings and struct fields back to their classes, computes how long
//! each guard lives (`let`-bound guards to their enclosing block or a
//! `drop(guard)`, temporaries to the end of their statement), and
//! propagates may-hold sets over tier-A call edges to a fixpoint. The
//! resulting class-level order graph is then diffed against the policy
//! in `Store::register_lockcheck_policy`:
//!
//! * a cycle among lock classes not broken by a policy `allow_edge` is
//!   a violation (an inversion no test has scheduled yet);
//! * a policy `allow_edge` with no static witness is a violation too —
//!   stale exemptions rot exactly like stale waivers.
//!
//! Same-class pairs are deliberately out of scope: instance-level
//! ordering inside one class (e.g. two `store.shard[*]` shards) is the
//! runtime tracker's domain — statically the instances are one node.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::Path;

use super::callgraph::{Receiver, Workspace};
use super::parse::Token;
use super::AnalysisPart;
use crate::lint::Violation;

pub const RULE: &str = "lock-order";

/// A witnessed ordered pair: `first` held while `second` acquired.
#[derive(Debug, Clone)]
pub struct EdgeWitness {
    pub file: String,
    pub line: usize,
    pub in_fn: String,
    /// Human-readable provenance: "intra-fn" or "via call from …".
    pub how: String,
}

#[derive(Debug, Default)]
pub struct OrderGraph {
    /// (held, acquired) → first witness.
    pub edges: BTreeMap<(String, String), EdgeWitness>,
    pub classes: BTreeSet<String>,
    pub notes: Vec<String>,
}

/// A guard's live range inside one fn body.
struct Guard {
    class: String,
    pos: usize,
    extent: usize,
    line: usize,
}

/// Builds the class-level order graph for a workspace.
pub fn build_graph(ws: &Workspace) -> OrderGraph {
    let mut g = OrderGraph::default();

    // 1. Global binding → class map (fields and let-bindings of lock
    //    constructions). Ambiguous names are dropped, with a note.
    let mut binding_class: HashMap<String, String> = HashMap::new();
    let mut ambiguous: BTreeSet<String> = BTreeSet::new();
    for f in ws.fns.iter().filter(|f| !f.item.in_test) {
        for d in &f.facts.lock_decls {
            g.classes.insert(d.class.clone());
            if let Some(b) = &d.binding {
                match binding_class.get(b) {
                    Some(c) if c != &d.class => {
                        ambiguous.insert(b.clone());
                    }
                    _ => {
                        binding_class.insert(b.clone(), d.class.clone());
                    }
                }
            }
        }
    }
    for b in &ambiguous {
        g.notes.push(format!(
            "lock binding `{b}` names more than one class; its acquisitions are not tracked statically"
        ));
        binding_class.remove(b);
    }

    // 2. Per-fn guards with extents, and per-fn entry-hold fixpoint.
    let n = ws.fns.len();
    let mut guards: Vec<Vec<Guard>> = Vec::with_capacity(n);
    for f in &ws.fns {
        if f.item.in_test {
            guards.push(Vec::new());
            continue;
        }
        guards.push(fn_guards(f, &binding_class));
    }

    // held sets at each call site; entry_hold fixpoint over tier A.
    let mut entry_hold: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 64 {
        changed = false;
        rounds += 1;
        for i in 0..n {
            let f = &ws.fns[i];
            if f.item.in_test {
                continue;
            }
            for call in &f.facts.calls {
                let (targets, _) = ws.resolve(call);
                if targets.is_empty() {
                    continue;
                }
                let mut held: BTreeSet<String> = entry_hold[i].clone();
                for gd in &guards[i] {
                    if gd.pos < call.pos && call.pos <= gd.extent {
                        held.insert(gd.class.clone());
                    }
                }
                if held.is_empty() {
                    continue;
                }
                for t in targets {
                    if ws.fns[t].item.in_test {
                        continue;
                    }
                    for h in &held {
                        if entry_hold[t].insert(h.clone()) {
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    // 3. Edges: intra-fn ordered pairs + entry-hold × local acquisition.
    for i in 0..n {
        let f = &ws.fns[i];
        if f.item.in_test {
            continue;
        }
        let gs = &guards[i];
        for a in gs {
            for b in gs {
                if a.pos < b.pos && b.pos <= a.extent && a.class != b.class {
                    g.edges
                        .entry((a.class.clone(), b.class.clone()))
                        .or_insert_with(|| EdgeWitness {
                            file: f.file.clone(),
                            line: b.line,
                            in_fn: f.qname(),
                            how: format!("intra-fn (held since line {})", a.line),
                        });
                }
            }
        }
        for h in &entry_hold[i] {
            for b in gs {
                if h != &b.class {
                    g.edges
                        .entry((h.clone(), b.class.clone()))
                        .or_insert_with(|| EdgeWitness {
                            file: f.file.clone(),
                            line: b.line,
                            in_fn: f.qname(),
                            how: format!("`{h}` held by a caller"),
                        });
                }
            }
        }
    }
    g
}

/// Extracts this fn's guards: class-resolved acquisitions with extents.
fn fn_guards(f: &super::callgraph::FnNode, binding_class: &HashMap<String, String>) -> Vec<Guard> {
    let body = &f.item.body;
    // Local lock decls shadow the global map.
    let mut local: HashMap<String, String> = HashMap::new();
    for d in &f.facts.lock_decls {
        if let Some(b) = &d.binding {
            local.insert(b.clone(), d.class.clone());
        }
    }
    let lookup = |name: &str| -> Option<String> {
        local.get(name).or_else(|| binding_class.get(name)).cloned()
    };

    // Precompute per-token brace depth and, for each position, the
    // index of the close brace of its innermost enclosing block.
    let mut depth_at = vec![0i32; body.len()];
    let mut close_of = vec![body.len(); body.len()];
    {
        let mut stack: Vec<usize> = Vec::new();
        let mut opens_at: Vec<Option<usize>> = vec![None; body.len()];
        let mut d = 0i32;
        for (i, t) in body.iter().enumerate() {
            if t.is_p('{') {
                d += 1;
                stack.push(i);
            }
            depth_at[i] = d;
            opens_at[i] = stack.last().copied();
            if t.is_p('}') {
                d -= 1;
                if let Some(open) = stack.pop() {
                    // Mark everyone inside [open, i] whose innermost
                    // open is `open`.
                    for j in open..=i {
                        if opens_at[j] == Some(open) && close_of[j] == body.len() {
                            close_of[j] = i;
                        }
                    }
                }
            }
        }
    }

    let mut out = Vec::new();
    for acq in &f.facts.acquisitions {
        let class = match &acq.receiver {
            // A named receiver that isn't a known lock binding may still
            // be a closure parameter over one (`shards.iter().map(|s|
            // s.read())`) — fall through to the statement scan.
            Receiver::SelfField(field) | Receiver::Var(field) => {
                lookup(field).or_else(|| stmt_fallback_class(body, acq.pos, &lookup))
            }
            Receiver::SelfDirect => None,
            Receiver::Unknown => stmt_fallback_class(body, acq.pos, &lookup),
        };
        let Some(class) = class else { continue };
        // `let`-bound guard? Walk back to the statement start.
        let mut j = acq.pos;
        let mut guard_name: Option<String> = None;
        while j > 0 {
            j -= 1;
            let t = &body[j];
            if t.is_p(';') || t.is_p('{') || t.is_p('}') {
                break;
            }
            if t.is_ident("let") {
                let mut k = j + 1;
                while body.get(k).is_some_and(|t| {
                    t.is_ident("mut")
                        || t.is_p('(')
                        || t.ident()
                            .is_some_and(|s| s.chars().next().is_some_and(char::is_uppercase))
                }) {
                    k += 1;
                }
                guard_name = body.get(k).and_then(|t| t.ident()).map(str::to_string);
                break;
            }
        }
        let extent = match guard_name {
            Some(name) => {
                let block_end = close_of.get(acq.pos).copied().unwrap_or(body.len());
                // Shrink at an explicit `drop(name)`.
                let mut end = block_end;
                let mut k = acq.pos;
                while k + 3 < body.len() && k < block_end {
                    if body[k].is_ident("drop")
                        && body[k + 1].is_p('(')
                        && body[k + 2].is_ident(&name)
                        && body[k + 3].is_p(')')
                    {
                        end = k;
                        break;
                    }
                    k += 1;
                }
                end
            }
            None => {
                // Temporary: held to the end of this statement.
                let mut k = acq.pos;
                while k < body.len() {
                    if body[k].is_p(';') && depth_at[k] <= depth_at[acq.pos] {
                        break;
                    }
                    k += 1;
                }
                k
            }
        };
        out.push(Guard {
            class,
            pos: acq.pos,
            extent,
            line: acq.line,
        });
    }
    out.sort_by_key(|g| g.pos);
    out
}

/// Receiver unknown: if the statement around `pos` mentions exactly one
/// known lock binding, attribute the acquisition to it (covers
/// `self.shards.iter().map(|s| s.read())`).
fn stmt_fallback_class(
    body: &[Token],
    pos: usize,
    lookup: &dyn Fn(&str) -> Option<String>,
) -> Option<String> {
    let mut lo = pos;
    while lo > 0 && !(body[lo - 1].is_p(';') || body[lo - 1].is_p('{')) {
        lo -= 1;
    }
    let mut hi = pos;
    while hi < body.len() && !body[hi].is_p(';') {
        hi += 1;
    }
    let mut found: Option<String> = None;
    for t in &body[lo..hi] {
        if let Some(name) = t.ident() {
            if let Some(c) = lookup(name) {
                match &found {
                    Some(prev) if prev != &c => return None, // ambiguous
                    _ => found = Some(c),
                }
            }
        }
    }
    found
}

// ----------------------------------------------------------- policy

/// `allow_edge("a", "b")` pairs from `Store::register_lockcheck_policy`.
pub fn policy_edges(ws: &Workspace) -> Option<Vec<(String, String, usize)>> {
    // The policy lives in a free fn in crates/store/src/db.rs today; accept
    // a `Store` method too so moving it into the impl doesn't break us.
    let free = ws.find(None, "register_lockcheck_policy");
    let assoc = ws.find(Some("Store"), "register_lockcheck_policy");
    let idx = *free.first().or_else(|| assoc.first())?;
    let body = &ws.fns[idx].item.body;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < body.len() {
        if body[i].is_ident("allow_edge") && body[i + 1].is_p('(') {
            let strs: Vec<(&str, usize)> = body[i + 2..]
                .iter()
                .take_while(|t| !t.is_p(')'))
                .filter_map(|t| t.str_lit().map(|s| (s, t.line)))
                .collect();
            if strs.len() >= 2 {
                out.push((strs[0].0.to_string(), strs[1].0.to_string(), strs[0].1));
            }
        }
        i += 1;
    }
    Some(out)
}

// ----------------------------------------------------------- checking

pub fn check(_root: &Path, ws: &Workspace) -> AnalysisPart {
    let mut part = AnalysisPart::new("lock-order");
    let graph = build_graph(ws);
    part.notes.extend(graph.notes.iter().cloned());

    let Some(policy) = policy_edges(ws) else {
        part.violations.push(Violation {
            file: "<workspace>".into(),
            line: 0,
            rule: RULE,
            message: "Store::register_lockcheck_policy not found — the static checker diffs \
                      against it; update src/analyze/lockorder.rs if it moved"
                .into(),
        });
        return part;
    };

    // Stale policy entries: an allowed edge nobody takes statically.
    for (a, b, line) in &policy {
        if !graph.edges.contains_key(&(a.clone(), b.clone())) {
            part.violations.push(Violation {
                file: "crates/store/src/db.rs".into(),
                line: *line,
                rule: RULE,
                message: format!(
                    "policy allow_edge(\"{a}\", \"{b}\") has no static witness — remove it or \
                     fix the analysis if the edge moved out of sight"
                ),
            });
        }
    }

    // Cycle detection on the graph minus policy-allowed edges.
    let allowed: BTreeSet<(String, String)> = policy
        .iter()
        .map(|(a, b, _)| (a.clone(), b.clone()))
        .collect();
    let kept: Vec<(&(String, String), &EdgeWitness)> = graph
        .edges
        .iter()
        .filter(|(k, _)| !allowed.contains(k))
        .collect();
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for ((a, b), _) in &kept {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    for cycle in find_cycles(&adj) {
        let mut msg = String::from("lock-order cycle with no policy exemption: ");
        for (i, c) in cycle.iter().enumerate() {
            if i > 0 {
                msg.push_str(" → ");
            }
            msg.push_str(c);
        }
        msg.push_str(" → ");
        msg.push_str(cycle[0]);
        // Name one witness per edge in the cycle.
        let (mut file, mut line) = (String::from("<workspace>"), 0usize);
        for w in cycle
            .windows(2)
            .chain(std::iter::once(&[cycle[cycle.len() - 1], cycle[0]][..]))
        {
            if let Some(wit) = graph.edges.get(&(w[0].to_string(), w[1].to_string())) {
                msg.push_str(&format!(
                    "; {}→{} at {}:{} in {} ({})",
                    w[0], w[1], wit.file, wit.line, wit.in_fn, wit.how
                ));
                if line == 0 {
                    file = wit.file.clone();
                    line = wit.line;
                }
            }
        }
        part.violations.push(Violation {
            file,
            line,
            rule: RULE,
            message: msg,
        });
    }

    part.notes.push(format!(
        "{} lock classes, {} ordered pairs witnessed, {} policy exemptions",
        graph.classes.len(),
        graph.edges.len(),
        policy.len()
    ));
    part
}

/// Strongly connected components with ≥2 nodes, as sorted node lists.
fn find_cycles<'a>(adj: &BTreeMap<&'a str, Vec<&'a str>>) -> Vec<Vec<&'a str>> {
    // Kosaraju: order by finish time on G, then collect on Gᵀ.
    let nodes: Vec<&str> = adj
        .iter()
        .flat_map(|(k, vs)| std::iter::once(*k).chain(vs.iter().copied()))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut order = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    for &start in &nodes {
        if seen.contains(start) {
            continue;
        }
        // Iterative DFS with explicit post-order.
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        seen.insert(start);
        while let Some((u, ci)) = stack.pop() {
            let next = adj.get(u).and_then(|vs| vs.get(ci)).copied();
            match next {
                Some(v) => {
                    stack.push((u, ci + 1));
                    if seen.insert(v) {
                        stack.push((v, 0));
                    }
                }
                None => order.push(u),
            }
        }
    }
    let mut radj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, vs) in adj {
        for v in vs {
            radj.entry(v).or_default().push(a);
        }
    }
    let mut comp: BTreeMap<&str, usize> = BTreeMap::new();
    let mut comps: Vec<Vec<&str>> = Vec::new();
    for &u in order.iter().rev() {
        if comp.contains_key(u) {
            continue;
        }
        let id = comps.len();
        let mut members = Vec::new();
        let mut stack = vec![u];
        comp.insert(u, id);
        while let Some(x) = stack.pop() {
            members.push(x);
            for &y in radj.get(x).map(|v| v.as_slice()).unwrap_or(&[]) {
                if !comp.contains_key(y) {
                    comp.insert(y, id);
                    stack.push(y);
                }
            }
        }
        comps.push(members);
    }
    comps
        .into_iter()
        .filter(|c| c.len() >= 2)
        .map(|mut c| {
            c.sort_unstable();
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::callgraph::Workspace;
    use crate::analyze::parse::parse_file;

    fn ws(srcs: &[(&str, &str)]) -> Workspace {
        Workspace::from_files(srcs.iter().map(|(r, s)| parse_file(r, s)).collect())
    }

    const POLICY_EMPTY: &str = "struct Store;\nimpl Store { fn register_lockcheck_policy() {} }\n";

    #[test]
    fn intra_fn_order_and_drop_shrink() {
        let w = ws(&[(
            "crates/store/src/db.rs",
            "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             fn mk() -> S { S { a: Mutex::named(\"c.a\", 0), b: Mutex::named(\"c.b\", 0) } }\n\
             impl S {\n\
                 fn both(&self) { let g = self.a.lock(); self.b.lock(); }\n\
                 fn dropped(&self) { let g = self.a.lock(); drop(g); self.b.lock(); }\n\
             }\n",
        )]);
        let g = build_graph(&w);
        assert!(
            g.edges.contains_key(&("c.a".into(), "c.b".into())),
            "{:?}",
            g.edges.keys()
        );
        // `dropped` must not add c.b→c.a or anything new beyond both().
        assert_eq!(g.edges.len(), 1, "{:?}", g.edges.keys());
    }

    #[test]
    fn temporaries_hold_to_end_of_statement_only() {
        let w = ws(&[(
            "crates/store/src/db.rs",
            "struct S { a: Mutex<Q>, b: Mutex<u8> }\n\
             fn mk() -> S { S { a: Mutex::named(\"c.a\", Q), b: Mutex::named(\"c.b\", 0) } }\n\
             impl S {\n\
                 fn peek(&self) { let empty = self.a.lock().queue.is_empty(); self.b.lock(); }\n\
                 fn same_stmt(&self) { let x = self.a.lock().v + self.b.lock().v; }\n\
             }\n",
        )]);
        let g = build_graph(&w);
        // peek: a released at `;` before b → no edge. same_stmt: a held
        // when b acquired → edge a→b.
        assert!(g.edges.contains_key(&("c.a".into(), "c.b".into())));
        assert_eq!(g.edges.len(), 1, "{:?}", g.edges.keys());
    }

    #[test]
    fn call_under_hold_propagates_tier_a() {
        let w = ws(&[(
            "crates/store/src/db.rs",
            "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             fn mk() -> S { S { a: Mutex::named(\"c.a\", 0), b: Mutex::named(\"c.b\", 0) } }\n\
             impl S {\n\
                 fn outer(&self) { let g = self.a.lock(); self.inner(); }\n\
                 fn inner(&self) { self.b.lock(); }\n\
             }\n",
        )]);
        let g = build_graph(&w);
        let w2 = g.edges.get(&("c.a".into(), "c.b".into())).expect("edge");
        assert!(w2.how.contains("held by a caller"), "{}", w2.how);
    }

    #[test]
    fn cycle_without_policy_flagged_with_policy_clean() {
        let cyclic = "struct S { a: Mutex<u8>, b: Mutex<u8> }\n\
             fn mk() -> S { S { a: Mutex::named(\"c.a\", 0), b: Mutex::named(\"c.b\", 0) } }\n\
             impl S {\n\
                 fn ab(&self) { let g = self.a.lock(); self.b.lock(); }\n\
                 fn ba(&self) { let g = self.b.lock(); self.a.lock(); }\n\
             }\n";
        let w = ws(&[(
            "crates/store/src/db.rs",
            &format!("{POLICY_EMPTY}{cyclic}")[..],
        )]);
        let part = check(Path::new("."), &w);
        assert_eq!(part.violations.len(), 1, "{:?}", part.violations);
        assert!(part.violations[0].message.contains("cycle"));

        let with_policy = format!(
            "struct Store;\n\
             impl Store {{ fn register_lockcheck_policy() {{ lockcheck::allow_edge(\"c.b\", \"c.a\", \"reviewed\"); }} }}\n\
             {cyclic}"
        );
        let w = ws(&[("crates/store/src/db.rs", &with_policy[..])]);
        let part = check(Path::new("."), &w);
        assert!(part.is_clean(), "{:?}", part.violations);
    }

    #[test]
    fn stale_policy_edge_flagged() {
        let src = "struct Store;\n\
             impl Store { fn register_lockcheck_policy() { lockcheck::allow_edge(\"x.a\", \"x.b\", \"why\"); } }\n";
        let w = ws(&[("crates/store/src/db.rs", src)]);
        let part = check(Path::new("."), &w);
        assert_eq!(part.violations.len(), 1, "{:?}", part.violations);
        assert!(part.violations[0].message.contains("no static witness"));
    }

    #[test]
    fn statement_fallback_resolves_closure_receivers() {
        let w = ws(&[(
            "crates/store/src/db.rs",
            "struct S { shards: Vec<RwLock<u8>>, m: Mutex<u8> }\n\
             fn mk(n: usize) -> S {\n\
                 let shards = (0..n).map(|i| RwLock::named(&format!(\"c.shard[{i}]\"), 0)).collect();\n\
                 S { shards, m: Mutex::named(\"c.m\", 0) }\n\
             }\n\
             impl S {\n\
                 fn lock_all(&self) { let g = self.m.lock(); let all: Vec<_> = self.shards.iter().map(|s| s.read()).collect(); }\n\
             }\n",
        )]);
        let g = build_graph(&w);
        assert!(
            g.edges.contains_key(&("c.m".into(), "c.shard[*]".into())),
            "{:?}",
            g.edges.keys()
        );
    }
}
