//! Workspace loading, per-function fact extraction, and the
//! conservative call graph the analyses walk.
//!
//! Resolution is tiered, mirroring how much the token stream tells us:
//!
//! * **Tier A (precise):** free calls by name, `Type::method` and
//!   `module::function` qualified calls, `self.method()` to the owning
//!   impl, and method calls whose receiver type we can infer (params,
//!   `self.field` through the owner's field table, `let x = Type::new`
//!   locals). Lock-order propagation and fault-coverage delegation use
//!   only these edges.
//! * **Tier B (fallback):** a method call whose receiver type is
//!   unknown links to *every* user-defined method of that name, except
//!   for a short list of ubiquitous names (`lock`, `clone`, `get`, …)
//!   where that would connect unrelated worlds. Panic-reachability
//!   walks A∪B so an unresolved receiver errs toward reporting.
//!
//! Everything here is intraprocedural token scanning + a fixpoint; the
//! graph is rebuilt from source on every run (the whole workspace lexes
//! in well under a second).

use std::collections::{HashMap, VecDeque};
use std::path::Path;

use super::parse::{self, FnItem, ParsedFile, Tok, Token};

/// Method names too generic for tier-B fallback: linking every
/// `.lock()` to every user type with a `lock` method would weld the
/// graph into one blob and drown real findings.
const TIER_B_EXCLUDED: &[&str] = &[
    "lock",
    "read",
    "write",
    "try_lock",
    "try_read",
    "try_write",
    "clone",
    "len",
    "is_empty",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "contains",
    "contains_key",
    "iter",
    "iter_mut",
    "next",
    "flush",
    "drain",
    "clear",
    "collect",
    "new",
    "default",
    "fmt",
    "drop",
    "eq",
    "cmp",
    "hash",
    "as_ref",
    "as_mut",
    "into",
    "from",
    "to_string",
    "extend",
    "entry",
    "keys",
    "values",
];

/// Smart-pointer-ish wrappers to look through when turning a type token
/// run into "the type whose impl owns this method".
const TYPE_WRAPPERS: &[&str] = &["Arc", "Rc", "Box", "Option", "Result", "Vec", "RefCell"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `panic!`, `unreachable!`, `todo!`, `unimplemented!`.
    Macro,
    /// `.unwrap()` / `.expect(…)` (and the `_err` twins).
    Unwrap,
    /// Slice/array index or non-full-range slice expression.
    Index,
}

impl PanicKind {
    pub fn describe(self) -> &'static str {
        match self {
            PanicKind::Macro => "panicking macro",
            PanicKind::Unwrap => "unwrap/expect",
            PanicKind::Index => "index/slice expression",
        }
    }
}

#[derive(Debug, Clone)]
pub struct PanicSite {
    pub line: usize,
    pub kind: PanicKind,
    /// Short token excerpt for the report.
    pub what: String,
}

/// A `Mutex::named` / `RwLock::named` construction site.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Normalized class name (`{…}` format args become `*`).
    pub class: String,
    /// The field or `let` binding the lock landed in, when detectable.
    pub binding: Option<String>,
    pub line: usize,
}

/// A `.lock()` / `.read()` / `.write()` acquisition.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Index of the method-name token in the fn body.
    pub pos: usize,
    pub line: usize,
    /// Receiver summary, for class resolution (see `lockorder`).
    pub receiver: Receiver,
    /// Last token index (inclusive) the guard may live to; None until
    /// `lockorder` computes extents.
    pub extent: usize,
}

/// What the tokens before a `.method(` call told us about its receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// `self.method()`.
    SelfDirect,
    /// `self.field.method()` (or `self.field[i].method()`).
    SelfField(String),
    /// `name.method()` — a local or parameter.
    Var(String),
    /// Anything else (chained calls, temporaries).
    Unknown,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Index of the callee-name token in the fn body.
    pub pos: usize,
    pub line: usize,
    pub name: String,
    /// `Some(Type)` for `Type::method` or receiver-resolved calls,
    /// `None` for free/module-qualified calls.
    pub owner_hint: Option<String>,
    /// True when the owner hint came from real inference (tier A); a
    /// call with `owner_hint: None` and `is_method: true` is tier B.
    pub is_method: bool,
}

/// Everything extracted from one function body in a single pass.
#[derive(Debug, Clone, Default)]
pub struct FnFacts {
    pub calls: Vec<CallSite>,
    pub panics: Vec<PanicSite>,
    pub lock_decls: Vec<LockDecl>,
    pub acquisitions: Vec<Acquisition>,
    /// Arguments of `check_io(X)` / `FaultFile::new(_, X)` /
    /// `.with_sync_site(X)`: either a const ident or a literal string.
    pub site_refs: Vec<SiteRef>,
    /// Raw durability I/O tokens: (line, which).
    pub raw_io: Vec<(usize, &'static str)>,
    /// Idents used in `path::` positions (e.g. `faults`), to detect
    /// direct consultation of the faults module.
    pub consults_faults: bool,
}

#[derive(Debug, Clone)]
pub enum SiteRef {
    /// `faults::WAL_APPEND`-style const reference (last path ident).
    Const(String, usize),
    /// A literal `"wal.append"` string.
    Lit(String, usize),
}

/// A function plus its facts and location.
#[derive(Debug, Clone)]
pub struct FnNode {
    pub file: String,
    pub item: FnItem,
    pub facts: FnFacts,
}

impl FnNode {
    pub fn qname(&self) -> String {
        match &self.item.owner {
            Some(o) => format!("{o}::{}", self.item.name),
            None => self.item.name.clone(),
        }
    }
}

pub struct Workspace {
    pub files: Vec<ParsedFile>,
    pub fns: Vec<FnNode>,
    /// (owner, name) → fn indices (several files may impl same-named
    /// types; all candidates are kept — conservative).
    by_owner_name: HashMap<(String, String), Vec<usize>>,
    /// name → free-fn indices.
    free_by_name: HashMap<String, Vec<usize>>,
    /// name → method indices (any owner), for tier B.
    methods_by_name: HashMap<String, Vec<usize>>,
    /// Type name → field table (first wins; workspace type names are
    /// unique enough for the crates we analyze).
    fields_of: HashMap<String, HashMap<String, String>>,
    /// Tier-A adjacency (fn index → callee indices).
    pub edges_a: Vec<Vec<usize>>,
    /// Tier-B-only extra adjacency.
    pub edges_b: Vec<Vec<usize>>,
}

impl Workspace {
    /// Lexes and parses every non-test `.rs` file under `crates/` and
    /// `src/` (same walk as the lint), then builds facts and edges.
    pub fn load(root: &Path) -> Workspace {
        let mut paths = Vec::new();
        crate::lint::collect_rs_files(&root.join("crates"), &mut paths);
        crate::lint::collect_rs_files(&root.join("src"), &mut paths);
        paths.sort();
        let mut files = Vec::new();
        for path in &paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(path)
                .to_string_lossy()
                .replace('\\', "/");
            let Ok(content) = std::fs::read_to_string(path) else {
                continue;
            };
            files.push(parse::parse_file(&rel, &content));
        }
        Workspace::from_files(files)
    }

    /// Builds a workspace from already-parsed files (tests use this).
    pub fn from_files(files: Vec<ParsedFile>) -> Workspace {
        let mut fields_of: HashMap<String, HashMap<String, String>> = HashMap::new();
        for pf in &files {
            for ty in &pf.types {
                fields_of.entry(ty.name.clone()).or_insert_with(|| {
                    ty.fields
                        .iter()
                        .map(|f| (f.name.clone(), f.ty.clone()))
                        .collect()
                });
            }
        }

        let mut fns = Vec::new();
        for pf in &files {
            for item in &pf.fns {
                let facts = extract_facts(item, &fields_of);
                fns.push(FnNode {
                    file: pf.rel.clone(),
                    item: item.clone(),
                    facts,
                });
            }
        }

        let mut by_owner_name: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut free_by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut methods_by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in fns.iter().enumerate() {
            match &f.item.owner {
                Some(o) => {
                    by_owner_name
                        .entry((o.clone(), f.item.name.clone()))
                        .or_default()
                        .push(i);
                    methods_by_name
                        .entry(f.item.name.clone())
                        .or_default()
                        .push(i);
                }
                None => free_by_name.entry(f.item.name.clone()).or_default().push(i),
            }
        }

        let mut ws = Workspace {
            files,
            fns,
            by_owner_name,
            free_by_name,
            methods_by_name,
            fields_of,
            edges_a: Vec::new(),
            edges_b: Vec::new(),
        };
        ws.build_edges();
        ws
    }

    fn build_edges(&mut self) {
        let n = self.fns.len();
        let mut ea = vec![Vec::new(); n];
        let mut eb = vec![Vec::new(); n];
        for i in 0..n {
            for call in &self.fns[i].facts.calls {
                let (a, b) = self.resolve(call);
                ea[i].extend(a);
                eb[i].extend(b);
            }
            ea[i].sort_unstable();
            ea[i].dedup();
            eb[i].sort_unstable();
            eb[i].dedup();
        }
        self.edges_a = ea;
        self.edges_b = eb;
    }

    /// Resolves one call site → (tier-A targets, tier-B targets).
    pub fn resolve(&self, call: &CallSite) -> (Vec<usize>, Vec<usize>) {
        if let Some(owner) = &call.owner_hint {
            if let Some(v) = self.by_owner_name.get(&(owner.clone(), call.name.clone())) {
                return (v.clone(), Vec::new());
            }
            // Known owner but no such method in-workspace (std or shim
            // type): no edge.
            return (Vec::new(), Vec::new());
        }
        if call.is_method {
            if TIER_B_EXCLUDED.contains(&call.name.as_str()) {
                return (Vec::new(), Vec::new());
            }
            return (
                Vec::new(),
                self.methods_by_name
                    .get(&call.name)
                    .cloned()
                    .unwrap_or_default(),
            );
        }
        (
            self.free_by_name
                .get(&call.name)
                .cloned()
                .unwrap_or_default(),
            Vec::new(),
        )
    }

    /// Finds fn indices by owner/name, for roots and tests.
    pub fn find(&self, owner: Option<&str>, name: &str) -> Vec<usize> {
        match owner {
            Some(o) => self
                .by_owner_name
                .get(&(o.to_string(), name.to_string()))
                .cloned()
                .unwrap_or_default(),
            None => self.free_by_name.get(name).cloned().unwrap_or_default(),
        }
    }

    pub fn field_type(&self, owner: &str, field: &str) -> Option<&str> {
        self.fields_of.get(owner)?.get(field).map(String::as_str)
    }

    /// BFS from `roots` over tier-A (+ tier-B when `with_b`) edges,
    /// skipping test fns. Returns a parent map for path reconstruction
    /// (root entries map to themselves).
    pub fn reach(&self, roots: &[usize], with_b: bool) -> HashMap<usize, usize> {
        let mut parent: HashMap<usize, usize> = HashMap::new();
        let mut q: VecDeque<usize> = VecDeque::new();
        for &r in roots {
            if parent.insert(r, r).is_none() {
                q.push_back(r);
            }
        }
        while let Some(u) = q.pop_front() {
            let step = |v: usize, parent: &mut HashMap<usize, usize>, q: &mut VecDeque<usize>| {
                if self.fns[v].item.in_test {
                    return;
                }
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(v) {
                    e.insert(u);
                    q.push_back(v);
                }
            };
            for &v in &self.edges_a[u] {
                step(v, &mut parent, &mut q);
            }
            if with_b {
                for &v in &self.edges_b[u] {
                    step(v, &mut parent, &mut q);
                }
            }
        }
        parent
    }

    /// Reconstructs `root → … → target` as qualified names.
    pub fn path_to(&self, parent: &HashMap<usize, usize>, target: usize) -> Vec<String> {
        let mut path = vec![target];
        let mut cur = target;
        let mut hops = 0;
        while let Some(&p) = parent.get(&cur) {
            if p == cur || hops > 64 {
                break;
            }
            path.push(p);
            cur = p;
            hops += 1;
        }
        path.reverse();
        path.iter().map(|&i| self.fns[i].qname()).collect()
    }
}

// ------------------------------------------------------------- facts

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const UNWRAP_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];
const KEYWORDS_NOT_CALLS: &[&str] = &[
    "if", "match", "while", "for", "in", "as", "return", "let", "else", "move", "mut", "ref",
    "loop", "await", "unsafe", "dyn", "break", "continue", "where", "impl", "fn",
];

/// The single linear pass over a function body that feeds every
/// analysis.
pub fn extract_facts(
    item: &FnItem,
    fields_of: &HashMap<String, HashMap<String, String>>,
) -> FnFacts {
    let mut facts = FnFacts::default();
    let body = &item.body;
    let locals = infer_locals(item);
    let owner_fields = item
        .item_owner_fields(fields_of)
        .cloned()
        .unwrap_or_default();

    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];
        let Some(name) = t.ident() else {
            i += 1;
            continue;
        };

        // path:: detection for faults consultation.
        if name == "faults" && body.get(i + 1).is_some_and(|t| t.is_p(':')) {
            facts.consults_faults = true;
        }

        let next = body.get(i + 1);
        let next2 = body.get(i + 2);

        // Macro invocation: `name ! (…|[…]|{…})`.
        if next.is_some_and(|t| t.is_p('!'))
            && next2.is_some_and(|t| t.is_p('(') || t.is_p('[') || t.is_p('{'))
        {
            if PANIC_MACROS.contains(&name) {
                facts.panics.push(PanicSite {
                    line: t.line,
                    kind: PanicKind::Macro,
                    what: format!("{name}!"),
                });
            }
            i += 1;
            continue;
        }

        // Call-ish: `name (`.
        if next.is_some_and(|t| t.is_p('(')) {
            let prev = i.checked_sub(1).map(|j| &body[j]);
            let is_dot = prev.is_some_and(|t| t.is_p('.'));
            let is_qual = prev.is_some_and(|t| t.is_p(':'))
                && i.checked_sub(2)
                    .map(|j| &body[j])
                    .is_some_and(|t| t.is_p(':'));
            if is_dot {
                handle_method_call(item, body, i, name, &locals, &owner_fields, &mut facts);
            } else if is_qual {
                handle_qualified_call(body, i, name, &mut facts);
            } else if !KEYWORDS_NOT_CALLS.contains(&name)
                && name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_lowercase() || c == '_')
            {
                facts.calls.push(CallSite {
                    pos: i,
                    line: t.line,
                    name: name.to_string(),
                    owner_hint: None,
                    is_method: false,
                });
            }
        }

        // Index/slice expression: `expr [ … ]` where `…` isn't exactly
        // `..` and prev token ends an expression.
        if next.is_some_and(|t| t.is_p('[')) && expr_ends_at(body, i) {
            if let Some((content_empty_range, close)) = bracket_group(body, i + 1) {
                if !content_empty_range {
                    facts.panics.push(PanicSite {
                        line: t.line,
                        kind: PanicKind::Index,
                        what: format!(
                            "{}[{}]",
                            name,
                            parse::toks_to_string(&body[i + 2..close.min(body.len())])
                        ),
                    });
                }
            }
        }

        // Raw durability I/O.
        if name == "File"
            && next.is_some_and(|t| t.is_p(':'))
            && body.get(i + 3).is_some_and(|t| t.is_ident("create"))
        {
            facts.raw_io.push((t.line, "File::create"));
        }

        i += 1;
    }

    // Second pass for dot-method things (unwrap, raw IO methods, lock
    // acquisitions, with_sync_site) and Mutex::named/check_io args.
    let mut i = 0usize;
    while i < body.len() {
        let t = &body[i];
        if let Some(name) = t.ident() {
            let prev_dot = i
                .checked_sub(1)
                .map(|j| &body[j])
                .is_some_and(|t| t.is_p('.'));
            let next_paren = body.get(i + 1).is_some_and(|t| t.is_p('('));
            if prev_dot && next_paren {
                if UNWRAP_METHODS.contains(&name) {
                    facts.panics.push(PanicSite {
                        line: t.line,
                        kind: PanicKind::Unwrap,
                        what: format!(".{name}(…)"),
                    });
                }
                if matches!(name, "write_all" | "sync_data" | "sync_all") {
                    facts.raw_io.push((t.line, raw_io_static(name)));
                }
                if matches!(
                    name,
                    "lock" | "read" | "write" | "try_lock" | "try_read" | "try_write"
                ) {
                    facts.acquisitions.push(Acquisition {
                        pos: i,
                        line: t.line,
                        receiver: receiver_of(body, i - 1, item),
                        extent: 0,
                    });
                }
                if name == "with_sync_site" {
                    push_site_arg(body, i + 1, &mut facts);
                }
            }
            if name == "check_io" && next_paren {
                push_site_arg(body, i + 1, &mut facts);
            }
            if (name == "Mutex" || name == "RwLock")
                && body.get(i + 1).is_some_and(|t| t.is_p(':'))
                && body.get(i + 3).is_some_and(|t| t.is_ident("named"))
                && body.get(i + 4).is_some_and(|t| t.is_p('('))
            {
                if let Some(decl) = lock_decl_at(body, i) {
                    facts.lock_decls.push(decl);
                }
            }
            if name == "FaultFile"
                && body.get(i + 1).is_some_and(|t| t.is_p(':'))
                && body.get(i + 3).is_some_and(|t| t.is_ident("new"))
                && body.get(i + 4).is_some_and(|t| t.is_p('('))
            {
                // Second argument of FaultFile::new(file, SITE).
                push_nth_arg_site(body, i + 4, 1, &mut facts);
            }
        }
        i += 1;
    }

    facts.panics.sort_by_key(|p| p.line);
    facts
}

impl FnItem {
    fn item_owner_fields<'a>(
        &self,
        fields_of: &'a HashMap<String, HashMap<String, String>>,
    ) -> Option<&'a HashMap<String, String>> {
        fields_of.get(self.owner.as_deref()?)
    }
}

fn raw_io_static(name: &str) -> &'static str {
    match name {
        "write_all" => ".write_all",
        "sync_data" => ".sync_data",
        _ => ".sync_all",
    }
}

/// Does the token at `i` end an expression (so a following `[` indexes
/// it)? True for idents not preceded by path/decl syntax.
fn expr_ends_at(body: &[Token], i: usize) -> bool {
    // An ident (variable, field after `.`, const) followed by `[` is an
    // index expression. The non-index uses of `[` — slice patterns
    // (`let [a, b] = …`), attributes (`#[…]`), array types (`: [u8; N]`)
    // and literals (`= [0u8; N]`) — never have an ident immediately
    // before the `[`, so only keywords need excluding here.
    body.get(i).is_some_and(|t| matches!(t.tok, Tok::Ident(_)))
        && !body.get(i).is_some_and(|t| {
            t.ident()
                .is_some_and(|s| KEYWORDS_NOT_CALLS.contains(&s) || s == "vec")
        })
}

/// Returns `(content_is_exactly_fullrange, close_index)` for the `[`
/// at `open`.
fn bracket_group(body: &[Token], open: usize) -> Option<(bool, usize)> {
    let mut depth = 0i32;
    for (j, t) in body.iter().enumerate().skip(open) {
        if t.is_p('[') {
            depth += 1;
        } else if t.is_p(']') {
            depth -= 1;
            if depth == 0 {
                let inner = &body[open + 1..j];
                let full = inner.len() == 2 && inner[0].is_p('.') && inner[1].is_p('.');
                return Some((full, j));
            }
        }
    }
    None
}

fn handle_method_call(
    item: &FnItem,
    body: &[Token],
    i: usize,
    name: &str,
    locals: &HashMap<String, String>,
    owner_fields: &HashMap<String, String>,
    facts: &mut FnFacts,
) {
    let recv = receiver_of(body, i - 1, item);
    let owner_hint = match &recv {
        Receiver::SelfDirect => item.owner.clone(),
        Receiver::SelfField(f) => owner_fields.get(f).map(|ty| main_type_ident(ty)),
        Receiver::Var(v) => locals.get(v).cloned(),
        Receiver::Unknown => None,
    };
    facts.calls.push(CallSite {
        pos: i,
        line: body[i].line,
        name: name.to_string(),
        owner_hint,
        is_method: true,
    });
}

fn handle_qualified_call(body: &[Token], i: usize, name: &str, facts: &mut FnFacts) {
    // Walk back the path: … seg :: seg :: name(
    let mut segs: Vec<String> = Vec::new();
    let mut j = i;
    while j >= 2 && body[j - 1].is_p(':') && body[j - 2].is_p(':') {
        // Token before the `::` — ident, or `>` (turbofish/qualified
        // generic) which we give up on.
        if j >= 3 {
            if let Some(s) = body[j - 3].ident() {
                segs.push(s.to_string());
                j -= 3;
                continue;
            }
        }
        break;
    }
    let qualifier = segs.first().cloned();
    match qualifier {
        Some(q) if q.chars().next().is_some_and(|c| c.is_uppercase()) => {
            facts.calls.push(CallSite {
                pos: i,
                line: body[i].line,
                name: name.to_string(),
                owner_hint: Some(q),
                is_method: false,
            });
        }
        Some(q) if q == "Self" => {
            // Self::helper() — owner filled by resolve via owner_hint
            // "Self" is useless; treat as free-by-name within… simplest:
            // method fallback by name (tier B) plus free fns.
            facts.calls.push(CallSite {
                pos: i,
                line: body[i].line,
                name: name.to_string(),
                owner_hint: None,
                is_method: true,
            });
        }
        _ => {
            // Module-qualified (`wal::replay`) or unqualified-path call:
            // free fn by name.
            facts.calls.push(CallSite {
                pos: i,
                line: body[i].line,
                name: name.to_string(),
                owner_hint: None,
                is_method: false,
            });
        }
    }
}

/// Classifies the receiver of `.method(` whose `.` sits at `dot`.
pub fn receiver_of(body: &[Token], dot: usize, _item: &FnItem) -> Receiver {
    let Some(before) = dot.checked_sub(1).map(|j| &body[j]) else {
        return Receiver::Unknown;
    };
    // Skip back over one balanced `[…]` (indexing) group.
    let (j, indexed) = if before.is_p(']') {
        let mut depth = 0i32;
        let mut j = dot - 1;
        loop {
            if body[j].is_p(']') {
                depth += 1;
            } else if body[j].is_p('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if j == 0 {
                return Receiver::Unknown;
            }
            j -= 1;
        }
        if j == 0 {
            return Receiver::Unknown;
        }
        (j - 1, true)
    } else {
        (dot - 1, false)
    };
    let _ = indexed;
    let Some(name) = body[j].ident() else {
        return Receiver::Unknown; // `)`-ended chain etc.
    };
    // Is this ident itself a field access `x.name` or path `x::name`?
    if j >= 1 && body[j - 1].is_p('.') {
        if j >= 2 && body[j - 2].is_ident("self") {
            return Receiver::SelfField(name.to_string());
        }
        return Receiver::Unknown; // deeper chain
    }
    // A path segment (`a::name.method()`) hides the real receiver; a
    // single `:` is a struct-literal field or type ascription and the
    // ident before the `.` is still the receiver.
    if j >= 2 && body[j - 1].is_p(':') && body[j - 2].is_p(':') {
        return Receiver::Unknown;
    }
    if name == "self" {
        return Receiver::SelfDirect;
    }
    if name.chars().next().is_some_and(|c| c.is_uppercase()) {
        return Receiver::Unknown; // `Type.method` is not a thing
    }
    Receiver::Var(name.to_string())
}

/// Very small local-type inference: parameters (`name: &mut Type`),
/// `let x: Type = …`, `let x = Type::new(…)` / `Type { … }`.
pub fn infer_locals(item: &FnItem) -> HashMap<String, String> {
    let mut map = HashMap::new();
    // Parameters.
    for chunk in split_param_chunks(&item.params) {
        let mut k = 0usize;
        while chunk.get(k).is_some_and(|t| {
            t.ident().is_some_and(|s| s == "mut") || t.is_p('&') || matches!(t.tok, Tok::Life(_))
        }) {
            k += 1;
        }
        let Some(name) = chunk.get(k).and_then(|t| t.ident()) else {
            continue;
        };
        if !chunk.get(k + 1).is_some_and(|t| t.is_p(':')) {
            continue;
        }
        let ty = parse::toks_to_string(&chunk[k + 2..]);
        map.insert(name.to_string(), main_type_ident(&ty));
    }
    // Lets.
    let body = &item.body;
    let mut i = 0usize;
    while i < body.len() {
        if body[i].is_ident("let") {
            let mut j = i + 1;
            if body.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if let Some(name) = body.get(j).and_then(|t| t.ident()) {
                // `let x: Type = …`
                if body.get(j + 1).is_some_and(|t| t.is_p(':')) {
                    // type tokens until `=` or `;` at depth 0.
                    let mut k = j + 2;
                    let start = k;
                    let mut depth = 0i32;
                    while let Some(t) = body.get(k) {
                        match t.tok {
                            Tok::P('<') | Tok::P('(') | Tok::P('[') => depth += 1,
                            Tok::P('>') | Tok::P(')') | Tok::P(']') => depth -= 1,
                            Tok::P('=') | Tok::P(';') if depth <= 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    let ty = parse::toks_to_string(&body[start..k.min(body.len())]);
                    map.insert(name.to_string(), main_type_ident(&ty));
                } else if body.get(j + 1).is_some_and(|t| t.is_p('=')) {
                    // `let x = Type::…` or `let x = Type { … }`
                    if let Some(tyname) = body.get(j + 2).and_then(|t| t.ident()) {
                        if tyname.chars().next().is_some_and(|c| c.is_uppercase())
                            && (body.get(j + 3).is_some_and(|t| t.is_p(':'))
                                || body.get(j + 3).is_some_and(|t| t.is_p('{')))
                            && !TYPE_WRAPPERS.contains(&tyname)
                        {
                            map.insert(name.to_string(), tyname.to_string());
                        }
                    }
                }
            }
        }
        i += 1;
    }
    map
}

fn split_param_chunks(params: &[Token]) -> Vec<&[Token]> {
    let mut parts = Vec::new();
    let (mut p, mut b, mut c, mut a) = (0i32, 0i32, 0i32, 0i32);
    let mut prev_dash = false;
    let mut start = 0usize;
    for (i, t) in params.iter().enumerate() {
        match t.tok {
            Tok::P('(') => p += 1,
            Tok::P(')') => p -= 1,
            Tok::P('[') => b += 1,
            Tok::P(']') => b -= 1,
            Tok::P('{') => c += 1,
            Tok::P('}') => c -= 1,
            Tok::P('<') => a += 1,
            Tok::P('>') if !prev_dash => a -= 1,
            Tok::P(',') if p == 0 && b == 0 && c == 0 && a <= 0 => {
                parts.push(&params[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        prev_dash = t.is_p('-');
    }
    if start < params.len() {
        parts.push(&params[start..]);
    }
    parts
}

/// `"& mut Store"` → `Store`, `"Arc < Store >"` → `Store`,
/// `"Vec < u8 >"` → `Vec`-wrapped → `u8`? No: only smart-pointer
/// wrappers unwrap; `Vec<T>` methods belong to Vec (std), so keep the
/// outer ident unless it's a wrapper.
pub fn main_type_ident(ty: &str) -> String {
    let toks: Vec<&str> = ty
        .split_whitespace()
        .filter(|s| !matches!(*s, "&" | "mut" | "'" | "dyn"))
        .filter(|s| !s.starts_with('\''))
        .collect();
    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i];
        if t.chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            if TYPE_WRAPPERS.contains(&t) && toks.get(i + 1) == Some(&"<") {
                i += 2; // unwrap one layer
                continue;
            }
            // `path :: Type` — keep walking to the last path segment.
            if toks.get(i + 1) == Some(&":") && toks.get(i + 2) == Some(&":") {
                i += 3;
                continue;
            }
            return t.to_string();
        }
        i += 1;
    }
    String::new()
}

/// Parses the class/binding of a `Mutex::named(`/`RwLock::named(` at
/// token index `i` (pointing at `Mutex`/`RwLock`).
fn lock_decl_at(body: &[Token], i: usize) -> Option<LockDecl> {
    // First string literal inside the argument list is the class name
    // (handles `&format!("store.shard[{i}]")`).
    let open = i + 4;
    let mut depth = 0i32;
    let mut class = None;
    for t in &body[open..] {
        if t.is_p('(') {
            depth += 1;
        } else if t.is_p(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        if class.is_none() {
            if let Some(s) = t.str_lit() {
                class = Some(normalize_class(s));
            }
        }
    }
    let class = class?;
    // Binding: scan backwards for `let [mut] NAME =` or a struct-literal
    // / struct-decl field `NAME :` within a short window.
    let mut binding = None;
    let lo = i.saturating_sub(60);
    let mut j = i;
    while j > lo {
        j -= 1;
        let t = &body[j];
        if t.is_ident("let") {
            let mut k = j + 1;
            if body.get(k).is_some_and(|t| t.is_ident("mut")) {
                k += 1;
            }
            if let Some(name) = body.get(k).and_then(|t| t.ident()) {
                binding = Some(name.to_string());
            }
            break;
        }
        // `name : Mutex::named(…)` struct-literal field (the `:` must
        // not be part of `::`).
        if t.is_p(':')
            && !body.get(j + 1).is_some_and(|t| t.is_p(':'))
            && j >= 1
            && !body[j - 1].is_p(':')
        {
            if let Some(name) = body[j - 1].ident() {
                // Only take it if the decl follows immediately (allowing
                // for a path prefix like `parking_lot::`).
                if j + 4 >= i {
                    binding = Some(name.to_string());
                    break;
                }
            }
        }
        if t.is_p(';') || t.is_p('{') {
            break;
        }
    }
    Some(LockDecl {
        class,
        binding,
        line: body[i].line,
    })
}

/// `store.shard[{i}]` → `store.shard[*]` — format captures become
/// wildcards so runtime instance names and static classes line up.
pub fn normalize_class(s: &str) -> String {
    let mut out = String::new();
    let mut depth = 0i32;
    for c in s.chars() {
        match c {
            '{' => {
                depth += 1;
                if depth == 1 {
                    out.push('*');
                }
            }
            '}' => depth -= 1,
            c if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Records the first argument of a call whose `(` is at `open` as a
/// fault-site reference.
fn push_site_arg(body: &[Token], open: usize, facts: &mut FnFacts) {
    push_nth_arg_site(body, open, 0, facts);
}

fn push_nth_arg_site(body: &[Token], open: usize, n: usize, facts: &mut FnFacts) {
    if !body.get(open).is_some_and(|t| t.is_p('(')) {
        return;
    }
    let mut depth = 0i32;
    let mut arg = 0usize;
    let mut toks: Vec<&Token> = Vec::new();
    for t in &body[open..] {
        if t.is_p('(') {
            depth += 1;
            if depth == 1 {
                continue;
            }
        } else if t.is_p(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_p(',') && depth == 1 {
            arg += 1;
            continue;
        }
        if arg == n && depth >= 1 {
            toks.push(t);
        }
    }
    // The reference is either a string literal or the last ident of a
    // path (`faults :: WAL_APPEND`, `self . sync_site` is skipped — a
    // field indirection is resolved by the struct-field rule instead).
    for t in &toks {
        if let Some(s) = t.str_lit() {
            facts.site_refs.push(SiteRef::Lit(s.to_string(), t.line));
            return;
        }
    }
    if toks.iter().any(|t| t.is_ident("self")) {
        return;
    }
    if let Some(last) = toks.iter().rev().find_map(|t| t.ident()) {
        if last.chars().all(|c| c.is_ascii_uppercase() || c == '_') {
            facts
                .site_refs
                .push(SiteRef::Const(last.to_string(), toks[0].line));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::parse::parse_file;

    fn ws(srcs: &[(&str, &str)]) -> Workspace {
        Workspace::from_files(srcs.iter().map(|(rel, src)| parse_file(rel, src)).collect())
    }

    #[test]
    fn free_and_qualified_calls_resolve_tier_a() {
        let w = ws(&[(
            "a.rs",
            "fn root() { helper(); Wal::create(); util::free2(); }\n\
             fn helper() {}\n\
             fn free2() {}\n\
             struct Wal;\n\
             impl Wal { fn create() {} }\n",
        )]);
        let root = w.find(None, "root")[0];
        let names: Vec<String> = w.edges_a[root].iter().map(|&i| w.fns[i].qname()).collect();
        assert!(names.contains(&"helper".to_string()));
        assert!(names.contains(&"Wal::create".to_string()));
        assert!(names.contains(&"free2".to_string()));
    }

    #[test]
    fn self_and_field_receivers_resolve() {
        let w = ws(&[(
            "a.rs",
            "struct Inner;\n\
             impl Inner { fn go(&self) {} }\n\
             struct Outer { inner: Inner }\n\
             impl Outer {\n\
                 fn run(&self) { self.step(); self.inner.go(); }\n\
                 fn step(&self) {}\n\
             }\n",
        )]);
        let run = w.find(Some("Outer"), "run")[0];
        let names: Vec<String> = w.edges_a[run].iter().map(|&i| w.fns[i].qname()).collect();
        assert!(names.contains(&"Outer::step".to_string()), "{names:?}");
        assert!(names.contains(&"Inner::go".to_string()), "{names:?}");
    }

    #[test]
    fn param_typed_receivers_resolve_through_refs_and_arc() {
        let w = ws(&[(
            "a.rs",
            "struct Store;\n\
             impl Store { fn commit(&self) {} }\n\
             fn f(store: &mut Store, shared: std::sync::Arc<Store>) {\n\
                 store.commit();\n\
                 shared.commit();\n\
             }\n",
        )]);
        let f = w.find(None, "f")[0];
        assert_eq!(w.edges_a[f].len(), 1); // deduped
        assert_eq!(w.fns[w.edges_a[f][0]].qname(), "Store::commit");
    }

    #[test]
    fn unknown_receiver_falls_to_tier_b_except_ubiquitous_names() {
        let w = ws(&[(
            "a.rs",
            "struct A;\n\
             impl A { fn frobnicate(&self) {} fn lock(&self) {} }\n\
             fn f(x: UnknownType) { mystery().frobnicate(); mystery().lock(); x.frobnicate(); }\n",
        )]);
        let f = w.find(None, "f")[0];
        let b: Vec<String> = w.edges_b[f].iter().map(|&i| w.fns[i].qname()).collect();
        // `mystery().frobnicate()` has an unresolvable receiver → tier B;
        // `.lock()` is ubiquitous and excluded. `x.frobnicate()` has a
        // *known* (external) type, which dispatches outside the
        // workspace — no edge at all, so frobnicate appears once.
        assert_eq!(b, vec!["A::frobnicate".to_string()]);
    }

    #[test]
    fn panic_sites_detected() {
        let w = ws(&[(
            "crates/store/src/x.rs",
            "fn f(v: Vec<u8>, o: Option<u8>) {\n\
                 let a = v[0];\n\
                 let b = &v[1..3];\n\
                 let c = &v[..];\n\
                 o.unwrap();\n\
                 o.expect(\"msg\");\n\
                 o.unwrap_or_default();\n\
                 if false { panic!(\"boom\"); }\n\
                 let neq = a != 3;\n\
             }\n",
        )]);
        let f = &w.fns[w.find(None, "f")[0]];
        let kinds: Vec<PanicKind> = f.facts.panics.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![
                PanicKind::Index,
                PanicKind::Index,
                PanicKind::Unwrap,
                PanicKind::Unwrap,
                PanicKind::Macro
            ],
            "{:?}",
            f.facts.panics
        );
    }

    #[test]
    fn lock_decls_capture_class_and_binding() {
        let w = ws(&[(
            "a.rs",
            "struct S { commit_mu: Mutex<u8> }\n\
             fn mk() {\n\
                 let shards: Vec<_> = (0..4).map(|i| RwLock::named(&format!(\"store.shard[{i}]\"), i)).collect();\n\
                 let s = S { commit_mu: Mutex::named(\"store.commit_mu\", 0) };\n\
             }\n",
        )]);
        let mk = &w.fns[w.find(None, "mk")[0]];
        let decls: Vec<(String, Option<String>)> = mk
            .facts
            .lock_decls
            .iter()
            .map(|d| (d.class.clone(), d.binding.clone()))
            .collect();
        assert!(
            decls.contains(&("store.shard[*]".to_string(), Some("shards".to_string()))),
            "{decls:?}"
        );
        assert!(
            decls.contains(&("store.commit_mu".to_string(), Some("commit_mu".to_string()))),
            "{decls:?}"
        );
    }

    #[test]
    fn site_refs_capture_consts_and_literals() {
        let w = ws(&[(
            "a.rs",
            "fn f() {\n\
                 faults::check_io(faults::WAL_APPEND)?;\n\
                 check_io(\"wal.sync\")?;\n\
                 let g = FaultFile::new(file, faults::SNAPSHOT_WRITE).with_sync_site(faults::WAL_SYNC);\n\
             }\n",
        )]);
        let f = &w.fns[w.find(None, "f")[0]];
        let refs: Vec<String> = f
            .facts
            .site_refs
            .iter()
            .map(|r| match r {
                SiteRef::Const(c, _) => format!("c:{c}"),
                SiteRef::Lit(s, _) => format!("l:{s}"),
            })
            .collect();
        assert!(refs.contains(&"c:WAL_APPEND".to_string()), "{refs:?}");
        assert!(refs.contains(&"l:wal.sync".to_string()), "{refs:?}");
        assert!(refs.contains(&"c:SNAPSHOT_WRITE".to_string()), "{refs:?}");
        assert!(refs.contains(&"c:WAL_SYNC".to_string()), "{refs:?}");
        assert!(f.facts.consults_faults);
    }

    #[test]
    fn reachability_skips_test_fns_and_reconstructs_paths() {
        let w = ws(&[(
            "a.rs",
            "fn root() { mid(); }\n\
             fn mid() { leaf(); }\n\
             fn leaf() {}\n\
             #[cfg(test)]\nmod t { fn tf() { leaf(); } }\n",
        )]);
        let root = w.find(None, "root")[0];
        let leaf = w.find(None, "leaf")[0];
        let parents = w.reach(&[root], true);
        assert!(parents.contains_key(&leaf));
        assert_eq!(w.path_to(&parents, leaf), vec!["root", "mid", "leaf"]);
        let tf = w.find(None, "tf")[0];
        assert!(!parents.contains_key(&tf));
    }

    #[test]
    fn raw_io_detected() {
        let w = ws(&[(
            "a.rs",
            "fn f(file: &mut File) { let g = File::create(p)?; g.write_all(b)?; g.sync_data()?; g.sync_all()?; }\n",
        )]);
        let f = &w.fns[w.find(None, "f")[0]];
        let kinds: Vec<&str> = f.facts.raw_io.iter().map(|(_, k)| *k).collect();
        assert_eq!(
            kinds,
            vec!["File::create", ".write_all", ".sync_data", ".sync_all"]
        );
    }

    #[test]
    fn normalize_class_wildcards_format_args() {
        assert_eq!(normalize_class("store.shard[{i}]"), "store.shard[*]");
        assert_eq!(normalize_class("store.commit_mu"), "store.commit_mu");
    }
}
