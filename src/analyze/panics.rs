//! Panic-reachability: no panic source may be transitively reachable
//! from the store's commit/recovery entry points or the server's
//! session-dispatch entry points, unless the containing function
//! carries a reviewed, budgeted `// lint: allow(panic-path)` waiver.
//!
//! Roots ([`ROOTS`]): `Store::commit`, `Store::open` (recovery),
//! `serve_session` (the per-connection dispatch loop) and
//! `apply_in_process` (its loopback twin). A missing root is itself a
//! violation — renaming an entry point must update this list.
//!
//! Panic sources: `panic!`/`unreachable!`/`todo!`/`unimplemented!`
//! macros and `.unwrap()`/`.expect()` everywhere under `crates/`;
//! index/slice expressions only in the store and server crates (the
//! durability and wire paths, where an out-of-bounds is a torn-state
//! hazard rather than a plain bug). `src/` (this analyzer and the CLI)
//! is not a serving path and is out of scope.
//!
//! Waivers are *function-granular*: `// lint: allow(panic-path)` within
//! the three lines above a `fn` waives every source inside that one
//! function — the call-graph generalization of the old per-line waiver
//! window. The budget ([`BUDGET`]) counts waived functions that are
//! actually reached; a waiver on an unreached or panic-free function is
//! stale and flagged.

use std::collections::HashMap;
use std::path::Path;

use super::callgraph::Workspace;
use super::AnalysisPart;
use crate::lint::Violation;

pub const RULE: &str = "panic-path";

/// Entry points: (owner, fn name, what it anchors).
pub const ROOTS: &[(Option<&str>, &str, &str)] = &[
    (Some("Store"), "commit", "store commit path"),
    (Some("Store"), "open", "store recovery path"),
    (None, "serve_session", "server session dispatch"),
    (None, "apply_in_process", "loopback session dispatch"),
];

/// Repo-wide budget of waived *functions* on panic-reachable paths.
/// Raising it is a reviewed change to this file.
pub const BUDGET: usize = 29;

/// Files whose index/slice expressions count as panic sources.
fn index_in_scope(file: &str) -> bool {
    file.starts_with("crates/store/src/") || file.starts_with("crates/server/src/")
}

fn fn_in_scope(file: &str) -> bool {
    file.starts_with("crates/")
}

/// Scans raw file text for `// lint: allow(panic-path)` lines.
/// (The lexer drops comments, so waivers are collected separately.)
pub fn waiver_lines(content: &str) -> Vec<usize> {
    content
        .lines()
        .enumerate()
        .filter_map(|(idx, raw)| {
            let t = raw.trim_start();
            let rest = t.strip_prefix("// lint: ")?.trim_end();
            (rest == "allow(panic-path)").then_some(idx + 1)
        })
        .collect()
}

/// How many lines above the `fn` keyword a waiver comment may sit
/// (room for doc comments / attributes in between).
const WAIVER_REACH: usize = 3;

pub fn check(root: &Path, ws: &Workspace) -> AnalysisPart {
    let mut part = AnalysisPart::new("panic-reachability");

    // Waiver lines per file (read raw text once per relevant file).
    let mut waivers: HashMap<String, Vec<(usize, bool)>> = HashMap::new();
    for pf in &ws.files {
        if !fn_in_scope(&pf.rel) {
            continue;
        }
        if let Ok(content) = std::fs::read_to_string(root.join(&pf.rel)) {
            let lines = waiver_lines(&content);
            if !lines.is_empty() {
                waivers.insert(
                    pf.rel.clone(),
                    lines.into_iter().map(|l| (l, false)).collect(),
                );
            }
        }
    }
    // A fn is waived if a waiver line sits within WAIVER_REACH lines
    // above its `fn` line.
    let mut fn_waived: HashMap<usize, (String, usize)> = HashMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        if let Some(lines) = waivers.get_mut(&f.file) {
            for (l, used) in lines.iter_mut() {
                if *l <= f.item.line && f.item.line.saturating_sub(*l) <= WAIVER_REACH {
                    *used = true;
                    fn_waived.insert(i, (f.file.clone(), *l));
                }
            }
        }
    }

    // Roots.
    let mut roots = Vec::new();
    for (owner, name, what) in ROOTS {
        let found = ws.find(*owner, name);
        let found: Vec<usize> = found
            .into_iter()
            .filter(|&i| !ws.fns[i].item.in_test && fn_in_scope(&ws.fns[i].file))
            .collect();
        if found.is_empty() {
            part.violations.push(Violation {
                file: "<workspace>".into(),
                line: 0,
                rule: RULE,
                message: format!(
                    "panic-reachability root `{}{}` ({what}) not found — update ROOTS in src/analyze/panics.rs",
                    owner.map(|o| format!("{o}::")).unwrap_or_default(),
                    name
                ),
            });
        }
        roots.extend(found);
    }

    let parents = ws.reach(&roots, true);

    // Walk reachable fns; collect violations / used waivers.
    let mut reached: Vec<usize> = parents.keys().copied().collect();
    reached.sort_unstable();
    let mut waived_used = 0usize;
    for i in reached {
        let f = &ws.fns[i];
        if !fn_in_scope(&f.file) || f.item.in_test {
            continue;
        }
        let sources: Vec<_> = f
            .facts
            .panics
            .iter()
            .filter(|p| p.kind != super::callgraph::PanicKind::Index || index_in_scope(&f.file))
            .collect();
        if sources.is_empty() {
            continue;
        }
        if let Some((file, line)) = fn_waived.get(&i) {
            waived_used += 1;
            part.waivers.push(format!(
                "{file}:{line}: allow(panic-path) on {} ({} source{})",
                f.qname(),
                sources.len(),
                if sources.len() == 1 { "" } else { "s" }
            ));
            continue;
        }
        let path = ws.path_to(&parents, i).join(" → ");
        for s in &sources {
            part.violations.push(Violation {
                file: f.file.clone(),
                line: s.line,
                rule: RULE,
                message: format!(
                    "{} `{}` reachable from a no-panic root via {path}; \
                     return a typed error or add a reviewed `// lint: allow(panic-path)` above the fn",
                    s.kind.describe(),
                    s.what
                ),
            });
        }
    }

    // Stale waivers: a panic-path waiver line that never attached to a
    // reached, panicking function.
    let attached: std::collections::HashSet<(String, usize)> = fn_waived
        .iter()
        .filter(|(i, _)| {
            parents.contains_key(i) && {
                let f = &ws.fns[**i];
                f.facts.panics.iter().any(|p| {
                    p.kind != super::callgraph::PanicKind::Index || index_in_scope(&f.file)
                })
            }
        })
        .map(|(_, w)| w.clone())
        .collect();
    for (file, lines) in &waivers {
        for (l, _) in lines {
            if !attached.contains(&(file.clone(), *l)) {
                part.violations.push(Violation {
                    file: file.clone(),
                    line: *l,
                    rule: RULE,
                    message: "stale panic-path waiver: no reachable panic source in the fn below"
                        .into(),
                });
            }
        }
    }

    if waived_used > BUDGET {
        part.violations.push(Violation {
            file: "<workspace>".into(),
            line: 0,
            rule: RULE,
            message: format!(
                "{waived_used} panic-path waivers exceed the budget of {BUDGET}; \
                 fix the new site or raise BUDGET in src/analyze/panics.rs (reviewed)"
            ),
        });
    }

    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::callgraph::Workspace;
    use crate::analyze::parse::parse_file;

    fn part_for(srcs: &[(&str, &str)]) -> AnalysisPart {
        // Use a nonexistent root: waiver files are unreadable, so only
        // source-level checks run.
        let ws = Workspace::from_files(srcs.iter().map(|(r, s)| parse_file(r, s)).collect());
        check(Path::new("/nonexistent-analysis-root"), &ws)
    }

    const ROOT_STUBS: &str = "struct Store;\n\
         impl Store { pub fn commit(&self) { commit_inner(); } pub fn open() {} }\n\
         fn serve_session() {}\n\
         fn apply_in_process() {}\n";

    #[test]
    fn transitive_unwrap_is_flagged_with_path() {
        let src = format!("{ROOT_STUBS}fn commit_inner() {{ deep(); }}\nfn deep(o: Option<u8>) {{ o.unwrap(); }}\n");
        let part = part_for(&[("crates/store/src/db.rs", &src)]);
        assert_eq!(part.violations.len(), 1, "{:?}", part.violations);
        let v = &part.violations[0];
        assert!(
            v.message.contains("Store::commit → commit_inner → deep"),
            "{}",
            v.message
        );
    }

    #[test]
    fn unreached_panics_are_not_flagged() {
        let src = format!(
            "{ROOT_STUBS}fn commit_inner() {{}}\nfn orphan(o: Option<u8>) {{ o.unwrap(); }}\n"
        );
        let part = part_for(&[("crates/store/src/db.rs", &src)]);
        assert!(part.violations.is_empty(), "{:?}", part.violations);
    }

    #[test]
    fn index_sources_count_only_in_store_and_server() {
        let core = format!("{ROOT_STUBS}fn commit_inner() {{ helper(); }}\n");
        let helper_core = "pub fn helper(v: &[u8]) { let x = v[0]; }\n";
        let part = part_for(&[
            ("crates/store/src/db.rs", &core),
            ("crates/core/src/util.rs", helper_core),
        ]);
        assert!(part.violations.is_empty(), "{:?}", part.violations);
        let part = part_for(&[
            ("crates/store/src/db.rs", &core),
            ("crates/store/src/util.rs", helper_core),
        ]);
        assert_eq!(part.violations.len(), 1);
    }

    #[test]
    fn missing_root_is_a_violation() {
        let part = part_for(&[("crates/store/src/db.rs", "fn nothing() {}\n")]);
        assert_eq!(part.violations.len(), ROOTS.len());
        assert!(part.violations[0].message.contains("not found"));
    }

    #[test]
    fn waiver_lines_parse() {
        let src = "// lint: allow(panic-path)\n// lint: allow(store-unwrap)\n   // lint: allow(panic-path)\n";
        assert_eq!(waiver_lines(src), vec![1, 3]);
    }
}
