//! Cross-crate static analyses over a registry-free Rust parse.
//!
//! `lint` (the token-matching sibling module) checks line-local
//! invariants; this module parses the workspace into function tables
//! and a conservative call graph ([`callgraph`]) and checks the
//! *global* ones:
//!
//! * [`panics`] — panic-reachability from store commit/recovery and
//!   server session-dispatch roots;
//! * [`schema`] — serbin positional-layout lock (`schema.lock`);
//! * [`lockorder`] — static lock-order vs the runtime lockcheck policy;
//! * [`faultcov`] — fault-site coverage of raw durability I/O plus the
//!   `faults::SITES` registry cross-check.
//!
//! All four run through [`run_all`]; the `itag-lint` binary exposes
//! them as subcommands and `tests/analysis_gate.rs` pins the repo to
//! zero unwaivered violations.

pub mod callgraph;
pub mod faultcov;
pub mod lockorder;
pub mod panics;
pub mod parse;
pub mod schema;

use std::path::Path;

use crate::lint::Violation;
pub use callgraph::Workspace;

/// Result of one analysis.
#[derive(Debug, Default)]
pub struct AnalysisPart {
    pub name: &'static str,
    pub violations: Vec<Violation>,
    /// Reviewed exceptions that fired (the visible waiver surface).
    pub waivers: Vec<String>,
    /// Informational notes (compatible schema appends, statistics).
    pub notes: Vec<String>,
}

impl AnalysisPart {
    pub fn new(name: &'static str) -> Self {
        AnalysisPart {
            name,
            ..Default::default()
        }
    }
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Combined report over every requested analysis.
#[derive(Debug, Default)]
pub struct AnalysisReport {
    pub parts: Vec<AnalysisPart>,
    pub fns_analyzed: usize,
    pub files_parsed: usize,
}

impl AnalysisReport {
    pub fn is_clean(&self) -> bool {
        self.parts.iter().all(AnalysisPart::is_clean)
    }
    pub fn violations(&self) -> impl Iterator<Item = &Violation> {
        self.parts.iter().flat_map(|p| p.violations.iter())
    }
}

/// Default lock-file location under the workspace root.
pub fn lock_path(root: &Path) -> std::path::PathBuf {
    root.join("schema.lock")
}

/// Runs every call-graph analysis. `bless` rewrites `schema.lock`
/// instead of diffing against it.
pub fn run_all(root: &Path, bless: bool) -> AnalysisReport {
    let ws = Workspace::load(root);
    let mut report = AnalysisReport {
        files_parsed: ws.files.len(),
        fns_analyzed: ws.fns.len(),
        ..Default::default()
    };
    report.parts.push(panics::check(root, &ws));
    report
        .parts
        .push(schema::check(root, &ws.files, &lock_path(root), bless));
    report.parts.push(lockorder::check(root, &ws));
    report.parts.push(faultcov::check(root, &ws));
    report
}

// ----------------------------------------------------------- output

/// Minimal JSON string escaping (quotes, backslashes, control chars).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders violations + waivers as a single machine-readable JSON
/// object (`--format=json`).
pub fn render_json(
    tool: &str,
    violations: &[&Violation],
    waivers: &[(String, String)],
    clean: bool,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"tool\":\"{}\",\"clean\":{},\"violations\":[",
        json_escape(tool),
        clean
    ));
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\"}}",
            json_escape(v.rule),
            json_escape(&v.file),
            v.line,
            json_escape(&v.message)
        ));
    }
    out.push_str("],\"waivers\":[");
    for (i, (rule, w)) in waivers.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"where\":\"{}\"}}",
            json_escape(rule),
            json_escape(w)
        ));
    }
    out.push_str("]}");
    out
}

/// GitHub Actions error annotations (`--format=github`): one
/// `::error …` line per violation, shown inline on the PR diff.
pub fn render_github(violations: &[&Violation]) -> String {
    violations
        .iter()
        .map(|v| {
            let msg = v.message.replace('%', "%25").replace('\n', "%0A");
            if v.line > 0 {
                format!(
                    "::error file={},line={},title=itag-lint {}::{}",
                    v.file, v.line, v.rule, msg
                )
            } else {
                format!("::error title=itag-lint {}::[{}] {}", v.rule, v.file, msg)
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_shape() {
        let v = Violation {
            file: "a\\b.rs".into(),
            line: 3,
            rule: "panic-path",
            message: "say \"no\"\nplease".into(),
        };
        let s = render_json("itag-lint", &[&v], &[("x".into(), "y:1".into())], false);
        assert!(s.contains("\"file\":\"a\\\\b.rs\""));
        assert!(s.contains("\\\"no\\\"\\n"));
        assert!(s.contains("\"clean\":false"));
        assert!(s.contains("\"where\":\"y:1\""));
    }

    #[test]
    fn github_annotations_format() {
        let v = Violation {
            file: "crates/store/src/db.rs".into(),
            line: 7,
            rule: "lock-order",
            message: "bad".into(),
        };
        assert_eq!(
            render_github(&[&v]),
            "::error file=crates/store/src/db.rs,line=7,title=itag-lint lock-order::bad"
        );
    }

    #[test]
    fn the_workspace_itself_passes_all_analyses() {
        // Mirrors tests/analysis_gate.rs so `cargo test -p itag --lib`
        // is self-contained.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let report = run_all(root, false);
        assert!(
            report.is_clean(),
            "analysis violations:\n{}",
            report
                .violations()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(report.fns_analyzed > 300, "parser found too few fns");
    }
}
