//! Registry-free Rust lexer + item parser for the static analyses.
//!
//! This is the tokenizing big brother of `lint::strip_comments_and_strings`:
//! instead of blanking non-code text it produces a real token stream
//! (identifiers, string literals *with contents* — lock class names and
//! fault site names live in strings — numbers, lifetimes, punctuation),
//! and a recursive-descent item parser that builds a per-file table of
//! functions (with their own body tokens, nested items excluded), type
//! definitions (fields/variants in declaration order, derive lists) and
//! consts. No `syn`, no registry: the grammar subset is exactly what the
//! workspace uses, and the parser is total — malformed input degrades to
//! fewer recognized items, never a panic.

use std::fmt;

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// String literal (normal, raw, byte, raw-byte) with its contents.
    Str(String),
    /// Char or byte-char literal (contents never matter to us).
    Char,
    /// Numeric literal (integer or float, any base, suffix included).
    Num(String),
    /// Lifetime, without the leading quote (`'a` → `a`).
    Life(String),
    /// Single punctuation character (`::` is two `P(':')` tokens).
    P(char),
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

impl Token {
    pub fn is_p(&self, c: char) -> bool {
        matches!(self.tok, Tok::P(p) if p == c)
    }
    pub fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }
    pub fn is_ident(&self, s: &str) -> bool {
        self.ident() == Some(s)
    }
    pub fn str_lit(&self) -> Option<&str> {
        match &self.tok {
            Tok::Str(s) => Some(s),
            _ => None,
        }
    }
    /// Token text for canonical (formatting-independent) rendering.
    pub fn text(&self) -> String {
        match &self.tok {
            Tok::Ident(s) | Tok::Num(s) => s.clone(),
            Tok::Str(s) => format!("{s:?}"),
            Tok::Char => "'?'".into(),
            Tok::Life(l) => format!("'{l}"),
            Tok::P(c) => c.to_string(),
        }
    }
}

/// Canonical one-line rendering of a token slice: every token's text
/// joined by single spaces, so reformatting the source cannot change it.
pub fn toks_to_string(toks: &[Token]) -> String {
    toks.iter().map(|t| t.text()).collect::<Vec<_>>().join(" ")
}

// ---------------------------------------------------------------- lexer

/// Tokenizes Rust source. Comments vanish; everything else survives.
/// Handles nested block comments, raw/byte/raw-byte strings, and the
/// char-literal vs lifetime ambiguity.
pub fn lex(content: &str) -> Vec<Token> {
    let b: Vec<char> = content.chars().collect();
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && b.get(i + 1) == Some(&'/') {
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && b.get(i + 1) == Some(&'*') {
            let mut depth = 1u32;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
        } else if c == '"' {
            let start_line = line;
            let (s, ni) = lex_plain_string(&b, i + 1, &mut line);
            out.push(Token {
                tok: Tok::Str(s),
                line: start_line,
            });
            i = ni;
        } else if (c == 'r' || c == 'b') && !prev_is_ident(&b, i) {
            if let Some((tok, ni)) = try_prefixed_literal(&b, i, &mut line) {
                let start_line = line;
                // line already advanced inside; tag with the line the
                // literal *ended* on is fine for our purposes.
                out.push(Token {
                    tok,
                    line: start_line,
                });
                i = ni;
            } else {
                let (s, ni) = lex_ident(&b, i);
                out.push(Token {
                    tok: Tok::Ident(s),
                    line,
                });
                i = ni;
            }
        } else if c == '\'' {
            match b.get(i + 1) {
                Some('\\') => {
                    // Escaped char literal: skip to the closing quote.
                    i += 2;
                    while i < b.len() && b[i] != '\'' {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1;
                    out.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                }
                Some(&n) if n != '\'' && b.get(i + 2) == Some(&'\'') => {
                    out.push(Token {
                        tok: Tok::Char,
                        line,
                    });
                    i += 3;
                }
                Some(&n) if n.is_alphabetic() || n == '_' => {
                    let (s, ni) = lex_ident(&b, i + 1);
                    out.push(Token {
                        tok: Tok::Life(s),
                        line,
                    });
                    i = ni;
                }
                _ => {
                    out.push(Token {
                        tok: Tok::P('\''),
                        line,
                    });
                    i += 1;
                }
            }
        } else if c.is_alphabetic() || c == '_' {
            let (s, ni) = lex_ident(&b, i);
            out.push(Token {
                tok: Tok::Ident(s),
                line,
            });
            i = ni;
        } else if c.is_ascii_digit() {
            let mut j = i;
            while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            if b.get(j) == Some(&'.') && b.get(j + 1).is_some_and(|d| d.is_ascii_digit()) {
                j += 1;
                while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
            }
            out.push(Token {
                tok: Tok::Num(b[i..j].iter().collect()),
                line,
            });
            i = j;
        } else {
            out.push(Token {
                tok: Tok::P(c),
                line,
            });
            i += 1;
        }
    }
    out
}

fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

fn lex_ident(b: &[char], i: usize) -> (String, usize) {
    let mut j = i;
    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
        j += 1;
    }
    (b[i..j].iter().collect(), j)
}

/// Plain `"..."` body starting just after the opening quote. Escaped
/// chars are passed through verbatim (class/site names never use them).
fn lex_plain_string(b: &[char], mut i: usize, line: &mut usize) -> (String, usize) {
    let mut s = String::new();
    while i < b.len() {
        match b[i] {
            '\\' => {
                if let Some(&n) = b.get(i + 1) {
                    if n == '\n' {
                        *line += 1;
                    }
                    s.push(n);
                }
                i += 2;
            }
            '"' => return (s, i + 1),
            c => {
                if c == '\n' {
                    *line += 1;
                }
                s.push(c);
                i += 1;
            }
        }
    }
    (s, i)
}

/// `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#` at position `i`, or None
/// if this is just an identifier starting with r/b.
fn try_prefixed_literal(b: &[char], i: usize, line: &mut usize) -> Option<(Tok, usize)> {
    let mut j = i;
    if b[j] == 'b' {
        j += 1;
        match b.get(j) {
            Some('\'') => {
                // Byte char: b'x' or b'\n'.
                j += 1;
                if b.get(j) == Some(&'\\') {
                    j += 1;
                }
                while j < b.len() && b[j] != '\'' {
                    j += 1;
                }
                return Some((Tok::Char, j + 1));
            }
            Some('"') => {
                let (s, ni) = lex_plain_string(b, j + 1, line);
                return Some((Tok::Str(s), ni));
            }
            Some('r') => j += 1,
            _ => return None,
        }
    }
    // Now expect r#*" (j points at 'r' for the plain-r case).
    if b[j] == 'r' {
        j += 1;
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    let mut s = String::new();
    while j < b.len() {
        if b[j] == '"' && (0..hashes).all(|k| b.get(j + 1 + k) == Some(&'#')) {
            return Some((Tok::Str(s), j + 1 + hashes));
        }
        if b[j] == '\n' {
            *line += 1;
        }
        s.push(b[j]);
        j += 1;
    }
    Some((Tok::Str(s), j))
}

// ---------------------------------------------------------------- items

/// A parsed function (free fn, method, or trait default method).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// `impl`/`trait` owner type name, `None` for free functions.
    pub owner: Option<String>,
    /// Line of the `fn` keyword.
    pub line: usize,
    /// Inside a `#[cfg(test)]` region or carrying `#[test]`.
    pub in_test: bool,
    /// The function's own body tokens; nested item bodies are excluded
    /// (they get their own `FnItem`/`TypeItem` entries).
    pub body: Vec<Token>,
    /// Raw parameter-list tokens (between the signature parens).
    pub params: Vec<Token>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeKind {
    Struct,
    Enum,
}

impl fmt::Display for TypeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TypeKind::Struct => "struct",
            TypeKind::Enum => "enum",
        })
    }
}

#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name; tuple fields are `"0"`, `"1"`, …
    pub name: String,
    /// Canonical type rendering (see [`toks_to_string`]).
    pub ty: String,
}

#[derive(Debug, Clone)]
pub struct VariantDef {
    pub name: String,
    /// Empty for unit variants.
    pub fields: Vec<FieldDef>,
}

#[derive(Debug, Clone)]
pub struct TypeItem {
    pub name: String,
    pub kind: TypeKind,
    pub line: usize,
    pub in_test: bool,
    /// Traits named in `#[derive(...)]` attributes.
    pub derives: Vec<String>,
    /// Struct fields, declaration order. Empty for enums.
    pub fields: Vec<FieldDef>,
    /// Enum variants, declaration order. Empty for structs.
    pub variants: Vec<VariantDef>,
}

#[derive(Debug, Clone)]
pub struct ConstItem {
    pub name: String,
    pub line: usize,
    /// Tokens after the `=`, up to the terminating `;`.
    pub value: Vec<Token>,
}

/// Everything the analyses need from one source file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Root-relative path with forward slashes.
    pub rel: String,
    pub fns: Vec<FnItem>,
    pub types: Vec<TypeItem>,
    pub consts: Vec<ConstItem>,
}

/// Parses one file. Total: never panics, unparseable stretches are
/// skipped token by token.
pub fn parse_file(rel: &str, content: &str) -> ParsedFile {
    let toks = lex(content);
    let mut pf = ParsedFile {
        rel: rel.to_string(),
        ..Default::default()
    };
    let mut cur = Cursor {
        toks: &toks,
        pos: 0,
    };
    parse_items(&mut cur, &Ctx::default(), &mut pf, false);
    pf
}

#[derive(Default, Clone)]
struct Ctx {
    owner: Option<String>,
    in_test: bool,
}

struct Cursor<'a> {
    toks: &'a [Token],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }
    fn peek_at(&self, off: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + off)
    }
    fn bump(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        self.pos += 1;
        t
    }
    fn eat_p(&mut self, c: char) -> bool {
        if self.peek().is_some_and(|t| t.is_p(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
    /// Skips a balanced `< … >` group (cursor on `<`). `->`'s `>` does
    /// not close a group, `>>` closes two.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        let mut prev_dash = false;
        while let Some(t) = self.peek() {
            match t.tok {
                Tok::P('<') => depth += 1,
                Tok::P('>') if !prev_dash => {
                    depth -= 1;
                    if depth <= 0 {
                        self.pos += 1;
                        return;
                    }
                }
                _ => {}
            }
            prev_dash = t.is_p('-');
            self.pos += 1;
        }
    }
    /// Skips a balanced group opened by the delimiter under the cursor
    /// (`(`, `[` or `{`), returning the tokens strictly inside it.
    fn skip_group(&mut self) -> &'a [Token] {
        let (open, close) = match self.peek().map(|t| &t.tok) {
            Some(Tok::P('(')) => ('(', ')'),
            Some(Tok::P('[')) => ('[', ']'),
            Some(Tok::P('{')) => ('{', '}'),
            _ => return &[],
        };
        let start = self.pos + 1;
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            if t.is_p(open) {
                depth += 1;
            } else if t.is_p(close) {
                depth -= 1;
                if depth == 0 {
                    let inner = &self.toks[start..self.pos];
                    self.pos += 1;
                    return inner;
                }
            }
            self.pos += 1;
        }
        &self.toks[start..self.toks.len().min(start)]
    }
    /// Skips to just past the next `;` at paren/bracket/brace depth 0.
    fn skip_to_semi(&mut self) {
        let (mut p, mut b, mut c) = (0i32, 0i32, 0i32);
        while let Some(t) = self.bump() {
            match t.tok {
                Tok::P('(') => p += 1,
                Tok::P(')') => p -= 1,
                Tok::P('[') => b += 1,
                Tok::P(']') => b -= 1,
                Tok::P('{') => c += 1,
                Tok::P('}') => c -= 1,
                Tok::P(';') if p <= 0 && b <= 0 && c <= 0 => return,
                _ => {}
            }
        }
    }
}

/// Accumulated facts from the attributes in front of an item.
#[derive(Default)]
struct Attrs {
    cfg_test: bool,
    is_test: bool,
    derives: Vec<String>,
}

fn parse_attrs(cur: &mut Cursor) -> Attrs {
    let mut a = Attrs::default();
    while cur.peek().is_some_and(|t| t.is_p('#')) {
        cur.bump();
        cur.eat_p('!'); // inner attribute
        if !cur.peek().is_some_and(|t| t.is_p('[')) {
            break;
        }
        let inner = cur.skip_group();
        let idents: Vec<&str> = inner.iter().filter_map(|t| t.ident()).collect();
        if idents.first() == Some(&"cfg") && idents.contains(&"test") && !idents.contains(&"not") {
            a.cfg_test = true;
        }
        if idents.len() == 1 && idents[0] == "test" {
            a.is_test = true;
        }
        if idents.first() == Some(&"derive") {
            a.derives.extend(idents[1..].iter().map(|s| s.to_string()));
        }
    }
    a
}

/// Parses a run of items. When `until_close` is set, stops after
/// consuming the `}` that closes the current block.
fn parse_items(cur: &mut Cursor, ctx: &Ctx, pf: &mut ParsedFile, until_close: bool) {
    while !cur.at_end() {
        if cur.peek().is_some_and(|t| t.is_p('}')) {
            if until_close {
                cur.bump();
            }
            return;
        }
        let attrs = parse_attrs(cur);
        parse_one_item(cur, ctx, pf, attrs);
    }
}

/// Parses the item starting at the cursor (after its attributes), or
/// advances one token if nothing recognizable starts here.
fn parse_one_item(cur: &mut Cursor, ctx: &Ctx, pf: &mut ParsedFile, attrs: Attrs) {
    // Visibility and modifiers.
    if cur.peek().is_some_and(|t| t.is_ident("pub")) {
        cur.bump();
        if cur.peek().is_some_and(|t| t.is_p('(')) {
            cur.skip_group();
        }
    }
    while cur
        .peek()
        .is_some_and(|t| matches!(t.ident(), Some("unsafe" | "async" | "default")))
    {
        cur.bump();
    }
    if cur.peek().is_some_and(|t| t.is_ident("extern")) {
        cur.bump();
        if cur.peek().is_some_and(|t| matches!(t.tok, Tok::Str(_))) {
            cur.bump();
        }
    }
    let Some(kw) = cur.peek().and_then(|t| t.ident()).map(str::to_string) else {
        cur.bump();
        return;
    };
    match kw.as_str() {
        "fn" => parse_fn(cur, ctx, pf, &attrs),
        "struct" | "enum" | "union" => parse_type(cur, ctx, pf, &attrs),
        "impl" => parse_impl(cur, ctx, pf, &attrs),
        "trait" => parse_trait(cur, ctx, pf, &attrs),
        "mod" => {
            cur.bump();
            cur.bump(); // name
            if cur.eat_p(';') {
                return;
            }
            if cur.peek().is_some_and(|t| t.is_p('{')) {
                cur.bump();
                let inner = Ctx {
                    owner: None,
                    in_test: ctx.in_test || attrs.cfg_test,
                };
                parse_items(cur, &inner, pf, true);
            }
        }
        "const" | "static" => {
            cur.bump();
            if cur.peek().is_some_and(|t| t.is_ident("fn")) {
                parse_fn(cur, ctx, pf, &attrs);
                return;
            }
            cur.eat_p('_'); // `const _: () = …`
            let name = cur.peek().and_then(|t| t.ident()).map(str::to_string);
            let line = cur.peek().map_or(0, |t| t.line);
            // Find `=` then capture the value up to the top-level `;`.
            let val_start = {
                let (mut p, mut b, mut c) = (0i32, 0i32, 0i32);
                let mut eq = None;
                let mut j = cur.pos;
                while let Some(t) = cur.toks.get(j) {
                    match t.tok {
                        Tok::P('(') => p += 1,
                        Tok::P(')') => p -= 1,
                        Tok::P('[') => b += 1,
                        Tok::P(']') => b -= 1,
                        Tok::P('{') => c += 1,
                        Tok::P('}') => c -= 1,
                        Tok::P('=') if p == 0 && b == 0 && c == 0 && eq.is_none() => {
                            eq = Some(j + 1)
                        }
                        Tok::P(';') if p <= 0 && b <= 0 && c <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                eq
            };
            cur.skip_to_semi();
            if let (Some(name), Some(vs)) = (name, val_start) {
                let end = cur.pos.saturating_sub(1).max(vs);
                pf.consts.push(ConstItem {
                    name,
                    line,
                    value: cur.toks[vs..end].to_vec(),
                });
            }
        }
        "use" | "type" => cur.skip_to_semi(),
        "macro_rules" => {
            cur.bump();
            cur.eat_p('!');
            cur.bump(); // macro name
            cur.skip_group();
        }
        _ => {
            cur.bump();
        }
    }
}

fn parse_fn(cur: &mut Cursor, ctx: &Ctx, pf: &mut ParsedFile, attrs: &Attrs) {
    let fn_line = cur.peek().map_or(0, |t| t.line);
    cur.bump(); // `fn`
    let Some(name) = cur.peek().and_then(|t| t.ident()).map(str::to_string) else {
        return;
    };
    cur.bump();
    if cur.peek().is_some_and(|t| t.is_p('<')) {
        cur.skip_angles();
    }
    let params = if cur.peek().is_some_and(|t| t.is_p('(')) {
        cur.skip_group().to_vec()
    } else {
        Vec::new()
    };
    // Return type / where clause: scan for the body `{` or a decl-only
    // `;` at paren/bracket depth 0.
    let (mut p, mut b) = (0i32, 0i32);
    loop {
        let Some(t) = cur.peek() else { return };
        match t.tok {
            Tok::P('(') => p += 1,
            Tok::P(')') => p -= 1,
            Tok::P('[') => b += 1,
            Tok::P(']') => b -= 1,
            Tok::P(';') if p <= 0 && b <= 0 => {
                cur.bump();
                pf.fns.push(FnItem {
                    name,
                    owner: ctx.owner.clone(),
                    line: fn_line,
                    in_test: ctx.in_test || attrs.cfg_test || attrs.is_test,
                    body: Vec::new(),
                    params,
                });
                return;
            }
            Tok::P('{') if p <= 0 && b <= 0 => break,
            _ => {}
        }
        cur.bump();
    }
    cur.bump(); // `{`
    let in_test = ctx.in_test || attrs.cfg_test || attrs.is_test;
    let body_ctx = Ctx {
        owner: None,
        in_test,
    };
    let body = parse_body(cur, &body_ctx, pf);
    pf.fns.push(FnItem {
        name,
        owner: ctx.owner.clone(),
        line: fn_line,
        in_test,
        body,
        params,
    });
}

/// Collects a `{ … }` body (opening brace already consumed), recursing
/// into nested items so their tokens don't pollute the parent body.
fn parse_body(cur: &mut Cursor, ctx: &Ctx, pf: &mut ParsedFile) -> Vec<Token> {
    let mut body = Vec::new();
    let mut depth = 1i32;
    while let Some(t) = cur.peek() {
        match &t.tok {
            Tok::P('{') => {
                depth += 1;
                body.push(t.clone());
                cur.bump();
            }
            Tok::P('}') => {
                depth -= 1;
                if depth == 0 {
                    cur.bump();
                    return body;
                }
                body.push(t.clone());
                cur.bump();
            }
            Tok::Ident(kw) if is_nested_item_start(cur, kw, &body) => {
                parse_one_item(cur, ctx, pf, Attrs::default());
            }
            _ => {
                body.push(t.clone());
                cur.bump();
            }
        }
    }
    body
}

/// Is the keyword under the cursor the start of a nested item inside a
/// function body (as opposed to e.g. an `fn(…)` pointer type or a
/// `.union(…)` method call)?
fn is_nested_item_start(cur: &Cursor, kw: &str, body: &[Token]) -> bool {
    let prev_dot_or_colon = body
        .last()
        .is_some_and(|t| t.is_p('.') || t.is_p(':') || t.is_p('*'));
    if prev_dot_or_colon {
        return false;
    }
    let next_is_ident = cur
        .peek_at(1)
        .is_some_and(|t| matches!(t.tok, Tok::Ident(_)));
    match kw {
        "fn" | "mod" | "trait" | "struct" | "enum" => next_is_ident,
        // `union` is a contextual keyword — require `union Name {`.
        "union" => next_is_ident && cur.peek_at(2).is_some_and(|t| t.is_p('{')),
        "impl" => cur
            .peek_at(1)
            .is_some_and(|t| matches!(t.tok, Tok::Ident(_) | Tok::P('<'))),
        "macro_rules" => cur.peek_at(1).is_some_and(|t| t.is_p('!')),
        _ => false,
    }
}

fn parse_type(cur: &mut Cursor, ctx: &Ctx, pf: &mut ParsedFile, attrs: &Attrs) {
    let kind = match cur.peek().and_then(|t| t.ident()) {
        Some("enum") => TypeKind::Enum,
        _ => TypeKind::Struct, // `struct` and `union` alike
    };
    let line = cur.peek().map_or(0, |t| t.line);
    cur.bump();
    let Some(name) = cur.peek().and_then(|t| t.ident()).map(str::to_string) else {
        return;
    };
    cur.bump();
    if cur.peek().is_some_and(|t| t.is_p('<')) {
        cur.skip_angles();
    }
    // Optional where clause before the body.
    if cur.peek().is_some_and(|t| t.is_ident("where")) {
        while let Some(t) = cur.peek() {
            if t.is_p('{') || t.is_p(';') || t.is_p('(') {
                break;
            }
            cur.bump();
        }
    }
    let mut item = TypeItem {
        name,
        kind,
        line,
        in_test: ctx.in_test || attrs.cfg_test,
        derives: attrs.derives.clone(),
        fields: Vec::new(),
        variants: Vec::new(),
    };
    if cur.eat_p(';') {
        // Unit struct.
    } else if cur.peek().is_some_and(|t| t.is_p('(')) {
        let inner = cur.skip_group();
        item.fields = tuple_fields(inner);
        cur.eat_p(';');
    } else if cur.peek().is_some_and(|t| t.is_p('{')) {
        let inner = cur.skip_group().to_vec();
        match kind {
            TypeKind::Struct => item.fields = named_fields(&inner),
            TypeKind::Enum => item.variants = enum_variants(&inner),
        }
    }
    pf.types.push(item);
}

/// Splits a token run at top-level commas.
fn split_commas(toks: &[Token]) -> Vec<&[Token]> {
    let mut parts = Vec::new();
    let (mut p, mut b, mut c, mut a) = (0i32, 0i32, 0i32, 0i32);
    let mut prev_dash = false;
    let mut start = 0usize;
    for (i, t) in toks.iter().enumerate() {
        match t.tok {
            Tok::P('(') => p += 1,
            Tok::P(')') => p -= 1,
            Tok::P('[') => b += 1,
            Tok::P(']') => b -= 1,
            Tok::P('{') => c += 1,
            Tok::P('}') => c -= 1,
            Tok::P('<') => a += 1,
            Tok::P('>') if !prev_dash => a -= 1,
            Tok::P(',') if p == 0 && b == 0 && c == 0 && a <= 0 => {
                parts.push(&toks[start..i]);
                start = i + 1;
                a = a.max(0);
            }
            _ => {}
        }
        prev_dash = t.is_p('-');
    }
    if start < toks.len() {
        parts.push(&toks[start..]);
    }
    parts
}

/// Strips leading attributes and visibility from a field chunk.
fn strip_field_prefix(mut toks: &[Token]) -> &[Token] {
    loop {
        if toks.first().is_some_and(|t| t.is_p('#')) {
            // `#[…]`
            let mut d = 0i32;
            let mut end = toks.len();
            for (i, t) in toks.iter().enumerate().skip(1) {
                if t.is_p('[') {
                    d += 1;
                } else if t.is_p(']') {
                    d -= 1;
                    if d == 0 {
                        end = i + 1;
                        break;
                    }
                }
            }
            toks = &toks[end.min(toks.len())..];
            continue;
        }
        if toks.first().is_some_and(|t| t.is_ident("pub")) {
            toks = &toks[1..];
            if toks.first().is_some_and(|t| t.is_p('(')) {
                let mut d = 0i32;
                let mut end = toks.len();
                for (i, t) in toks.iter().enumerate() {
                    if t.is_p('(') {
                        d += 1;
                    } else if t.is_p(')') {
                        d -= 1;
                        if d == 0 {
                            end = i + 1;
                            break;
                        }
                    }
                }
                toks = &toks[end.min(toks.len())..];
            }
            continue;
        }
        return toks;
    }
}

fn tuple_fields(toks: &[Token]) -> Vec<FieldDef> {
    split_commas(toks)
        .into_iter()
        .map(strip_field_prefix)
        .filter(|c| !c.is_empty())
        .enumerate()
        .map(|(i, chunk)| FieldDef {
            name: i.to_string(),
            ty: toks_to_string(chunk),
        })
        .collect()
}

fn named_fields(toks: &[Token]) -> Vec<FieldDef> {
    split_commas(toks)
        .into_iter()
        .map(strip_field_prefix)
        .filter(|c| c.len() >= 3)
        .filter_map(|chunk| {
            let name = chunk[0].ident()?.to_string();
            if !chunk[1].is_p(':') {
                return None;
            }
            Some(FieldDef {
                name,
                ty: toks_to_string(&chunk[2..]),
            })
        })
        .collect()
}

fn enum_variants(toks: &[Token]) -> Vec<VariantDef> {
    split_commas(toks)
        .into_iter()
        .map(strip_field_prefix)
        .filter(|c| !c.is_empty())
        .filter_map(|chunk| {
            let name = chunk[0].ident()?.to_string();
            let mut fields = Vec::new();
            if let Some(t) = chunk.get(1) {
                if t.is_p('(') {
                    // Tuple variant: inner tokens up to the matching `)`.
                    let mut d = 0i32;
                    let mut end = chunk.len();
                    for (i, t) in chunk.iter().enumerate().skip(1) {
                        if t.is_p('(') {
                            d += 1;
                        } else if t.is_p(')') {
                            d -= 1;
                            if d == 0 {
                                end = i;
                                break;
                            }
                        }
                    }
                    fields = tuple_fields(&chunk[2..end.min(chunk.len())]);
                } else if t.is_p('{') {
                    let mut d = 0i32;
                    let mut end = chunk.len();
                    for (i, t) in chunk.iter().enumerate().skip(1) {
                        if t.is_p('{') {
                            d += 1;
                        } else if t.is_p('}') {
                            d -= 1;
                            if d == 0 {
                                end = i;
                                break;
                            }
                        }
                    }
                    fields = named_fields(&chunk[2..end.min(chunk.len())]);
                }
            }
            Some(VariantDef { name, fields })
        })
        .collect()
}

fn parse_impl(cur: &mut Cursor, ctx: &Ctx, pf: &mut ParsedFile, attrs: &Attrs) {
    cur.bump(); // `impl`
    if cur.peek().is_some_and(|t| t.is_p('<')) {
        cur.skip_angles();
    }
    // Header tokens up to the body `{`.
    let start = cur.pos;
    let (mut p, mut b) = (0i32, 0i32);
    while let Some(t) = cur.peek() {
        match t.tok {
            Tok::P('(') => p += 1,
            Tok::P(')') => p -= 1,
            Tok::P('[') => b += 1,
            Tok::P(']') => b -= 1,
            Tok::P('{') if p <= 0 && b <= 0 => break,
            _ => {}
        }
        cur.bump();
    }
    let header = &cur.toks[start..cur.pos];
    let owner = impl_owner(header);
    if !cur.eat_p('{') {
        return;
    }
    let inner = Ctx {
        owner,
        in_test: ctx.in_test || attrs.cfg_test,
    };
    parse_items(cur, &inner, pf, true);
}

/// The self-type name of an `impl` header (tokens between `impl`'s
/// generics and the body `{`): the last angle-depth-0 identifier of the
/// type after `for` (or of the whole header when there is no `for`),
/// stopping at a `where` clause.
fn impl_owner(header: &[Token]) -> Option<String> {
    let mut depth = 0i32;
    let mut after_for: Option<usize> = None;
    let mut where_at: Option<usize> = None;
    let mut prev_dash = false;
    for (i, t) in header.iter().enumerate() {
        match &t.tok {
            Tok::P('<') => depth += 1,
            Tok::P('>') if !prev_dash => depth -= 1,
            Tok::Ident(s) if depth <= 0 && s == "for" => after_for = Some(i + 1),
            Tok::Ident(s) if depth <= 0 && s == "where" && where_at.is_none() => where_at = Some(i),
            _ => {}
        }
        prev_dash = t.is_p('-');
    }
    let lo = after_for.unwrap_or(0);
    let hi = where_at.unwrap_or(header.len()).max(lo);
    let mut depth = 0i32;
    let mut owner = None;
    let mut prev_dash = false;
    for t in &header[lo..hi] {
        match &t.tok {
            Tok::P('<') => depth += 1,
            Tok::P('>') if !prev_dash => depth -= 1,
            Tok::Ident(s) if depth <= 0 && s != "dyn" && s != "mut" => {
                owner = Some(s.clone());
            }
            _ => {}
        }
        prev_dash = t.is_p('-');
    }
    owner
}

fn parse_trait(cur: &mut Cursor, ctx: &Ctx, pf: &mut ParsedFile, attrs: &Attrs) {
    cur.bump(); // `trait`
    let name = cur.peek().and_then(|t| t.ident()).map(str::to_string);
    cur.bump();
    // Generics, supertrait bounds, where clause — up to `{` or `;`.
    let (mut p, mut b) = (0i32, 0i32);
    while let Some(t) = cur.peek() {
        match t.tok {
            Tok::P('(') => p += 1,
            Tok::P(')') => p -= 1,
            Tok::P('[') => b += 1,
            Tok::P(']') => b -= 1,
            Tok::P(';') if p <= 0 && b <= 0 => {
                cur.bump();
                return;
            }
            Tok::P('{') if p <= 0 && b <= 0 => break,
            _ => {}
        }
        cur.bump();
    }
    if !cur.eat_p('{') {
        return;
    }
    let inner = Ctx {
        owner: name,
        in_test: ctx.in_test || attrs.cfg_test,
    };
    parse_items(cur, &inner, pf, true);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(src: &str) -> ParsedFile {
        parse_file("x.rs", src)
    }

    #[test]
    fn lexes_strings_chars_lifetimes_and_numbers() {
        let toks = lex(
            r##"let s = r#"raw "x" lit"#; let b = b"by"; let c = 'x'; let d = '\n'; fn f<'a>(x: &'a str) {} let n = 1_000u64; let f2 = 3.25;"##,
        );
        let strs: Vec<&str> = toks.iter().filter_map(|t| t.str_lit()).collect();
        assert_eq!(strs, vec![r#"raw "x" lit"#, "by"]);
        assert_eq!(toks.iter().filter(|t| t.tok == Tok::Char).count(), 2);
        let lifes: Vec<String> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Life(l) => Some(l.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(lifes, vec!["a", "a"]);
        let nums: Vec<String> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(n) => Some(n.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, vec!["1_000u64", "3.25"]);
    }

    #[test]
    fn lexes_nested_block_comments_and_keeps_lines() {
        let toks = lex("a /* x /* y */ z */ b\nc");
        let idents: Vec<(&str, usize)> = toks
            .iter()
            .filter_map(|t| t.ident().map(|s| (s, t.line)))
            .collect();
        assert_eq!(idents, vec![("a", 1), ("b", 1), ("c", 2)]);
    }

    #[test]
    fn parses_free_fns_methods_and_owners() {
        let pf = fns(
            "fn free(a: u32) -> u32 { a }\n\
             struct S { x: u64 }\n\
             impl S { fn method(&self) -> u64 { self.x } }\n\
             impl std::fmt::Display for S {\n\
                 fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { write!(f, \"\") }\n\
             }\n",
        );
        let names: Vec<(Option<&str>, &str)> = pf
            .fns
            .iter()
            .map(|f| (f.owner.as_deref(), f.name.as_str()))
            .collect();
        assert_eq!(
            names,
            vec![(None, "free"), (Some("S"), "method"), (Some("S"), "fmt")]
        );
    }

    #[test]
    fn nested_items_are_excluded_from_parent_bodies() {
        let pf = fns("fn outer() {\n\
                 struct Guard { n: u32 }\n\
                 impl Drop for Guard { fn drop(&mut self) { inner_call(); } }\n\
                 fn helper() { helper_call(); }\n\
                 outer_call();\n\
             }\n");
        let outer = pf.fns.iter().find(|f| f.name == "outer").unwrap();
        let body = toks_to_string(&outer.body);
        assert!(body.contains("outer_call"));
        assert!(!body.contains("inner_call"), "{body}");
        assert!(!body.contains("helper_call"), "{body}");
        assert!(pf.fns.iter().any(|f| f.name == "drop"));
        assert!(pf.fns.iter().any(|f| f.name == "helper"));
        assert!(pf.types.iter().any(|t| t.name == "Guard"));
    }

    #[test]
    fn fn_pointer_types_and_method_calls_are_not_nested_items() {
        let pf = fns("fn f(cb: fn(u32) -> u32) { let v = a.union(b); let g: fn() = h; }\n");
        assert_eq!(pf.fns.len(), 1);
        let body = toks_to_string(&pf.fns[0].body);
        assert!(body.contains("union"));
    }

    #[test]
    fn cfg_test_marks_fns_and_types() {
        let pf = fns("#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n\
             #[test]\nfn standalone() {}\n\
             #[cfg(not(test))]\nfn shipped() {}\n");
        assert!(pf.fns.iter().find(|f| f.name == "t").unwrap().in_test);
        assert!(
            pf.fns
                .iter()
                .find(|f| f.name == "standalone")
                .unwrap()
                .in_test
        );
        assert!(!pf.fns.iter().find(|f| f.name == "shipped").unwrap().in_test);
    }

    #[test]
    fn enums_capture_variants_in_order_with_fields() {
        let pf = fns("#[derive(Debug, Serialize, Deserialize)]\n\
             pub enum Request {\n\
                 Ping,\n\
                 Fund { project: u64, amount: u32 },\n\
                 Blob(Vec<u8>, String),\n\
             }\n");
        let e = &pf.types[0];
        assert_eq!(e.kind, TypeKind::Enum);
        assert_eq!(e.derives, vec!["Debug", "Serialize", "Deserialize"]);
        let names: Vec<&str> = e.variants.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["Ping", "Fund", "Blob"]);
        assert_eq!(e.variants[1].fields.len(), 2);
        assert_eq!(e.variants[1].fields[0].name, "project");
        assert_eq!(e.variants[1].fields[0].ty, "u64");
        assert_eq!(e.variants[2].fields[0].name, "0");
        assert_eq!(e.variants[2].fields[0].ty, "Vec < u8 >");
    }

    #[test]
    fn structs_capture_fields_and_generics_do_not_confuse() {
        let pf = fns("pub struct Rec<T: Clone> where T: Default {\n\
                 pub id: u64,\n\
                 data: Vec<(T, String)>,\n\
             }\n\
             struct Tup(pub u32, String);\n\
             struct Unit;\n");
        assert_eq!(pf.types.len(), 3);
        let r = &pf.types[0];
        assert_eq!(r.fields.len(), 2);
        assert_eq!(r.fields[1].ty, "Vec < ( T , String ) >");
        assert_eq!(pf.types[1].fields[0].name, "0");
        assert_eq!(pf.types[1].fields[0].ty, "u32");
        assert!(pf.types[2].fields.is_empty());
    }

    #[test]
    fn consts_capture_values() {
        let pf = fns("pub const PROTOCOL_VERSION: u32 = 2;\nconst ARR: [u8; 3] = [1, 2, 3];\npub const SITE: &str = \"wal.append\";\n");
        assert_eq!(pf.consts.len(), 3);
        assert_eq!(toks_to_string(&pf.consts[0].value), "2");
        assert_eq!(pf.consts[2].name, "SITE");
        assert_eq!(pf.consts[2].value[0].str_lit(), Some("wal.append"));
    }

    #[test]
    fn turbofish_and_arrows_survive_generic_skipping() {
        let pf = fns(
            "fn f<F: Fn(u32) -> u64>(g: F) -> u64 { g(collect::<Vec<_>>(x).len() as u32) }\n\
             fn next(&mut self) -> Option<&'static str> { None }\n",
        );
        assert_eq!(pf.fns.len(), 2);
        assert_eq!(pf.fns[0].name, "f");
        assert!(toks_to_string(&pf.fns[0].body).contains("collect"));
        assert_eq!(pf.fns[1].name, "next");
    }

    #[test]
    fn impl_owner_handles_paths_generics_and_for() {
        let check = |src: &str, want: &str| {
            let pf = fns(src);
            assert_eq!(pf.fns[0].owner.as_deref(), Some(want), "src: {src}");
        };
        check("impl Store { fn f(&self) {} }", "Store");
        check("impl<'a> MergeIter<'a> { fn f(&self) {} }", "MergeIter");
        check(
            "impl fmt::Display for Violation { fn f(&self) {} }",
            "Violation",
        );
        check(
            "impl<T: Clone> From<T> for Wrapper<T> where T: Default { fn f(&self) {} }",
            "Wrapper",
        );
    }

    #[test]
    fn trait_decls_and_default_methods() {
        let pf = fns("trait Strategy {\n\
                 fn pick(&self) -> u32;\n\
                 fn name(&self) -> &'static str { \"anon\" }\n\
             }\n");
        assert_eq!(pf.fns.len(), 2);
        assert!(pf
            .fns
            .iter()
            .all(|f| f.owner.as_deref() == Some("Strategy")));
        assert!(pf
            .fns
            .iter()
            .find(|f| f.name == "pick")
            .unwrap()
            .body
            .is_empty());
    }

    #[test]
    fn parser_is_total_on_garbage() {
        for src in [
            "fn",
            "impl {",
            "struct ;;;",
            "enum E { A(",
            "}}}}",
            "fn f( {",
            "const X",
            "'",
            "r#\"unterminated",
        ] {
            let _ = parse_file("g.rs", src); // must not panic
        }
    }
}
