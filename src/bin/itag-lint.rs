//! CLI for the repo-invariant lint and the call-graph analyses.
//!
//! ```text
//! itag-lint [SUBCOMMAND] [--format=text|json|github] [--bless] [--root PATH]
//!
//! Subcommands:
//!   all        token lint + every analysis (default)
//!   lint       token-level rules (env-var, store-unwrap, std-sync, fences)
//!   panics     panic-reachability from commit/recovery/session roots
//!   schema     serbin schema-drift check against schema.lock
//!   lockorder  static lock-order vs the runtime lockcheck policy
//!   faultcov   fault-site coverage + SITES registry cross-check
//! ```
//!
//! `--format=json` emits one machine-readable object; `--format=github`
//! emits GitHub Actions `::error` annotations (used by the CI `analysis`
//! job). `--bless` (schema only) rewrites `schema.lock` from the
//! current source. Exit code 1 on any violation.

use std::path::PathBuf;

use itag::analyze::{self, AnalysisReport};
use itag::lint::{self, Violation};

struct Args {
    root: PathBuf,
    cmd: String,
    format: String,
    bless: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from(env!("CARGO_MANIFEST_DIR")),
        cmd: "all".into(),
        format: "text".into(),
        bless: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        if let Some(f) = a.strip_prefix("--format=") {
            args.format = f.to_string();
        } else if a == "--format" {
            args.format = it.next().ok_or("--format needs a value")?;
        } else if a == "--bless" {
            args.bless = true;
        } else if a == "--root" {
            args.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
        } else if a.starts_with("--") {
            return Err(format!("unknown flag `{a}`"));
        } else if matches!(
            a.as_str(),
            "all" | "lint" | "panics" | "schema" | "lockorder" | "faultcov"
        ) {
            args.cmd = a;
        } else {
            // Back-compat: `itag-lint PATH` lints a workspace at PATH.
            args.root = PathBuf::from(a);
        }
    }
    if !matches!(args.format.as_str(), "text" | "json" | "github") {
        return Err(format!("unknown format `{}`", args.format));
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("itag-lint: {e}");
            std::process::exit(2);
        }
    };

    let run_lint = matches!(args.cmd.as_str(), "all" | "lint");
    let lint_report = run_lint.then(|| lint::run(&args.root));

    let analysis: Option<AnalysisReport> = match args.cmd.as_str() {
        "all" => Some(analyze::run_all(&args.root, args.bless)),
        "panics" | "lockorder" | "faultcov" => {
            let ws = analyze::Workspace::load(&args.root);
            let part = match args.cmd.as_str() {
                "panics" => analyze::panics::check(&args.root, &ws),
                "lockorder" => analyze::lockorder::check(&args.root, &ws),
                _ => analyze::faultcov::check(&args.root, &ws),
            };
            Some(AnalysisReport {
                files_parsed: ws.files.len(),
                fns_analyzed: ws.fns.len(),
                parts: vec![part],
            })
        }
        "schema" => {
            let ws = analyze::Workspace::load(&args.root);
            Some(AnalysisReport {
                files_parsed: ws.files.len(),
                fns_analyzed: ws.fns.len(),
                parts: vec![analyze::schema::check(
                    &args.root,
                    &ws.files,
                    &analyze::lock_path(&args.root),
                    args.bless,
                )],
            })
        }
        _ => None,
    };

    // Collect everything for rendering.
    let mut violations: Vec<&Violation> = Vec::new();
    let mut waivers: Vec<(String, String)> = Vec::new();
    let mut notes: Vec<String> = Vec::new();
    if let Some(r) = &lint_report {
        violations.extend(r.violations.iter());
        waivers.extend(r.waivers_used.iter().map(|w| {
            (
                w.rule.clone(),
                format!(
                    "{}:{} [budget {}]",
                    w.file,
                    w.line,
                    lint::waiver_budget(&w.rule)
                ),
            )
        }));
    }
    if let Some(r) = &analysis {
        for part in &r.parts {
            violations.extend(part.violations.iter());
            waivers.extend(
                part.waivers
                    .iter()
                    .map(|w| ("panic-path".to_string(), w.clone())),
            );
            notes.extend(part.notes.iter().map(|n| format!("{}: {n}", part.name)));
        }
    }
    let clean = violations.is_empty();

    match args.format.as_str() {
        "json" => println!(
            "{}",
            analyze::render_json("itag-lint", &violations, &waivers, clean)
        ),
        "github" => {
            if !clean {
                println!("{}", analyze::render_github(&violations));
            }
            for n in &notes {
                println!("::notice title=itag-lint::{n}");
            }
        }
        _ => {
            if !waivers.is_empty() {
                println!("reviewed waivers in effect:");
                for (rule, w) in &waivers {
                    println!("  allow({rule}) {w}");
                }
            }
            for n in &notes {
                println!("note: {n}");
            }
            if clean {
                let scanned = lint_report.as_ref().map(|r| r.files_scanned).unwrap_or(0);
                let fns = analysis.as_ref().map(|r| r.fns_analyzed).unwrap_or(0);
                println!(
                    "itag-lint {}: clean ({scanned} files linted, {fns} fns analyzed, {} waivers)",
                    args.cmd,
                    waivers.len()
                );
            } else {
                eprintln!("itag-lint {}: {} violation(s):", args.cmd, violations.len());
                for v in &violations {
                    eprintln!("  {v}");
                }
            }
        }
    }

    if !clean {
        std::process::exit(1);
    }
}
