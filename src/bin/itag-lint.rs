//! CLI wrapper for the repo-invariant lint (`itag::lint`).
//!
//! Usage: `itag-lint [ROOT]` — lints the workspace rooted at ROOT
//! (default: this crate's manifest directory, i.e. the repo checkout the
//! binary was built from). Exits 1 on any violation, printing each as
//! `file:line: [rule] message`. Clean runs print the scanned-file count
//! and the reviewed waiver list, so the exception surface stays visible
//! in CI logs.

use std::path::PathBuf;

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")));

    let report = itag::lint::run(&root);

    if !report.waivers_used.is_empty() {
        println!("reviewed waivers in effect:");
        for w in &report.waivers_used {
            println!(
                "  {}:{}: allow({})  [budget {}]",
                w.file,
                w.line,
                w.rule,
                itag::lint::waiver_budget(&w.rule)
            );
        }
    }

    if report.is_clean() {
        println!(
            "itag-lint: clean ({} files scanned, {} waivers used)",
            report.files_scanned,
            report.waivers_used.len()
        );
        return;
    }

    eprintln!("itag-lint: {} violation(s):", report.violations.len());
    for v in &report.violations {
        eprintln!("  {v}");
    }
    std::process::exit(1);
}
