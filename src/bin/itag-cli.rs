//! `itag-cli` — command-line front end for the iTag reproduction.
//!
//! ```text
//! itag-cli generate --resources 1000 --posts 5000 --seed 7 --out corpus.bin
//! itag-cli ingest   --input events.tsv --out corpus.bin
//! itag-cli inspect  corpus.bin
//! itag-cli campaign --corpus corpus.bin --strategy fp-mu --budget 5000
//! itag-cli compare  --corpus corpus.bin --budget 5000
//! itag-cli export   --corpus corpus.bin --strategy mu --budget 5000 --out tags.csv
//! ```
//!
//! Corpus files are the `serbin` encoding of [`itag::model::Dataset`];
//! `events.tsv` rows are `at<TAB>resource<TAB>tagger<TAB>tag1,tag2,…`.

use itag::core::config::EngineConfig;
use itag::core::engine::ITagEngine;
use itag::core::project::ProjectSpec;
use itag::model::dataset::Dataset;
use itag::model::delicious::DeliciousConfig;
use itag::model::ingest::{ingest, RawEvent};
use itag::model::resource::ResourceKind;
use itag::quality::metric::{QualityMetric, StabilityKernel};
use itag::store::serbin;
use itag::strategy::framework::Framework;
use itag::strategy::simenv::SimWorld;
use itag::strategy::StrategyKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Minimal flag parser: `--key value` pairs plus positional arguments.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: &[String]) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.iter();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
                flags.push((key.to_string(), value.clone()));
            } else {
                positional.push(arg.clone());
            }
        }
        Ok(Args { positional, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_or(&self, key: &str, default: &str) -> String {
        self.get(key).unwrap_or(default).to_string()
    }

    fn parse_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }
}

fn parse_strategy(name: &str) -> Result<StrategyKind, String> {
    Ok(match name {
        "fc" => StrategyKind::FreeChoice,
        "fc-pref" => StrategyKind::FreeChoicePreferential,
        "fp" => StrategyKind::FewestPosts,
        "mu" => StrategyKind::MostUnstable,
        "fp-mu" => StrategyKind::FpMu { min_posts: 5 },
        "rand" => StrategyKind::Random,
        "opt" => StrategyKind::Optimal,
        "opt-dp" => StrategyKind::OptimalDp,
        other => {
            return Err(format!(
                "unknown strategy '{other}' (fc|fc-pref|fp|mu|fp-mu|rand|opt|opt-dp)"
            ))
        }
    })
}

fn parse_metric(args: &Args) -> Result<QualityMetric, String> {
    let window: u32 = args.parse_num("window", 5)?;
    let kernel = match args.get_or("kernel", "cosine").as_str() {
        "cosine" => StabilityKernel::Cosine,
        "tv" => StabilityKernel::OneMinusTv,
        "jaccard" => StabilityKernel::TopKJaccard { k: 10 },
        other => return Err(format!("unknown kernel '{other}' (cosine|tv|jaccard)")),
    };
    Ok(QualityMetric::Stability { window, kernel })
}

fn load_corpus(path: &str) -> Result<Dataset, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut dataset: Dataset =
        serbin::from_bytes(&bytes).map_err(|e| format!("decode {path}: {e}"))?;
    dataset.dictionary.rebuild_index();
    for latent in &mut dataset.latent {
        latent.rebuild_sampler();
    }
    Ok(dataset)
}

fn save_corpus(path: &str, dataset: &Dataset) -> Result<(), String> {
    let bytes = serbin::to_bytes(dataset).map_err(|e| e.to_string())?;
    std::fs::write(path, &bytes).map_err(|e| format!("write {path}: {e}"))?;
    println!("wrote {path} ({} bytes)", bytes.len());
    Ok(())
}

fn cmd_generate(args: &Args) -> Result<(), String> {
    let resources: usize = args.parse_num("resources", 1_000)?;
    let posts: usize = args.parse_num("posts", resources * 5)?;
    let seed: u64 = args.parse_num("seed", 42)?;
    let out = args.require("out")?;
    let corpus = DeliciousConfig {
        resources,
        initial_posts: posts,
        eval_posts: 0,
        seed,
        ..DeliciousConfig::default()
    }
    .generate();
    save_corpus(out, &corpus.dataset)
}

fn cmd_ingest(args: &Args) -> Result<(), String> {
    let input = args.require("input")?;
    let out = args.require("out")?;
    let text = std::fs::read_to_string(input).map_err(|e| format!("read {input}: {e}"))?;
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() != 4 {
            return Err(format!(
                "{input}:{}: expected 4 tab-separated columns, got {}",
                lineno + 1,
                cols.len()
            ));
        }
        let at: u64 = cols[0]
            .parse()
            .map_err(|_| format!("{input}:{}: bad timestamp '{}'", lineno + 1, cols[0]))?;
        events.push(RawEvent {
            at,
            resource: cols[1].to_string(),
            tagger: cols[2].to_string(),
            tags: cols[3].split(',').map(str::to_string).collect(),
        });
    }
    let ingested = ingest(&events, ResourceKind::WebUrl).ok_or("no usable events in the input")?;
    println!(
        "ingested {} events onto {} resources ({} dropped)",
        ingested.dataset.initial_posts.len(),
        ingested.dataset.len(),
        ingested.dropped_events
    );
    save_corpus(out, &ingested.dataset)
}

fn cmd_inspect(args: &Args) -> Result<(), String> {
    let path = args
        .positional
        .get(1)
        .map(String::as_str)
        .or_else(|| args.get("corpus"))
        .ok_or("usage: itag-cli inspect <corpus.bin>")?;
    let dataset = load_corpus(path)?;
    let stats = dataset.stats();
    println!("corpus {path}");
    println!("  resources     {}", stats.resources);
    println!("  posts         {}", stats.total_posts);
    println!("  tags          {}", dataset.dictionary.len());
    println!("  mean posts    {:.2}", stats.mean_posts);
    println!("  median posts  {}", stats.median_posts);
    println!("  max posts     {}", stats.max_posts);
    println!("  zero-post     {:.1}%", stats.zero_fraction * 100.0);
    println!("  top-10% share {:.1}%", stats.head_share * 100.0);
    println!("  gini          {:.3}", stats.gini);
    Ok(())
}

fn cmd_campaign(args: &Args) -> Result<(), String> {
    let dataset = load_corpus(args.require("corpus")?)?;
    let kind = parse_strategy(&args.get_or("strategy", "fp-mu"))?;
    let budget: u32 = args.parse_num("budget", 5_000)?;
    let seed: u64 = args.parse_num("seed", 7)?;
    let noise: f64 = args.parse_num("noise", 0.0)?;
    let metric = parse_metric(args)?;

    let mut world = SimWorld::new(dataset, metric).with_noise(noise);
    let oracle0 = world.oracle_mean_quality();
    let mut strategy = kind.build();
    let mut rng = StdRng::seed_from_u64(seed);
    let report = Framework {
        batch_size: args.parse_num("batch", 10)?,
        record_every: (budget / 20).max(1),
    }
    .run(&mut world, strategy.as_mut(), budget, &mut rng);

    println!(
        "{}: q {:.4} → {:.4} (Δ {:+.4}) | oracle Δ {:+.4} | {} tasks",
        report.strategy,
        report.initial_quality,
        report.final_quality,
        report.improvement(),
        world.oracle_mean_quality() - oracle0,
        report.spent
    );
    for p in &report.series {
        println!("  B={:>6}  q={:.4}", p.spent, p.mean_quality);
    }
    if let Some(csv) = args.get("csv") {
        let mut out = String::from("spent,mean_quality\n");
        for p in &report.series {
            out.push_str(&format!("{},{}\n", p.spent, p.mean_quality));
        }
        std::fs::write(csv, out).map_err(|e| format!("write {csv}: {e}"))?;
        println!("(series: {csv})");
    }
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let dataset = load_corpus(args.require("corpus")?)?;
    let budget: u32 = args.parse_num("budget", 5_000)?;
    let seed: u64 = args.parse_num("seed", 7)?;
    let metric = parse_metric(args)?;

    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "strategy", "Δq(stab)", "Δq(oracle)", "low-post", "q≥0.75"
    );
    for kind in StrategyKind::paper_lineup(5) {
        let mut world = SimWorld::new(dataset.clone(), metric);
        let oracle0 = world.oracle_mean_quality();
        let mut strategy = kind.build();
        let mut rng = StdRng::seed_from_u64(seed);
        let report = Framework::default().run(&mut world, strategy.as_mut(), budget, &mut rng);
        println!(
            "{:<8} {:>+10.4} {:>+10.4} {:>10} {:>10}",
            report.strategy,
            report.improvement(),
            world.oracle_mean_quality() - oracle0,
            world.count_below_posts(5),
            world.count_quality_at_least(0.75),
        );
    }
    Ok(())
}

fn cmd_export(args: &Args) -> Result<(), String> {
    let dataset = load_corpus(args.require("corpus")?)?;
    let kind = parse_strategy(&args.get_or("strategy", "fp-mu"))?;
    let budget: u32 = args.parse_num("budget", 5_000)?;
    let seed: u64 = args.parse_num("seed", 7)?;
    let out = args.require("out")?;

    let mut engine = ITagEngine::new(EngineConfig::in_memory(seed)).map_err(|e| e.to_string())?;
    let provider = engine
        .register_provider("itag-cli")
        .map_err(|e| e.to_string())?;
    let mut spec = ProjectSpec::demo("cli-export", budget);
    spec.strategy = kind;
    let project = engine
        .add_project(provider, spec, dataset)
        .map_err(|e| e.to_string())?;
    let summary = engine.run(project, budget).map_err(|e| e.to_string())?;
    let export = engine.export(project).map_err(|e| e.to_string())?;
    std::fs::write(out, export.to_csv()).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "campaign: {} issued, {} approved, Δq {:+.4}; exported {} resources to {out}",
        summary.issued,
        summary.approved,
        summary.improvement,
        export.resources.len()
    );
    Ok(())
}

const USAGE: &str = "\
itag-cli — incentive-based tagging (iTag, ICDE 2014 reproduction)

USAGE:
  itag-cli generate --out <file> [--resources N] [--posts M] [--seed S]
  itag-cli ingest   --input <events.tsv> --out <file>
  itag-cli inspect  <corpus.bin>
  itag-cli campaign --corpus <file> [--strategy fp-mu] [--budget B]
                    [--seed S] [--noise x] [--window w] [--kernel cosine|tv|jaccard]
                    [--batch n] [--csv series.csv]
  itag-cli compare  --corpus <file> [--budget B] [--seed S]
  itag-cli export   --corpus <file> --out <tags.csv> [--strategy mu] [--budget B]
";

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match Args::parse(&raw) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let command = args.positional.first().map(String::as_str).unwrap_or("");
    let result = match command {
        "generate" => cmd_generate(&args),
        "ingest" => cmd_ingest(&args),
        "inspect" => cmd_inspect(&args),
        "campaign" => cmd_campaign(&args),
        "compare" => cmd_compare(&args),
        "export" => cmd_export(&args),
        "" | "help" | "--help" => {
            println!("{USAGE}");
            return;
        }
        other => Err(format!("unknown command '{other}'")),
    };
    if let Err(e) = result {
        eprintln!("error: {e}\n\n{USAGE}");
        std::process::exit(1);
    }
}
