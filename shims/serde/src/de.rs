//! Deserialization half of the data model: [`Deserialize`],
//! [`Deserializer`], [`Visitor`], the access traits, and impls for std
//! types.

use std::fmt::{self, Display};
use std::marker::PhantomData;

/// Error constraint for deserializers.
pub trait Error: Sized + std::error::Error {
    fn custom<T: Display>(msg: T) -> Self;

    fn invalid_length(len: usize, exp: &dyn Display) -> Self {
        Self::custom(format_args!("invalid length {len}, expected {exp}"))
    }

    fn missing_field(field: &'static str) -> Self {
        Self::custom(format_args!("missing field `{field}`"))
    }

    fn unknown_variant(variant: &str, expected: &'static [&'static str]) -> Self {
        Self::custom(format_args!(
            "unknown variant `{variant}`, expected one of {expected:?}"
        ))
    }
}

/// A data structure deserializable from any format.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D>(deserializer: D) -> Result<Self, D::Error>
    where
        D: Deserializer<'de>;
}

/// Deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

/// Stateful deserialization entry point; `PhantomData<T>` is the stateless
/// seed for a plain `T: Deserialize`.
pub trait DeserializeSeed<'de>: Sized {
    type Value;
    fn deserialize<D>(self, deserializer: D) -> Result<Self::Value, D::Error>
    where
        D: Deserializer<'de>;
}

impl<'de, T: Deserialize<'de>> DeserializeSeed<'de> for PhantomData<T> {
    type Value = T;

    fn deserialize<D>(self, deserializer: D) -> Result<T, D::Error>
    where
        D: Deserializer<'de>,
    {
        T::deserialize(deserializer)
    }
}

/// A format that can deserialize the serde data model.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_i128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        let _ = visitor;
        Err(Error::custom("i128 is not supported by this format"))
    }
    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u16<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_u128<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error> {
        let _ = visitor;
        Err(Error::custom("u128 is not supported by this format"))
    }
    fn deserialize_f32<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_struct<V: Visitor<'de>>(
        self,
        name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_enum<V: Visitor<'de>>(
        self,
        name: &'static str,
        variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
    fn deserialize_identifier<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;
    fn deserialize_ignored_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Self::Error>;

    fn is_human_readable(&self) -> bool {
        true
    }
}

/// Wraps a visitor so its `expecting` message can be used in `Display`
/// position when building error messages.
struct Expected<'a, V>(&'a V);

impl<'de, V: Visitor<'de>> Display for Expected<'_, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.expecting(f)
    }
}

macro_rules! unexpected {
    ($self:ident, $err:ty, $what:expr) => {
        Err(<$err>::custom(format_args!(
            "invalid type: unexpected {}, expected {}",
            $what,
            Expected(&$self)
        )))
    };
}

/// Walks the values produced by a [`Deserializer`]. All `visit_*` methods
/// default to a type error (narrower integer/float/str forms forward to
/// the widest form first, as upstream serde does).
pub trait Visitor<'de>: Sized {
    type Value;

    fn expecting(&self, formatter: &mut fmt::Formatter) -> fmt::Result;

    fn visit_bool<E: Error>(self, v: bool) -> Result<Self::Value, E> {
        unexpected!(self, E, format_args!("boolean `{v}`"))
    }

    fn visit_i8<E: Error>(self, v: i8) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    fn visit_i16<E: Error>(self, v: i16) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    fn visit_i32<E: Error>(self, v: i32) -> Result<Self::Value, E> {
        self.visit_i64(v as i64)
    }

    fn visit_i64<E: Error>(self, v: i64) -> Result<Self::Value, E> {
        unexpected!(self, E, format_args!("integer `{v}`"))
    }

    fn visit_i128<E: Error>(self, v: i128) -> Result<Self::Value, E> {
        unexpected!(self, E, format_args!("integer `{v}`"))
    }

    fn visit_u8<E: Error>(self, v: u8) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    fn visit_u16<E: Error>(self, v: u16) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    fn visit_u32<E: Error>(self, v: u32) -> Result<Self::Value, E> {
        self.visit_u64(v as u64)
    }

    fn visit_u64<E: Error>(self, v: u64) -> Result<Self::Value, E> {
        unexpected!(self, E, format_args!("integer `{v}`"))
    }

    fn visit_u128<E: Error>(self, v: u128) -> Result<Self::Value, E> {
        unexpected!(self, E, format_args!("integer `{v}`"))
    }

    fn visit_f32<E: Error>(self, v: f32) -> Result<Self::Value, E> {
        self.visit_f64(v as f64)
    }

    fn visit_f64<E: Error>(self, v: f64) -> Result<Self::Value, E> {
        unexpected!(self, E, format_args!("float `{v}`"))
    }

    fn visit_char<E: Error>(self, v: char) -> Result<Self::Value, E> {
        self.visit_str(v.encode_utf8(&mut [0u8; 4]))
    }

    fn visit_str<E: Error>(self, v: &str) -> Result<Self::Value, E> {
        unexpected!(self, E, format_args!("string {v:?}"))
    }

    fn visit_borrowed_str<E: Error>(self, v: &'de str) -> Result<Self::Value, E> {
        self.visit_str(v)
    }

    fn visit_string<E: Error>(self, v: String) -> Result<Self::Value, E> {
        self.visit_str(&v)
    }

    fn visit_bytes<E: Error>(self, v: &[u8]) -> Result<Self::Value, E> {
        let _ = v;
        unexpected!(self, E, "byte array")
    }

    fn visit_borrowed_bytes<E: Error>(self, v: &'de [u8]) -> Result<Self::Value, E> {
        self.visit_bytes(v)
    }

    fn visit_byte_buf<E: Error>(self, v: Vec<u8>) -> Result<Self::Value, E> {
        self.visit_bytes(&v)
    }

    fn visit_none<E: Error>(self) -> Result<Self::Value, E> {
        unexpected!(self, E, "Option::None")
    }

    fn visit_some<D: Deserializer<'de>>(self, deserializer: D) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        unexpected!(self, D::Error, "Option::Some")
    }

    fn visit_unit<E: Error>(self) -> Result<Self::Value, E> {
        unexpected!(self, E, "unit")
    }

    fn visit_newtype_struct<D: Deserializer<'de>>(
        self,
        deserializer: D,
    ) -> Result<Self::Value, D::Error> {
        let _ = deserializer;
        unexpected!(self, D::Error, "newtype struct")
    }

    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
        let _ = seq;
        unexpected!(self, A::Error, "sequence")
    }

    fn visit_map<A: MapAccess<'de>>(self, map: A) -> Result<Self::Value, A::Error> {
        let _ = map;
        unexpected!(self, A::Error, "map")
    }

    fn visit_enum<A: EnumAccess<'de>>(self, data: A) -> Result<Self::Value, A::Error> {
        let _ = data;
        unexpected!(self, A::Error, "enum")
    }
}

/// Access to the elements of a sequence.
pub trait SeqAccess<'de> {
    type Error: Error;

    fn next_element_seed<T: DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, Self::Error>;

    fn next_element<T: Deserialize<'de>>(&mut self) -> Result<Option<T>, Self::Error> {
        self.next_element_seed(PhantomData)
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the entries of a map.
pub trait MapAccess<'de> {
    type Error: Error;

    fn next_key_seed<K: DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, Self::Error>;

    fn next_value_seed<V: DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, Self::Error>;

    fn next_key<K: Deserialize<'de>>(&mut self) -> Result<Option<K>, Self::Error> {
        self.next_key_seed(PhantomData)
    }

    fn next_value<V: Deserialize<'de>>(&mut self) -> Result<V, Self::Error> {
        self.next_value_seed(PhantomData)
    }

    fn next_entry<K: Deserialize<'de>, V: Deserialize<'de>>(
        &mut self,
    ) -> Result<Option<(K, V)>, Self::Error> {
        match self.next_key()? {
            Some(key) => Ok(Some((key, self.next_value()?))),
            None => Ok(None),
        }
    }

    fn size_hint(&self) -> Option<usize> {
        None
    }
}

/// Access to the variant tag of an enum.
pub trait EnumAccess<'de>: Sized {
    type Error: Error;
    type Variant: VariantAccess<'de, Error = Self::Error>;

    fn variant_seed<V: DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), Self::Error>;

    fn variant<V: Deserialize<'de>>(self) -> Result<(V, Self::Variant), Self::Error> {
        self.variant_seed(PhantomData)
    }
}

/// Access to the payload of an enum variant.
pub trait VariantAccess<'de>: Sized {
    type Error: Error;

    fn unit_variant(self) -> Result<(), Self::Error>;

    fn newtype_variant_seed<T: DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, Self::Error>;

    fn newtype_variant<T: Deserialize<'de>>(self) -> Result<T, Self::Error> {
        self.newtype_variant_seed(PhantomData)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, Self::Error>;

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, Self::Error>;
}

/// Conversion of plain values into deserializers, used to hand enum
/// variant indices back through the data model.
pub trait IntoDeserializer<'de, E: Error = value::Error> {
    type Deserializer: Deserializer<'de, Error = E>;
    fn into_deserializer(self) -> Self::Deserializer;
}

pub mod value {
    //! Value deserializers: wrap a plain Rust value as a [`Deserializer`].

    use super::*;

    /// Default error type for value deserializers.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for Error {}

    impl super::Error for Error {
        fn custom<T: Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    macro_rules! forward_to_visit {
        ($visit:ident, $conv:ty) => {
            /// Deserializer over a plain integer; every request visits the
            /// stored value as the widest matching integer form.
            pub struct UIntDeserializer<E> {
                value: u64,
                marker: PhantomData<E>,
            }

            impl<E> UIntDeserializer<E> {
                pub fn new(value: $conv) -> Self {
                    UIntDeserializer {
                        value: value as u64,
                        marker: PhantomData,
                    }
                }
            }
        };
    }

    forward_to_visit!(visit_u64, u64);

    macro_rules! uint_methods {
        ($($method:ident)*) => {$(
            fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, E> {
                visitor.visit_u64(self.value)
            }
        )*};
    }

    impl<'de, E: super::Error> Deserializer<'de> for UIntDeserializer<E> {
        type Error = E;

        uint_methods! {
            deserialize_any deserialize_bool
            deserialize_i8 deserialize_i16 deserialize_i32 deserialize_i64 deserialize_i128
            deserialize_u8 deserialize_u16 deserialize_u32 deserialize_u64 deserialize_u128
            deserialize_f32 deserialize_f64 deserialize_char
            deserialize_str deserialize_string deserialize_bytes deserialize_byte_buf
            deserialize_option deserialize_unit deserialize_seq deserialize_map
            deserialize_identifier deserialize_ignored_any
        }

        fn deserialize_unit_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u64(self.value)
        }

        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u64(self.value)
        }

        fn deserialize_tuple<V: Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u64(self.value)
        }

        fn deserialize_tuple_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u64(self.value)
        }

        fn deserialize_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u64(self.value)
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, E> {
            visitor.visit_u64(self.value)
        }
    }

    pub type U64Deserializer<E> = UIntDeserializer<E>;
    pub type U32Deserializer<E> = UIntDeserializer<E>;
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u64 {
    type Deserializer = value::U64Deserializer<E>;

    fn into_deserializer(self) -> Self::Deserializer {
        value::U64Deserializer::new(self)
    }
}

impl<'de, E: Error> IntoDeserializer<'de, E> for u32 {
    type Deserializer = value::U32Deserializer<E>;

    fn into_deserializer(self) -> Self::Deserializer {
        value::U32Deserializer::new(self as u64)
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! deserialize_int {
    ($($ty:ty, $deserialize:ident, $visit_exact:ident;)*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimVisitor;

                impl<'de> Visitor<'de> for PrimVisitor {
                    type Value = $ty;

                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str(stringify!($ty))
                    }

                    fn $visit_exact<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }

                    fn visit_u64<E: Error>(self, v: u64) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::custom(format_args!("value {v} out of range for {}", stringify!($ty)))
                        })
                    }

                    fn visit_i64<E: Error>(self, v: i64) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::custom(format_args!("value {v} out of range for {}", stringify!($ty)))
                        })
                    }
                }

                deserializer.$deserialize(PrimVisitor)
            }
        }
    )*};
}

deserialize_int! {
    u8, deserialize_u8, visit_u8;
    u16, deserialize_u16, visit_u16;
    u32, deserialize_u32, visit_u32;
    i8, deserialize_i8, visit_i8;
    i16, deserialize_i16, visit_i16;
    i32, deserialize_i32, visit_i32;
}

macro_rules! deserialize_wide_int {
    ($($ty:ty, $deserialize:ident, $visit_exact:ident, $other:ty, $visit_other:ident;)*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimVisitor;

                impl<'de> Visitor<'de> for PrimVisitor {
                    type Value = $ty;

                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str(stringify!($ty))
                    }

                    fn $visit_exact<E: Error>(self, v: $ty) -> Result<$ty, E> {
                        Ok(v)
                    }

                    fn $visit_other<E: Error>(self, v: $other) -> Result<$ty, E> {
                        <$ty>::try_from(v).map_err(|_| {
                            E::custom(format_args!("value {v} out of range for {}", stringify!($ty)))
                        })
                    }
                }

                deserializer.$deserialize(PrimVisitor)
            }
        }
    )*};
}

deserialize_wide_int! {
    u64, deserialize_u64, visit_u64, i64, visit_i64;
    i64, deserialize_i64, visit_i64, u64, visit_u64;
    u128, deserialize_u128, visit_u128, u64, visit_u64;
    i128, deserialize_i128, visit_i128, i64, visit_i64;
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        u64::deserialize(deserializer).and_then(|v| {
            usize::try_from(v).map_err(|_| Error::custom(format_args!("{v} overflows usize")))
        })
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        i64::deserialize(deserializer).and_then(|v| {
            isize::try_from(v).map_err(|_| Error::custom(format_args!("{v} overflows isize")))
        })
    }
}

macro_rules! deserialize_float {
    ($($ty:ty, $deserialize:ident, $($visit:ident : $from:ty),+;)*) => {$(
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct PrimVisitor;

                impl<'de> Visitor<'de> for PrimVisitor {
                    type Value = $ty;

                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str(stringify!($ty))
                    }

                    $(
                        fn $visit<E: Error>(self, v: $from) -> Result<$ty, E> {
                            Ok(v as $ty)
                        }
                    )+
                }

                deserializer.$deserialize(PrimVisitor)
            }
        }
    )*};
}

deserialize_float! {
    f32, deserialize_f32, visit_f32: f32, visit_f64: f64, visit_u64: u64, visit_i64: i64;
    f64, deserialize_f64, visit_f64: f64, visit_u64: u64, visit_i64: i64;
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct BoolVisitor;

        impl<'de> Visitor<'de> for BoolVisitor {
            type Value = bool;

            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("bool")
            }

            fn visit_bool<E: Error>(self, v: bool) -> Result<bool, E> {
                Ok(v)
            }
        }

        deserializer.deserialize_bool(BoolVisitor)
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct CharVisitor;

        impl<'de> Visitor<'de> for CharVisitor {
            type Value = char;

            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("char")
            }

            fn visit_char<E: Error>(self, v: char) -> Result<char, E> {
                Ok(v)
            }

            fn visit_str<E: Error>(self, v: &str) -> Result<char, E> {
                let mut chars = v.chars();
                match (chars.next(), chars.next()) {
                    (Some(c), None) => Ok(c),
                    _ => Err(E::custom("expected a single character")),
                }
            }
        }

        deserializer.deserialize_char(CharVisitor)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct StringVisitor;

        impl<'de> Visitor<'de> for StringVisitor {
            type Value = String;

            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("string")
            }

            fn visit_str<E: Error>(self, v: &str) -> Result<String, E> {
                Ok(v.to_owned())
            }

            fn visit_string<E: Error>(self, v: String) -> Result<String, E> {
                Ok(v)
            }
        }

        deserializer.deserialize_string(StringVisitor)
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct UnitVisitor;

        impl<'de> Visitor<'de> for UnitVisitor {
            type Value = ();

            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("unit")
            }

            fn visit_unit<E: Error>(self) -> Result<(), E> {
                Ok(())
            }
        }

        deserializer.deserialize_unit(UnitVisitor)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct OptionVisitor<T>(PhantomData<T>);

        impl<'de, T: Deserialize<'de>> Visitor<'de> for OptionVisitor<T> {
            type Value = Option<T>;

            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("option")
            }

            fn visit_none<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }

            fn visit_unit<E: Error>(self) -> Result<Option<T>, E> {
                Ok(None)
            }

            fn visit_some<D: Deserializer<'de>>(
                self,
                deserializer: D,
            ) -> Result<Option<T>, D::Error> {
                T::deserialize(deserializer).map(Some)
            }
        }

        deserializer.deserialize_option(OptionVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

fn collect_seq<'de, A, T, C>(mut seq: A) -> Result<C, A::Error>
where
    A: SeqAccess<'de>,
    T: Deserialize<'de>,
    C: Extend<T> + Default,
{
    let mut out = C::default();
    while let Some(item) = seq.next_element::<T>()? {
        out.extend(std::iter::once(item));
    }
    Ok(out)
}

macro_rules! deserialize_seq_collection {
    ($($collection:ident $(+ $bound:ident)*;)*) => {$(
        impl<'de, T: Deserialize<'de> $(+ $bound)*> Deserialize<'de>
            for std::collections::$collection<T>
        {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                struct SeqVisitor<T>(PhantomData<T>);

                impl<'de, T: Deserialize<'de> $(+ $bound)*> Visitor<'de> for SeqVisitor<T> {
                    type Value = std::collections::$collection<T>;

                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        f.write_str("a sequence")
                    }

                    fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
                        collect_seq(seq)
                    }
                }

                deserializer.deserialize_seq(SeqVisitor(PhantomData))
            }
        }
    )*};
}

deserialize_seq_collection! {
    VecDeque;
    BTreeSet + Ord;
}

impl<'de, T: Deserialize<'de> + Eq + std::hash::Hash, H> Deserialize<'de>
    for std::collections::HashSet<T, H>
where
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct SeqVisitor<T, H>(PhantomData<(T, H)>);

        impl<'de, T: Deserialize<'de> + Eq + std::hash::Hash, H> Visitor<'de> for SeqVisitor<T, H>
        where
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashSet<T, H>;

            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a sequence")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, seq: A) -> Result<Self::Value, A::Error> {
                collect_seq(seq)
            }
        }

        deserializer.deserialize_seq(SeqVisitor(PhantomData))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct VecVisitor<T>(PhantomData<T>);

        impl<'de, T: Deserialize<'de>> Visitor<'de> for VecVisitor<T> {
            type Value = Vec<T>;

            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a sequence")
            }

            fn visit_seq<A: SeqAccess<'de>>(self, mut seq: A) -> Result<Vec<T>, A::Error> {
                // Cap the pre-allocation so a corrupt length cannot OOM.
                let mut out = Vec::with_capacity(seq.size_hint().unwrap_or(0).min(4096));
                while let Some(item) = seq.next_element()? {
                    out.push(item);
                }
                Ok(out)
            }
        }

        deserializer.deserialize_seq(VecVisitor(PhantomData))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V>(PhantomData<(K, V)>);

        impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Visitor<'de> for MapVisitor<K, V> {
            type Value = std::collections::BTreeMap<K, V>;

            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }

            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::BTreeMap::new();
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }

        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

impl<'de, K, V, H> Deserialize<'de> for std::collections::HashMap<K, V, H>
where
    K: Deserialize<'de> + Eq + std::hash::Hash,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        struct MapVisitor<K, V, H>(PhantomData<(K, V, H)>);

        impl<'de, K, V, H> Visitor<'de> for MapVisitor<K, V, H>
        where
            K: Deserialize<'de> + Eq + std::hash::Hash,
            V: Deserialize<'de>,
            H: std::hash::BuildHasher + Default,
        {
            type Value = std::collections::HashMap<K, V, H>;

            fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                f.write_str("a map")
            }

            fn visit_map<A: MapAccess<'de>>(self, mut map: A) -> Result<Self::Value, A::Error> {
                let mut out = std::collections::HashMap::with_hasher(H::default());
                while let Some((k, v)) = map.next_entry()? {
                    out.insert(k, v);
                }
                Ok(out)
            }
        }

        deserializer.deserialize_map(MapVisitor(PhantomData))
    }
}

macro_rules! deserialize_tuple {
    ($(($len:expr => $($name:ident)+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                struct TupleVisitor<$($name),+>(PhantomData<($($name,)+)>);

                impl<'de, $($name: Deserialize<'de>),+> Visitor<'de> for TupleVisitor<$($name),+> {
                    type Value = ($($name,)+);

                    fn expecting(&self, f: &mut fmt::Formatter) -> fmt::Result {
                        write!(f, "a tuple of {} elements", $len)
                    }

                    #[allow(non_snake_case)]
                    fn visit_seq<Acc: SeqAccess<'de>>(
                        self,
                        mut seq: Acc,
                    ) -> Result<Self::Value, Acc::Error> {
                        $(
                            let $name = match seq.next_element()? {
                                Some(v) => v,
                                None => {
                                    return Err(Error::invalid_length(
                                        $len,
                                        &format_args!("a tuple of {} elements", $len),
                                    ))
                                }
                            };
                        )+
                        Ok(($($name,)+))
                    }
                }

                deserializer.deserialize_tuple($len, TupleVisitor(PhantomData))
            }
        }
    )*};
}

deserialize_tuple! {
    (1 => A)
    (2 => A B)
    (3 => A B C)
    (4 => A B C D)
    (5 => A B C D E)
    (6 => A B C D E F)
    (7 => A B C D E F G)
    (8 => A B C D E F G H)
    (9 => A B C D E F G H I)
    (10 => A B C D E F G H I J)
    (11 => A B C D E F G H I J K)
    (12 => A B C D E F G H I J K L)
}
