//! Vendored stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so the workspace carries
//! its own implementation of the serde *data model*: the [`ser`] and [`de`]
//! trait hierarchies, implementations for the std types the engine
//! persists, and re-exported `#[derive(Serialize, Deserialize)]` macros
//! from the companion `serde_derive` shim.
//!
//! The surface mirrors upstream serde closely enough that `itag-store`'s
//! `serbin` format (a full `Serializer`/`Deserializer` pair) compiles and
//! behaves identically, but it is not a drop-in for arbitrary serde users:
//! only the parts of the data model exercised by this workspace are
//! implemented.

pub mod de;
pub mod ser;

pub use de::{Deserialize, DeserializeOwned, Deserializer};
pub use ser::{Serialize, Serializer};

pub use serde_derive::{Deserialize, Serialize};
