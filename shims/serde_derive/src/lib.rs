//! Vendored `#[derive(Serialize, Deserialize)]` macros for the serde shim.
//!
//! The offline build has no `syn`/`quote`, so the item is parsed directly
//! from the `proc_macro` token stream and code is generated as text. The
//! supported shapes are exactly what this workspace uses: non-generic
//! structs (unit / tuple / named, with `#[serde(skip)]` on named fields)
//! and non-generic enums whose variants are unit, newtype, tuple or
//! struct-like. Field and variant *types* never need to be parsed — the
//! generated code recovers them through inference from the constructors.
//!
//! Encoding contract (shared with `serde::de::value`): enum variant tags
//! travel through the data model as their positional `u32` index.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::iter::Peekable;

type Tokens = Peekable<proc_macro::token_stream::IntoIter>;

#[derive(Debug)]
struct Field {
    /// Identifier for named fields, decimal index for tuple fields.
    name: String,
    skip: bool,
}

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Body {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    body: Body,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive shim: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive shim: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut toks: Tokens = input.into_iter().peekable();
    loop {
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Outer attribute: `#` followed by a bracket group.
                toks.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                skip_vis_suffix(&mut toks);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut toks, "struct name");
                reject_generics(&mut toks, &name);
                let fields = match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(parse_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                    other => panic!(
                        "serde_derive shim: unexpected token after `struct {name}`: {other:?}"
                    ),
                };
                return Item {
                    name,
                    body: Body::Struct(fields),
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut toks, "enum name");
                reject_generics(&mut toks, &name);
                let variants = match toks.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        parse_variants(g.stream())
                    }
                    other => {
                        panic!("serde_derive shim: expected enum body for `{name}`, got {other:?}")
                    }
                };
                return Item {
                    name,
                    body: Body::Enum(variants),
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "union" => {
                panic!("serde_derive shim: unions are not supported")
            }
            Some(_) => {}
            None => panic!("serde_derive shim: no struct or enum found in derive input"),
        }
    }
}

fn expect_ident(toks: &mut Tokens, what: &str) -> String {
    match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected {what}, got {other:?}"),
    }
}

/// After `pub`, consume an optional `(crate)` / `(in path)` restriction.
fn skip_vis_suffix(toks: &mut Tokens) {
    if let Some(TokenTree::Group(g)) = toks.peek() {
        if g.delimiter() == Delimiter::Parenthesis {
            toks.next();
        }
    }
}

fn reject_generics(toks: &mut Tokens, name: &str) {
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!(
                "serde_derive shim: `{name}` is generic; generic types are not supported \
                 by the offline derive (add a manual impl instead)"
            );
        }
    }
}

/// Consumes leading attributes, returning whether any was `#[serde(skip)]`.
/// Any *other* `#[serde(...)]` content is a hard error: the offline derive
/// must refuse attributes it cannot honour (e.g. `rename`, `default`,
/// `skip_serializing_if`) rather than silently change their semantics.
fn take_attrs(toks: &mut Tokens) -> bool {
    let mut skip = false;
    while let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() != '#' {
            break;
        }
        toks.next();
        match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                skip |= attr_is_serde_skip(g.stream());
            }
            other => panic!("serde_derive shim: malformed attribute: {other:?}"),
        }
    }
    skip
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let mut toks = stream.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match toks.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let args: Vec<String> = g
                .stream()
                .into_iter()
                .filter_map(|t| match t {
                    TokenTree::Ident(id) => Some(id.to_string()),
                    _ => None,
                })
                .collect();
            match args.as_slice() {
                [arg] if arg == "skip" => true,
                _ => panic!(
                    "serde_derive shim: unsupported serde attribute #[serde({})]; \
                     only #[serde(skip)] is implemented",
                    g.stream()
                ),
            }
        }
        _ => false,
    }
}

/// Skips a type (or discriminant expression) up to a top-level `,`,
/// tracking `<`/`>` nesting so commas inside generics don't split fields.
fn skip_to_field_end(toks: &mut Tokens) {
    let mut angle_depth: i64 = 0;
    while let Some(tt) = toks.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                toks.next();
                return;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                toks.next();
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                toks.next();
            }
            _ => {
                toks.next();
            }
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks: Tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = take_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        if let Some(TokenTree::Ident(id)) = toks.peek() {
            if id.to_string() == "pub" {
                toks.next();
                skip_vis_suffix(&mut toks);
            }
        }
        let name = expect_ident(&mut toks, "field name");
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after field `{name}`, got {other:?}"),
        }
        skip_to_field_end(&mut toks);
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut toks: Tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    let mut index = 0usize;
    loop {
        let skip = take_attrs(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        if let Some(TokenTree::Ident(id)) = toks.peek() {
            if id.to_string() == "pub" {
                toks.next();
                skip_vis_suffix(&mut toks);
            }
        }
        skip_to_field_end(&mut toks);
        fields.push(Field {
            name: index.to_string(),
            skip,
        });
        index += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut toks: Tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        if take_attrs(&mut toks) {
            // Real serde omits the variant from both impls; the offline
            // derive cannot honour that, so refuse rather than persist
            // data the author meant to exclude.
            panic!("serde_derive shim: #[serde(skip)] on enum variants is not supported");
        }
        if toks.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut toks, "variant name");
        let fields = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = parse_tuple_fields(g.stream());
                toks.next();
                Fields::Tuple(f)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                toks.next();
                Fields::Named(f)
            }
            _ => Fields::Unit,
        };
        // Optional discriminant (`= expr`) and the trailing comma.
        skip_to_field_end(&mut toks);
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Serialize codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::Struct(fields) => gen_serialize_struct_body(name, fields),
        Body::Enum(variants) => gen_serialize_enum_body(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S)\n\
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn gen_serialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => {
            format!("::serde::Serializer::serialize_unit_struct(__serializer, \"{name}\")")
        }
        Fields::Tuple(fields) if fields.len() == 1 && !fields[0].skip => format!(
            "::serde::Serializer::serialize_newtype_struct(__serializer, \"{name}\", &self.0)"
        ),
        Fields::Tuple(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut out = format!(
                "let mut __st = ::serde::Serializer::serialize_tuple_struct(__serializer, \"{name}\", {})?;\n",
                live.len()
            );
            for f in &live {
                out.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut __st, &self.{})?;\n",
                    f.name
                ));
            }
            out.push_str("::serde::ser::SerializeTupleStruct::end(__st)");
            out
        }
        Fields::Named(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let mut out = format!(
                "let mut __st = ::serde::Serializer::serialize_struct(__serializer, \"{name}\", {})?;\n",
                live.len()
            );
            for f in &live {
                out.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut __st, \"{0}\", &self.{0})?;\n",
                    f.name
                ));
            }
            out.push_str("::serde::ser::SerializeStruct::end(__st)");
            out
        }
    }
}

fn gen_serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for (idx, variant) in variants.iter().enumerate() {
        let vname = &variant.name;
        match &variant.fields {
            Fields::Unit => arms.push_str(&format!(
                "{name}::{vname} => ::serde::Serializer::serialize_unit_variant(\
                     __serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
            )),
            Fields::Tuple(fields) if fields.len() == 1 && !fields[0].skip => {
                arms.push_str(&format!(
                    "{name}::{vname}(__f0) => ::serde::Serializer::serialize_newtype_variant(\
                         __serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                ))
            }
            Fields::Tuple(fields) => {
                // Skipped fields bind as `_` and are neither counted nor
                // written, mirroring the deserialize side exactly.
                let binders: Vec<String> = fields
                    .iter()
                    .enumerate()
                    .map(|(i, f)| {
                        if f.skip {
                            "_".to_string()
                        } else {
                            format!("__f{i}")
                        }
                    })
                    .collect();
                let live: Vec<&String> = binders.iter().filter(|b| b.as_str() != "_").collect();
                let mut arm = format!(
                    "{name}::{vname}({}) => {{\n\
                         let mut __sv = ::serde::Serializer::serialize_tuple_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                    binders.join(", "),
                    live.len()
                );
                for b in &live {
                    arm.push_str(&format!(
                        "::serde::ser::SerializeTupleVariant::serialize_field(&mut __sv, {b})?;\n"
                    ));
                }
                arm.push_str("::serde::ser::SerializeTupleVariant::end(__sv)\n},\n");
                arms.push_str(&arm);
            }
            Fields::Named(fields) => {
                let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                let pattern: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        if f.skip {
                            format!("{}: _", f.name)
                        } else {
                            f.name.clone()
                        }
                    })
                    .collect();
                let mut arm = format!(
                    "{name}::{vname} {{ {} }} => {{\n\
                         let mut __sv = ::serde::Serializer::serialize_struct_variant(\
                             __serializer, \"{name}\", {idx}u32, \"{vname}\", {})?;\n",
                    pattern.join(", "),
                    live.len()
                );
                for f in &live {
                    arm.push_str(&format!(
                        "::serde::ser::SerializeStructVariant::serialize_field(\
                             &mut __sv, \"{0}\", {0})?;\n",
                        f.name
                    ));
                }
                arm.push_str("::serde::ser::SerializeStructVariant::end(__sv)\n},\n");
                arms.push_str(&arm);
            }
        }
    }
    format!("match self {{\n{arms}\n}}")
}

// ---------------------------------------------------------------------------
// Deserialize codegen
// ---------------------------------------------------------------------------

/// Emits `let` bindings that pull each field of `fields` out of `__seq`
/// in declaration order (skipped fields come from `Default::default()`),
/// followed by `Ok(<constructor>)`.
fn gen_visit_seq_bindings(
    context: &str,
    constructor: &str,
    fields: &[Field],
    named: bool,
) -> String {
    let mut out = String::new();
    for (i, f) in fields.iter().enumerate() {
        if f.skip {
            out.push_str(&format!(
                "let __field{i} = ::core::default::Default::default();\n"
            ));
        } else {
            out.push_str(&format!(
                "let __field{i} = match ::serde::de::SeqAccess::next_element(&mut __seq)? {{\n\
                     ::core::option::Option::Some(__v) => __v,\n\
                     ::core::option::Option::None => return ::core::result::Result::Err(\n\
                         ::serde::de::Error::custom(\"{context}: missing field `{}`\")),\n\
                 }};\n",
                f.name
            ));
        }
    }
    let ctor_fields: Vec<String> = fields
        .iter()
        .enumerate()
        .map(|(i, f)| {
            if named {
                format!("{}: __field{i}", f.name)
            } else {
                format!("__field{i}")
            }
        })
        .collect();
    let ctor = if named {
        format!("{constructor} {{ {} }}", ctor_fields.join(", "))
    } else if ctor_fields.is_empty() {
        constructor.to_string()
    } else {
        format!("{constructor}({})", ctor_fields.join(", "))
    };
    out.push_str(&format!("::core::result::Result::Ok({ctor})\n"));
    out
}

fn field_name_list(fields: &[Field]) -> String {
    fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| format!("\"{}\"", f.name))
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let (visitor_methods, entry_point) = match &item.body {
        Body::Struct(Fields::Unit) => (
            format!(
                "fn visit_unit<__E: ::serde::de::Error>(self) -> ::core::result::Result<Self::Value, __E> {{\n\
                     ::core::result::Result::Ok({name})\n\
                 }}"
            ),
            format!(
                "::serde::Deserializer::deserialize_unit_struct(__deserializer, \"{name}\", __Visitor)"
            ),
        ),
        Body::Struct(Fields::Tuple(fields)) if fields.len() == 1 && !fields[0].skip => (
            format!(
                "fn visit_newtype_struct<__D2: ::serde::Deserializer<'de>>(self, __d: __D2)\n\
                     -> ::core::result::Result<Self::Value, __D2::Error> {{\n\
                     ::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__d)?))\n\
                 }}\n\
                 fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                     -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                     {}\n\
                 }}",
                gen_visit_seq_bindings(&format!("struct {name}"), name, fields, false)
            ),
            format!(
                "::serde::Deserializer::deserialize_newtype_struct(__deserializer, \"{name}\", __Visitor)"
            ),
        ),
        Body::Struct(Fields::Tuple(fields)) => {
            let live = fields.iter().filter(|f| !f.skip).count();
            (
                format!(
                    "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         {}\n\
                     }}",
                    gen_visit_seq_bindings(&format!("struct {name}"), name, fields, false)
                ),
                format!(
                    "::serde::Deserializer::deserialize_tuple_struct(\
                         __deserializer, \"{name}\", {live}, __Visitor)"
                ),
            )
        }
        Body::Struct(Fields::Named(fields)) => (
            format!(
                "fn visit_seq<__A: ::serde::de::SeqAccess<'de>>(self, mut __seq: __A)\n\
                     -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                     {}\n\
                 }}",
                gen_visit_seq_bindings(&format!("struct {name}"), name, fields, true)
            ),
            format!(
                "::serde::Deserializer::deserialize_struct(\
                     __deserializer, \"{name}\", &[{}], __Visitor)",
                field_name_list(fields)
            ),
        ),
        Body::Enum(variants) => {
            let mut arms = String::new();
            for (idx, variant) in variants.iter().enumerate() {
                let vname = &variant.name;
                let path = format!("{name}::{vname}");
                let arm_body = match &variant.fields {
                    Fields::Unit => format!(
                        "{{ ::serde::de::VariantAccess::unit_variant(__variant)?;\n\
                             ::core::result::Result::Ok({path}) }}"
                    ),
                    Fields::Tuple(fields) if fields.len() == 1 && !fields[0].skip => format!(
                        "{{ ::core::result::Result::Ok({path}(\
                             ::serde::de::VariantAccess::newtype_variant(__variant)?)) }}"
                    ),
                    Fields::Tuple(fields) => format!(
                        "{{\n\
                             struct __V{idx};\n\
                             impl<'de> ::serde::de::Visitor<'de> for __V{idx} {{\n\
                                 type Value = {name};\n\
                                 fn expecting(&self, __f: &mut ::core::fmt::Formatter)\n\
                                     -> ::core::fmt::Result {{\n\
                                     __f.write_str(\"tuple variant {name}::{vname}\")\n\
                                 }}\n\
                                 fn visit_seq<__A2: ::serde::de::SeqAccess<'de>>(\
                                     self, mut __seq: __A2)\n\
                                     -> ::core::result::Result<Self::Value, __A2::Error> {{\n\
                                     {}\n\
                                 }}\n\
                             }}\n\
                             ::serde::de::VariantAccess::tuple_variant(__variant, {}, __V{idx})\n\
                         }}",
                        gen_visit_seq_bindings(
                            &format!("variant {name}::{vname}"),
                            &path,
                            fields,
                            false
                        ),
                        fields.iter().filter(|f| !f.skip).count()
                    ),
                    Fields::Named(fields) => format!(
                        "{{\n\
                             struct __V{idx};\n\
                             impl<'de> ::serde::de::Visitor<'de> for __V{idx} {{\n\
                                 type Value = {name};\n\
                                 fn expecting(&self, __f: &mut ::core::fmt::Formatter)\n\
                                     -> ::core::fmt::Result {{\n\
                                     __f.write_str(\"struct variant {name}::{vname}\")\n\
                                 }}\n\
                                 fn visit_seq<__A2: ::serde::de::SeqAccess<'de>>(\
                                     self, mut __seq: __A2)\n\
                                     -> ::core::result::Result<Self::Value, __A2::Error> {{\n\
                                     {}\n\
                                 }}\n\
                             }}\n\
                             ::serde::de::VariantAccess::struct_variant(\
                                 __variant, &[{}], __V{idx})\n\
                         }}",
                        gen_visit_seq_bindings(
                            &format!("variant {name}::{vname}"),
                            &path,
                            fields,
                            true
                        ),
                        field_name_list(fields)
                    ),
                };
                arms.push_str(&format!("{idx}u32 => {arm_body},\n"));
            }
            let variant_names = variants
                .iter()
                .map(|v| format!("\"{}\"", v.name))
                .collect::<Vec<_>>()
                .join(", ");
            (
                format!(
                    "fn visit_enum<__A: ::serde::de::EnumAccess<'de>>(self, __data: __A)\n\
                         -> ::core::result::Result<Self::Value, __A::Error> {{\n\
                         let (__idx, __variant) = ::serde::de::EnumAccess::variant_seed(\n\
                             __data, ::core::marker::PhantomData::<u32>)?;\n\
                         match __idx {{\n\
                             {arms}\n\
                             __other => ::core::result::Result::Err(::serde::de::Error::custom(\n\
                                 ::core::format_args!(\n\
                                     \"invalid variant index {{}} for enum {name}\", __other))),\n\
                         }}\n\
                     }}"
                ),
                format!(
                    "::serde::Deserializer::deserialize_enum(\
                         __deserializer, \"{name}\", &[{variant_names}], __Visitor)"
                ),
            )
        }
    };

    let expecting = match &item.body {
        Body::Struct(_) => format!("struct {name}"),
        Body::Enum(_) => format!("enum {name}"),
    };

    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D)\n\
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 struct __Visitor;\n\
                 impl<'de> ::serde::de::Visitor<'de> for __Visitor {{\n\
                     type Value = {name};\n\
                     fn expecting(&self, __f: &mut ::core::fmt::Formatter) -> ::core::fmt::Result {{\n\
                         __f.write_str(\"{expecting}\")\n\
                     }}\n\
                     {visitor_methods}\n\
                 }}\n\
                 {entry_point}\n\
             }}\n\
         }}"
    )
}
