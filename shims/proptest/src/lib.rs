//! Vendored stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace carries
//! its own property-testing harness with the same macro surface:
//! `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//! `any::<T>()`, `Just`, ranges as strategies, `prop_map`/`prop_filter`,
//! and the `collection`/`option` strategy constructors.
//!
//! Differences from upstream, deliberately accepted for an offline build:
//!
//! * **No shrinking.** A failing case reports its generated inputs (every
//!   argument is `Debug`-printed) and the case number instead of a
//!   minimized counterexample.
//! * **Deterministic by construction.** Case `i` of a test derives its RNG
//!   seed from the test's module path, name and `i` (FNV-1a), so a failure
//!   reproduces exactly on re-run — no persistence files needed. Set
//!   `PROPTEST_BASE_SEED` to explore a different deterministic universe.
//! * String strategies interpret only the tiny pattern subset the
//!   workspace uses (`.{lo,hi}`-style length classes), not full regexes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod test_runner {
    //! Runner configuration plus the deterministic per-case RNG.

    use super::*;

    /// Subset of upstream's `ProptestConfig`: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
        for &b in bytes {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001B3);
        }
        hash
    }

    /// Deterministic RNG for one test case. Failures print `(test, case)`,
    /// which is all that is needed to reproduce.
    pub fn rng_for_case(test_path: &str, case: u32) -> StdRng {
        let base = std::env::var("PROPTEST_BASE_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0xCBF29CE484222325);
        let seed =
            fnv1a(test_path.as_bytes(), base) ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15);
        StdRng::seed_from_u64(seed)
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::*;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no value tree / shrinking: a strategy is
    /// just a deterministic function of the RNG stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) reason: &'static str,
        pub(crate) pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..10_000 {
                let candidate = self.inner.generate(rng);
                if (self.pred)(&candidate) {
                    return candidate;
                }
            }
            panic!(
                "prop_filter({:?}): predicate rejected 10000 consecutive candidates",
                self.reason
            );
        }
    }

    /// Weighted choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("prop_oneof!: weighted pick out of bounds")
        }
    }

    macro_rules! range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut StdRng) -> $ty {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }

    /// String "pattern" strategy. Supports the `X{lo,hi}` length-class
    /// shape the workspace uses (`".{0,40}"`); any other pattern falls
    /// back to a short random ASCII string.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let (lo, hi) = parse_length_class(self).unwrap_or((0, 16));
            let len = rng.gen_range(lo..=hi);
            (0..len)
                .map(|_| {
                    // Printable ASCII, biased toward alphanumerics.
                    let c = rng.gen_range(0u32..36 + 26 + 33);
                    match c {
                        0..=9 => (b'0' + c as u8) as char,
                        10..=35 => (b'a' + (c - 10) as u8) as char,
                        36..=61 => (b'A' + (c - 36) as u8) as char,
                        _ => (b'!' + (c - 62) as u8) as char,
                    }
                })
                .collect()
        }
    }

    fn parse_length_class(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix('.')?;
        let body = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use super::strategy::Strategy;
    use super::*;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> std::fmt::Debug for AnyStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("any::<_>()")
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! arbitrary_uint {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut StdRng) -> $ty {
                    rng.gen::<u64>() as $ty
                }
            }
        )*};
    }

    arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut StdRng) -> $ty {
                    rng.gen::<u64>() as $ty
                }
            }
        )*};
    }

    arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut StdRng) -> char {
            // Mostly ASCII, occasionally an arbitrary scalar value.
            if rng.gen::<f64>() < 0.9 {
                rng.gen_range(0x20u32..0x7F) as u8 as char
            } else {
                char::from_u32(rng.gen_range(0u32..=0x10FFFF)).unwrap_or('\u{FFFD}')
            }
        }
    }

    impl Arbitrary for f64 {
        /// Raw bit patterns: exercises subnormals, infinities and NaN.
        fn arbitrary(rng: &mut StdRng) -> f64 {
            f64::from_bits(rng.gen::<u64>())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut StdRng) -> f32 {
            f32::from_bits(rng.gen::<u32>())
        }
    }
}

pub mod collection {
    //! Collection strategies: `vec`, `btree_map`, `btree_set`, `hash_map`.

    use super::strategy::Strategy;
    use super::*;

    /// Size specification accepted by collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub lo: usize,
        /// Inclusive upper bound.
        pub hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            let mut out = std::collections::BTreeMap::new();
            // Duplicate keys collapse; retry a bounded number of times to
            // approach the requested size, then accept what we have.
            let mut attempts = 0;
            while out.len() < len && attempts < len * 4 + 8 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `BTreeMap` strategy with an approximate size drawn from `size`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            let mut out = std::collections::BTreeSet::new();
            let mut attempts = 0;
            while out.len() < len && attempts < len * 4 + 8 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// `BTreeSet` strategy with an approximate size drawn from `size`.
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `proptest::option::of`.

    use super::strategy::Strategy;
    use super::*;

    pub struct OptionStrategy<S> {
        inner: S,
        some_probability: f64,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen::<f64>() < self.some_probability {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Option` strategy: `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy {
            inner,
            some_probability: 0.75,
        }
    }
}

pub mod prelude {
    //! Everything the `use proptest::prelude::*;` idiom expects.

    /// Upstream re-exports the crate under `prop` for path-style access.
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs one property: generates inputs, `Debug`-prints them on failure,
/// and rethrows the panic. Used by the `proptest!` expansion.
#[doc(hidden)]
pub fn __run_case<F: FnOnce() + std::panic::UnwindSafe>(
    test_path: &str,
    case: u32,
    cases: u32,
    inputs: &str,
    body: F,
) {
    if let Err(payload) = std::panic::catch_unwind(body) {
        eprintln!(
            "\n[proptest shim] {test_path}: case {case}/{cases} FAILED with inputs:\n  {inputs}\n\
             (deterministic: re-running reproduces this case; set PROPTEST_BASE_SEED to vary)\n"
        );
        std::panic::resume_unwind(payload);
    }
}

/// The `proptest!` macro: wraps each enclosed `#[test] fn name(arg in
/// strategy, ...) { body }` in a deterministic multi-case runner.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::rng_for_case(__path, __case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let mut __inputs = String::new();
                $(
                    __inputs.push_str(stringify!($arg));
                    __inputs.push_str(" = ");
                    __inputs.push_str(&format!("{:?}", &$arg));
                    __inputs.push_str(", ");
                )+
                $crate::__run_case(
                    __path,
                    __case,
                    __config.cases,
                    &__inputs,
                    ::std::panic::AssertUnwindSafe(move || { $body; }),
                );
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        let __arms: ::std::vec::Vec<(u32, $crate::strategy::BoxedStrategy<_>)> =
            ::std::vec![$(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+];
        $crate::strategy::Union::new(__arms)
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1u32 => $strat),+)
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let strat = crate::collection::vec(any::<u32>(), 1..8);
        let mut a = crate::test_runner::rng_for_case("x", 3);
        let mut b = crate::test_runner::rng_for_case("x", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    #[test]
    fn union_respects_value_sets() {
        let strat = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|v| v)];
        let mut rng = crate::test_runner::rng_for_case("u", 0);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v == 1 || v == 2 || (5..7).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_roundtrip(a in 0u32..10, s in ".{0,5}", v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!(a < 10);
            prop_assert!(s.len() <= 5);
            prop_assert!(v.len() < 4);
        }
    }
}
