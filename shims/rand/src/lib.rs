//! Vendored stand-in for the `rand` crate (0.8-style API surface).
//!
//! The build environment has no registry access, so the workspace carries
//! its own deterministic PRNG. [`rngs::StdRng`] is a xoshiro256++ generator
//! seeded via SplitMix64, which gives high-quality, platform-independent,
//! reproducible streams — exactly what the simulation and test layers need.
//! The same `seed_from_u64` always produces the same sequence, on every
//! target and toolchain.

/// A source of random `u64`s. The object-safe core trait.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Samples a value of a primitive type from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers over their full range,
    /// `bool` with probability 1/2).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by rejection sampling (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Accept only draws below the largest multiple of `span` that fits in
    // 2^64; anything above would bias the modulus and must be redrawn.
    let rem = (u64::MAX % span + 1) % span;
    if rem == 0 {
        return rng.next_u64() % span;
    }
    let zone = u64::MAX - rem;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $ty)
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $ty;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $ty)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * <$ty as Standard>::sample(rng)
            }
        }

        impl SampleRange<$ty> for std::ops::RangeInclusive<$ty> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                lo + (hi - lo) * <$ty as Standard>::sample(rng)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Seeds via SplitMix64 expansion of `state` — deterministic and
    /// platform-independent.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E3779B97F4A7C15,
                    0x6A09E667F3BCC909,
                    0xBB67AE8584CAA73B,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias: the small RNG is the same generator in this shim.
    pub type SmallRng = StdRng;
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_constructions() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn works_through_mut_ref_and_dyn_style_generics() {
        fn takes_generic<R: super::Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.gen_range(0..10u32)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = takes_generic(&mut rng);
        assert!(v < 10);
    }
}
