//! Vendored stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace carries
//! a small wall-clock harness with the same API shape: `Criterion`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros. There is no statistical
//! analysis: each benchmark is warmed up briefly, then timed over enough
//! iterations to fill a fixed measurement window, and the mean ns/iter is
//! printed. Good enough to compare hot-path changes locally; CI only
//! compiles benches (`cargo bench --no-run`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim re-runs setup per
/// batch regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_window: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id.as_ref(), self.measurement_window, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            window: self.measurement_window,
            _criterion: self,
        }
    }

    /// Accepted for API compatibility; the shim sizes samples by wall
    /// clock, not by count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Wall-clock window each benchmark's measurement run is sized to.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.measurement_window = window;
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    /// Group-scoped copy: `measurement_time` on a group must not leak
    /// into later groups or top-level benchmarks (upstream semantics).
    window: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_benchmark(&full, self.window, f);
        self
    }

    /// Accepted for API compatibility; the shim sizes samples by wall
    /// clock, not by count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Wall-clock window for this group's benchmarks only.
    pub fn measurement_time(&mut self, window: Duration) -> &mut Self {
        self.window = window;
        self
    }

    pub fn finish(self) {}
}

/// Passed to each benchmark closure; records the timed routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back to back for the requested iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F>(id: &str, window: Duration, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: one iteration, to size the measurement run.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (window.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let ns = bencher.elapsed.as_nanos() as f64 / iters.max(1) as f64;
    println!("bench: {id:<48} {ns:>14.1} ns/iter (x{iters})");
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(1));
        target(&mut c);
    }
}
