//! Vendored stand-in for the `bytes` crate.
//!
//! Only [`Bytes`] is provided: a cheaply clonable, immutable, contiguous
//! byte buffer backed by `Arc<[u8]>`. Cloning copies a pointer, never the
//! payload, which is the property the store layer relies on ("monitors
//! copy nothing").

use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes(Arc::from(&[][..]))
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copies the contents out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.to_vec()
    }

    // No `slice()`: upstream's is a zero-copy sub-view, and a faithful
    // one needs (Arc, offset, len) internals. Offering a copying version
    // under the same name would silently break the "monitors copy
    // nothing" contract the store layer builds on, so the method is
    // omitted until a real view implementation is needed.
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v.into_boxed_slice()))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.0[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.0[..] == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self.0[..] == *other
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(Arc::strong_count(&a.0), 2);
    }

    #[test]
    fn conversions() {
        let b = Bytes::from(&b"abc"[..]);
        assert_eq!(b.to_vec(), vec![b'a', b'b', b'c']);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[1..], b"bc");
    }
}
