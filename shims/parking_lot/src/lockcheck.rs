//! Lock-order and hold-time instrumentation for the shim's lock types.
//!
//! When active, every acquisition of a **named** lock (see
//! [`crate::Mutex::named`] / [`crate::RwLock::named`]) is recorded into a
//! per-thread stack of held lock classes and a global **acquisition
//! graph**: acquiring class `B` while holding class `A` adds the edge
//! `A → B`, annotated with the two source locations involved. A new edge
//! that closes a cycle is a potential deadlock and panics immediately,
//! naming both offending site pairs — the test that took the locks in the
//! inverted order fails on the spot, whether or not the schedule actually
//! deadlocked this run.
//!
//! Beyond ordering, the tracker keeps a **hold-time histogram** per class
//! (acquisition count, total/max hold, bucketed durations) and records
//! which classes were **held across an fsync** (the store's WAL reports
//! its `sync_data` calls via [`note_fsync`]) — long holds and
//! lock-across-fsync are reported, not fatal, because the group-commit
//! design intentionally holds its log mutex over the sync; classes for
//! which that is by design are declared via [`allow_held_across_fsync`]
//! and anything else earns a loud stderr warning plus an entry in
//! [`fsync_report`].
//!
//! ## Activation
//!
//! Three switches, all required to observe anything:
//!
//! 1. the `lockcheck` **cargo feature** (default-on; `--no-default-features`
//!    strips every probe to nothing at compile time);
//! 2. the `ITAG_LOCKCHECK` **environment variable** (`1`/`true`), read once
//!    per process — or [`force_enable`] for tests that must not depend on
//!    the environment;
//! 3. a **named** lock: unnamed locks (everything constructed via the
//!    plain `new`) carry class 0 and are skipped entirely, so third-party
//!    code inside the workspace cannot produce false cycles.
//!
//! When the feature is on but the env switch is off, the entire probe is
//! one relaxed atomic load per lock operation.
//!
//! ## False-positive policy
//!
//! A cycle in the acquisition graph is only a *potential* deadlock: state
//! machines can make an inverted order unreachable. Such proven-safe
//! inversions must be declared up front via [`allow_edge`] with a written
//! justification — the exemption list is the reviewed waiver set of this
//! checker, exactly like the lint's `// lint: allow(...)` budget. The
//! acceptance bar for the repo is zero cycle reports with the shipped
//! exemptions.

use std::collections::HashMap;
use std::panic::Location;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock};
use std::time::Instant;

/// Interned identifier of a lock class. Class 0 is "untracked".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassId(pub(crate) u16);

/// The class of every unnamed lock; never tracked.
pub const UNTRACKED: ClassId = ClassId(0);

/// Hard cap on distinct classes; later names fall back to [`UNTRACKED`].
pub const MAX_CLASSES: usize = 512;

/// Hold-duration histogram bucket upper bounds, in nanoseconds
/// (the last bucket is unbounded).
pub const HOLD_BUCKETS_NS: [u64; 6] = [
    1_000,         // < 1 µs
    10_000,        // < 10 µs
    100_000,       // < 100 µs
    1_000_000,     // < 1 ms
    10_000_000,    // < 10 ms
    1_000_000_000, // < 1 s
];

#[derive(Debug, Clone)]
struct Edge {
    /// Where the already-held lock was acquired.
    held_site: &'static Location<'static>,
    /// Where the second lock was being acquired when the edge was seen.
    acquire_site: &'static Location<'static>,
    exempt: bool,
}

/// Per-class hold statistics.
#[derive(Debug, Clone, Default)]
pub struct HoldStats {
    pub acquisitions: u64,
    pub total_ns: u64,
    pub max_ns: u64,
    /// Counts per [`HOLD_BUCKETS_NS`] bucket, plus one overflow bucket.
    pub buckets: [u64; 7],
}

/// One "class was held across an fsync" observation set.
#[derive(Debug, Clone)]
pub struct FsyncObservation {
    pub class: String,
    pub count: u64,
    /// Declared by-design via [`allow_held_across_fsync`].
    pub allowed: bool,
}

#[derive(Default)]
struct Registry {
    /// Class names; index is the `ClassId`. Slot 0 is the untracked class.
    names: Vec<String>,
    by_name: HashMap<String, u16>,
    edges: HashMap<(u16, u16), Edge>,
    /// Exempted (from, to) pairs with their justification.
    exemptions: HashMap<(u16, u16), String>,
    fsync_allowed: HashMap<u16, String>,
    hold: Vec<HoldStats>,
    /// class → (observations, already-warned)
    fsync_seen: HashMap<u16, (u64, bool)>,
}

fn registry() -> StdMutexGuard<'static, Registry> {
    static REG: OnceLock<StdMutex<Registry>> = OnceLock::new();
    let reg = REG.get_or_init(|| {
        StdMutex::new(Registry {
            names: vec!["(untracked)".to_string()],
            hold: vec![HoldStats::default()],
            ..Registry::default()
        })
    });
    // The registry mutex is the tracker's own and is deliberately a raw
    // std mutex: instrumenting it would recurse.
    reg.lock().unwrap_or_else(|p| p.into_inner())
}

struct Held {
    class: u16,
    site: &'static Location<'static>,
    since: Instant,
}

thread_local! {
    static HELD: std::cell::RefCell<Vec<Held>> = const { std::cell::RefCell::new(Vec::new()) };
}

static FORCED: AtomicBool = AtomicBool::new(false);

/// True when the tracker is observing (feature compiled in, and either
/// `ITAG_LOCKCHECK=1`/`true` in the environment or [`force_enable`]).
#[inline]
pub fn enabled() -> bool {
    if !cfg!(feature = "lockcheck") {
        return false;
    }
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        // This is the shim's own switch, not an engine knob, so it is not
        // routed through the engine's strict parser (the shim sits below
        // every itag crate). Unrecognized values mean "off".
        std::env::var("ITAG_LOCKCHECK")
            .map(|v| matches!(v.trim(), "1" | "true"))
            .unwrap_or(false)
    }) || FORCED.load(Ordering::Relaxed)
}

/// Turns the tracker on for the rest of the process, regardless of the
/// environment. For tests that must exercise the instrumentation
/// deterministically. No-op without the `lockcheck` feature.
pub fn force_enable() {
    FORCED.store(true, Ordering::Relaxed);
}

/// Interns `name` and returns its class id. Returns [`UNTRACKED`] when
/// the tracker is compiled out or the class table is full.
pub fn class(name: &str) -> ClassId {
    if !cfg!(feature = "lockcheck") {
        return UNTRACKED;
    }
    let mut reg = registry();
    if let Some(&id) = reg.by_name.get(name) {
        return ClassId(id);
    }
    if reg.names.len() >= MAX_CLASSES {
        return UNTRACKED;
    }
    let id = reg.names.len() as u16;
    reg.names.push(name.to_string());
    reg.by_name.insert(name.to_string(), id);
    reg.hold.push(HoldStats::default());
    ClassId(id)
}

/// Declares the acquisition order `from → to` as proven safe (a state
/// machine makes the inversion unreachable) with a written reason. The
/// edge is recorded but excluded from cycle detection. Part of the
/// reviewed waiver surface — keep the justification honest.
pub fn allow_edge(from: &str, to: &str, reason: &str) {
    if !cfg!(feature = "lockcheck") {
        return;
    }
    let (f, t) = (class(from), class(to));
    if f == UNTRACKED || t == UNTRACKED {
        return;
    }
    registry()
        .exemptions
        .entry((f.0, t.0))
        .or_insert_with(|| reason.to_string());
}

/// Declares that holding `name` across an fsync is by design (e.g. the
/// WAL group leader serializes log I/O under its log mutex).
pub fn allow_held_across_fsync(name: &str, reason: &str) {
    if !cfg!(feature = "lockcheck") {
        return;
    }
    let c = class(name);
    if c == UNTRACKED {
        return;
    }
    registry()
        .fsync_allowed
        .entry(c.0)
        .or_insert_with(|| reason.to_string());
}

/// Cycle check run *before* blocking on the lock, so a potential deadlock
/// is reported even on schedules where it would not have bitten.
pub fn pre_acquire(class: ClassId, site: &'static Location<'static>) {
    if class == UNTRACKED || !enabled() {
        return;
    }
    HELD.with(|held| {
        let held = held.borrow();
        for h in held.iter() {
            if h.class == class.0 {
                let name = registry().names[class.0 as usize].clone();
                panic!(
                    "lockcheck: class `{name}` acquired at {site} while already held \
                     (acquired at {}) — same-class nesting is a self-deadlock with the \
                     shim's non-reentrant std locks",
                    h.site
                );
            }
            record_edge(h.class, h.site, class.0, site);
        }
    });
}

/// Records the successful acquisition (hold timing starts now).
pub fn post_acquire(class: ClassId, site: &'static Location<'static>) {
    if class == UNTRACKED || !enabled() {
        return;
    }
    HELD.with(|held| {
        held.borrow_mut().push(Held {
            class: class.0,
            site,
            since: Instant::now(),
        });
    });
}

/// Records a release (guard drop, or the release half of a condvar wait).
/// Guards may drop in any order, so the stack is searched, not popped.
pub fn on_release(class: ClassId) {
    if class == UNTRACKED || !enabled() {
        return;
    }
    let dur = HELD.with(|held| {
        let mut held = held.borrow_mut();
        let idx = held.iter().rposition(|h| h.class == class.0)?;
        let h = held.remove(idx);
        Some(h.since.elapsed())
    });
    let Some(dur) = dur else { return };
    let ns = u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX);
    let mut reg = registry();
    let stats = &mut reg.hold[class.0 as usize];
    stats.acquisitions += 1;
    stats.total_ns += ns;
    stats.max_ns = stats.max_ns.max(ns);
    let bucket = HOLD_BUCKETS_NS
        .iter()
        .position(|&ub| ns < ub)
        .unwrap_or(HOLD_BUCKETS_NS.len());
    stats.buckets[bucket] += 1;
}

/// Reports an fsync happening on the calling thread (the store's WAL
/// calls this from `Wal::sync`). Every named lock currently held is
/// recorded; classes not declared via [`allow_held_across_fsync`] earn a
/// one-time stderr warning.
#[track_caller]
pub fn note_fsync() {
    if !enabled() {
        return;
    }
    let site = Location::caller();
    HELD.with(|held| {
        let held = held.borrow();
        if held.is_empty() {
            return;
        }
        let mut reg = registry();
        for h in held.iter() {
            let allowed = reg.fsync_allowed.contains_key(&h.class);
            let lock_site = h.site;
            let name = reg.names[h.class as usize].clone();
            let entry = reg.fsync_seen.entry(h.class).or_insert((0, false));
            entry.0 += 1;
            if !allowed && !entry.1 {
                entry.1 = true;
                eprintln!(
                    "lockcheck: WARNING: lock class `{name}` (acquired at {lock_site}) \
                     held across fsync at {site}; declare it with \
                     allow_held_across_fsync if this is by design"
                );
            }
        }
    });
}

/// Adds `from → to` to the acquisition graph; panics on a new cycle.
fn record_edge(
    from: u16,
    held_site: &'static Location<'static>,
    to: u16,
    acquire_site: &'static Location<'static>,
) {
    let mut reg = registry();
    if reg.edges.contains_key(&(from, to)) {
        return;
    }
    let exempt = reg.exemptions.contains_key(&(from, to));
    reg.edges.insert(
        (from, to),
        Edge {
            held_site,
            acquire_site,
            exempt,
        },
    );
    if exempt {
        return;
    }
    // DFS from `to` over non-exempt edges; reaching `from` closes a cycle.
    if let Some(path) = find_path(&reg, to, from) {
        let name = |id: u16| reg.names[id as usize].clone();
        let mut back = String::new();
        for win in path.windows(2) {
            let e = &reg.edges[&(win[0], win[1])];
            back.push_str(&format!(
                "\n    `{}` → `{}` (held from {}, acquired at {})",
                name(win[0]),
                name(win[1]),
                e.held_site,
                e.acquire_site
            ));
        }
        panic!(
            "lockcheck: lock-order cycle detected!\n  new edge: `{}` → `{}` \
             (`{}` held from {}, `{}` being acquired at {})\n  conflicts with \
             the previously recorded order:{}\n  If a state machine proves the \
             inversion unreachable, declare it via lockcheck::allow_edge with a \
             written reason.",
            name(from),
            name(to),
            name(from),
            held_site,
            name(to),
            acquire_site,
            back
        );
    }
}

/// Shortest-ish path `start → … → goal` over non-exempt edges (DFS).
fn find_path(reg: &Registry, start: u16, goal: u16) -> Option<Vec<u16>> {
    let mut stack = vec![vec![start]];
    let mut visited = std::collections::HashSet::new();
    visited.insert(start);
    while let Some(path) = stack.pop() {
        let last = *path.last()?;
        for (&(a, b), e) in reg.edges.iter() {
            if a != last || e.exempt {
                continue;
            }
            if b == goal {
                let mut p = path.clone();
                p.push(b);
                return Some(p);
            }
            if visited.insert(b) {
                let mut p = path.clone();
                p.push(b);
                stack.push(p);
            }
        }
    }
    None
}

/// Number of distinct ordered class pairs observed so far.
pub fn edge_count() -> usize {
    if !cfg!(feature = "lockcheck") {
        return 0;
    }
    registry().edges.len()
}

/// Hold statistics for `name`, if the class exists and was ever held.
pub fn hold_stats(name: &str) -> Option<HoldStats> {
    if !cfg!(feature = "lockcheck") {
        return None;
    }
    let reg = registry();
    let &id = reg.by_name.get(name)?;
    let s = reg.hold[id as usize].clone();
    (s.acquisitions > 0).then_some(s)
}

/// Every fsync observation so far (class held across an fsync).
pub fn fsync_report() -> Vec<FsyncObservation> {
    if !cfg!(feature = "lockcheck") {
        return Vec::new();
    }
    let reg = registry();
    let mut out: Vec<FsyncObservation> = reg
        .fsync_seen
        .iter()
        .map(|(&c, &(count, _))| FsyncObservation {
            class: reg.names[c as usize].clone(),
            count,
            allowed: reg.fsync_allowed.contains_key(&c),
        })
        .collect();
    out.sort_by(|a, b| a.class.cmp(&b.class));
    out
}

/// Human-readable hold-time histogram over every class that was ever
/// held, sorted by total hold time descending. Used by the RwLock
/// fairness audit and available to any test via `eprintln!`.
pub fn hold_report() -> String {
    if !cfg!(feature = "lockcheck") {
        return String::from("lockcheck compiled out\n");
    }
    let reg = registry();
    let mut rows: Vec<(String, HoldStats)> = reg
        .names
        .iter()
        .zip(reg.hold.iter())
        .filter(|(_, s)| s.acquisitions > 0)
        .map(|(n, s)| (n.clone(), s.clone()))
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1.total_ns));
    let mut out = String::from(
        "lock class                     acquires   total(ms)     max(us)  \
         <1us <10us <100us <1ms <10ms <1s >=1s\n",
    );
    for (name, s) in rows {
        out.push_str(&format!(
            "{name:<30} {:>9} {:>11.3} {:>11.1}  {}\n",
            s.acquisitions,
            s.total_ns as f64 / 1e6,
            s.max_ns as f64 / 1e3,
            s.buckets
                .iter()
                .map(|b| b.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        ));
    }
    out
}

#[cfg(all(test, feature = "lockcheck"))]
mod tests {
    use super::*;

    // Class names in these tests are unique per test: the graph is
    // process-global, and a test that deliberately records a cycle
    // leaves its edges behind.

    fn site() -> &'static Location<'static> {
        Location::caller()
    }

    #[test]
    fn unnamed_classes_are_never_tracked() {
        force_enable();
        pre_acquire(UNTRACKED, site());
        post_acquire(UNTRACKED, site());
        on_release(UNTRACKED);
        // No stats row appears for the untracked class.
        assert!(hold_stats("(untracked)").is_none());
    }

    #[test]
    fn consistent_order_and_hold_stats() {
        force_enable();
        let a = class("t1.a");
        let b = class("t1.b");
        for _ in 0..3 {
            pre_acquire(a, site());
            post_acquire(a, site());
            pre_acquire(b, site());
            post_acquire(b, site());
            on_release(b);
            on_release(a);
        }
        let s = hold_stats("t1.a").expect("held classes have stats");
        assert_eq!(s.acquisitions, 3);
        assert!(s.total_ns >= s.max_ns);
        assert_eq!(s.buckets.iter().sum::<u64>(), 3);
        assert!(hold_report().contains("t1.a"));
    }

    #[test]
    #[should_panic(expected = "lock-order cycle")]
    fn inverted_order_panics_with_both_sites() {
        force_enable();
        let a = class("t2.a");
        let b = class("t2.b");
        pre_acquire(a, site());
        post_acquire(a, site());
        pre_acquire(b, site());
        post_acquire(b, site());
        on_release(b);
        on_release(a);
        // Inversion: b then a.
        pre_acquire(b, site());
        post_acquire(b, site());
        pre_acquire(a, site()); // must panic
    }

    #[test]
    #[should_panic(expected = "same-class nesting")]
    fn reentrant_same_class_panics() {
        force_enable();
        let a = class("t3.a");
        pre_acquire(a, site());
        post_acquire(a, site());
        pre_acquire(a, site()); // must panic
    }

    #[test]
    fn exempted_edge_does_not_close_a_cycle() {
        force_enable();
        allow_edge("t4.b", "t4.a", "test: state machine proves this safe");
        let a = class("t4.a");
        let b = class("t4.b");
        pre_acquire(a, site());
        post_acquire(a, site());
        pre_acquire(b, site());
        post_acquire(b, site());
        on_release(b);
        on_release(a);
        // The inversion is declared safe: no panic.
        pre_acquire(b, site());
        post_acquire(b, site());
        pre_acquire(a, site());
        post_acquire(a, site());
        on_release(a);
        on_release(b);
    }

    #[test]
    fn fsync_observations_record_held_classes() {
        force_enable();
        allow_held_across_fsync("t5.log", "test: leader serializes WAL I/O");
        let l = class("t5.log");
        let x = class("t5.other");
        pre_acquire(l, site());
        post_acquire(l, site());
        pre_acquire(x, site());
        post_acquire(x, site());
        note_fsync();
        on_release(x);
        on_release(l);
        let report = fsync_report();
        let log = report.iter().find(|o| o.class == "t5.log").unwrap();
        assert!(log.allowed && log.count >= 1);
        let other = report.iter().find(|o| o.class == "t5.other").unwrap();
        assert!(!other.allowed && other.count >= 1);
    }

    #[test]
    fn out_of_order_release_is_tolerated() {
        force_enable();
        let a = class("t6.a");
        let b = class("t6.b");
        pre_acquire(a, site());
        post_acquire(a, site());
        pre_acquire(b, site());
        post_acquire(b, site());
        // FIFO drop order, as Vec<Guard> does.
        on_release(a);
        on_release(b);
        assert!(hold_stats("t6.a").is_some());
        assert!(hold_stats("t6.b").is_some());
    }
}
