//! Vendored stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no registry access, so the workspace carries
//! API-compatible shims for its external dependencies. This one maps the
//! non-poisoning `parking_lot` lock API onto the std primitives: a
//! poisoned std lock simply yields the inner guard (lock poisoning is a
//! std-only concept; `parking_lot` locks never poison).
//!
//! On top of the API mapping, the shim hosts the workspace's lock-order
//! and hold-time instrumentation (see [`lockcheck`]): locks constructed
//! via [`Mutex::named`] / [`RwLock::named`] carry a **lock class**, and
//! when `ITAG_LOCKCHECK=1` every acquisition feeds a global acquisition
//! graph that panics on ordering cycles and reports hold-time histograms
//! and locks held across fsync. Unnamed locks are never tracked; with the
//! tracker idle the probe is one relaxed atomic load per operation, and
//! `--no-default-features` compiles it out entirely.
//!
//! ## Fairness and reentrancy (audit notes)
//!
//! These locks inherit the semantics of the std futex implementations on
//! Linux, which differ from real `parking_lot` in ways the store's
//! group-commit workload cares about:
//!
//! * **Writer starvation:** std's `RwLock` blocks *new* readers as soon
//!   as a writer is waiting, so a continuous stream of overlapping reads
//!   cannot starve `write()` indefinitely — the writer gets in once the
//!   current reader generation drains. Real `parking_lot` additionally
//!   promises eventual fairness by timeout; std promises no fairness
//!   *among writers* (a herd of writers is served in unspecified order),
//!   which is acceptable for the store because every shard write happens
//!   under the single commit pipeline. The claim above is exercised by
//!   `writer_is_not_starved_by_reader_churn` in this crate's tests and is
//!   observable in production-shaped runs via
//!   [`lockcheck::hold_report`]'s max-hold column for the
//!   `store.shard[i]` classes.
//! * **Reentrancy:** none. Re-locking a `Mutex` the thread already holds
//!   deadlocks; re-`read()`ing an `RwLock` on a thread that already holds
//!   a read guard can deadlock once a writer queues between the two
//!   (std's read is *not* recursive-safe precisely because of the
//!   writer-priority rule above). The tracker turns both mistakes into an
//!   immediate panic (`same-class nesting`) instead of a hang.
//! * **Guards are not `Send`:** they must drop on the acquiring thread,
//!   which is also what the tracker's per-thread held stack assumes.

pub mod lockcheck;

use std::fmt;
use std::panic::Location;
use std::sync::atomic::{AtomicU16, Ordering};

use lockcheck::ClassId;

/// RAII guard for [`Mutex`]. Wraps the std guard so release (including
/// the release half of a [`Condvar::wait`]) is visible to [`lockcheck`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    class: ClassId,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds its lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds its lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            lockcheck::on_release(self.class);
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    class: ClassId,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds its lock")
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            lockcheck::on_release(self.class);
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// RAII write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    class: ClassId,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds its lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds its lock")
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            lockcheck::on_release(self.class);
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A mutual-exclusion lock with the `parking_lot` API: `lock()` returns
/// the guard directly and never errors.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    class: AtomicU16,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lockcheck")]
            class: AtomicU16::new(0),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Like [`Mutex::new`], but registers the lock under a class name so
    /// [`lockcheck`] tracks its ordering and hold times. Distinct locks
    /// may share a name when they are interchangeable for ordering
    /// purposes (e.g. per-shard locks use `shard[i]` names instead).
    pub fn named(name: &str, value: T) -> Self {
        let m = Mutex::new(value);
        m.set_class(name);
        m
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// (Re-)registers this lock's [`lockcheck`] class. Usually called via
    /// [`Mutex::named`]; exists separately for locks built in `const`
    /// position.
    pub fn set_class(&self, name: &str) {
        #[cfg(feature = "lockcheck")]
        self.class
            .store(lockcheck::class(name).0, Ordering::Relaxed);
        #[cfg(not(feature = "lockcheck"))]
        let _ = name;
    }

    fn class_id(&self) -> ClassId {
        #[cfg(feature = "lockcheck")]
        return ClassId(self.class.load(Ordering::Relaxed));
        #[cfg(not(feature = "lockcheck"))]
        lockcheck::UNTRACKED
    }

    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let class = self.class_id();
        lockcheck::pre_acquire(class, Location::caller());
        let g = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        lockcheck::post_acquire(class, Location::caller());
        MutexGuard {
            inner: Some(g),
            class,
        }
    }

    /// A `try_lock` cannot block, so it is recorded as an acquisition
    /// (hold times, fsync observations) but adds no ordering edge of its
    /// own and performs no cycle check.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        let class = self.class_id();
        lockcheck::post_acquire(class, Location::caller());
        Some(MutexGuard {
            inner: Some(g),
            class,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// A reader-writer lock with the `parking_lot` API: `read()`/`write()`
/// return guards directly and never error. See the module docs for the
/// fairness guarantees inherited from std.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lockcheck")]
    class: AtomicU16,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lockcheck")]
            class: AtomicU16::new(0),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Like [`RwLock::new`], but registers the lock under a [`lockcheck`]
    /// class name.
    pub fn named(name: &str, value: T) -> Self {
        let l = RwLock::new(value);
        l.set_class(name);
        l
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// (Re-)registers this lock's [`lockcheck`] class.
    pub fn set_class(&self, name: &str) {
        #[cfg(feature = "lockcheck")]
        self.class
            .store(lockcheck::class(name).0, Ordering::Relaxed);
        #[cfg(not(feature = "lockcheck"))]
        let _ = name;
    }

    fn class_id(&self) -> ClassId {
        #[cfg(feature = "lockcheck")]
        return ClassId(self.class.load(Ordering::Relaxed));
        #[cfg(not(feature = "lockcheck"))]
        lockcheck::UNTRACKED
    }

    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let class = self.class_id();
        lockcheck::pre_acquire(class, Location::caller());
        let g = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        lockcheck::post_acquire(class, Location::caller());
        RwLockReadGuard {
            inner: Some(g),
            class,
        }
    }

    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let class = self.class_id();
        lockcheck::pre_acquire(class, Location::caller());
        let g = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        lockcheck::post_acquire(class, Location::caller());
        RwLockWriteGuard {
            inner: Some(g),
            class,
        }
    }

    /// See [`Mutex::try_lock`] for how try-acquisitions are tracked.
    #[track_caller]
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let g = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        let class = self.class_id();
        lockcheck::post_acquire(class, Location::caller());
        Some(RwLockReadGuard {
            inner: Some(g),
            class,
        })
    }

    /// See [`Mutex::try_lock`] for how try-acquisitions are tracked.
    #[track_caller]
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let g = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        let class = self.class_id();
        lockcheck::post_acquire(class, Location::caller());
        Some(RwLockWriteGuard {
            inner: Some(g),
            class,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

/// Condition variable paired with the shim [`Mutex`]. The `parking_lot`
/// API takes `&mut MutexGuard` so the guard stays alive across the wait;
/// the release/reacquire halves are reported to [`lockcheck`] so hold
/// times exclude the blocked interval.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    #[track_caller]
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let site = Location::caller();
        let class = guard.class;
        let inner = guard.inner.take().expect("guard holds its lock");
        lockcheck::on_release(class);
        let reacquired = match self.0.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(reacquired);
        lockcheck::pre_acquire(class, site);
        lockcheck::post_acquire(class, site);
    }

    /// Waits with a timeout; returns `true` when the wait timed out.
    #[track_caller]
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let site = Location::caller();
        let class = guard.class;
        let inner = guard.inner.take().expect("guard holds its lock");
        lockcheck::on_release(class);
        let (reacquired, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(reacquired);
        lockcheck::pre_acquire(class, site);
        lockcheck::post_acquire(class, site);
        result.timed_out()
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64};
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1u8]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[cfg(feature = "lockcheck")]
    #[test]
    fn named_locks_feed_the_tracker() {
        lockcheck::force_enable();
        let outer = Mutex::named("shimtest.outer", 0u32);
        let inner = RwLock::named("shimtest.inner", 0u32);
        {
            let _a = outer.lock();
            let _b = inner.write();
        }
        {
            let _b = inner.read();
        }
        assert!(lockcheck::hold_stats("shimtest.outer").is_some());
        let s = lockcheck::hold_stats("shimtest.inner").expect("tracked");
        assert_eq!(s.acquisitions, 2);
    }

    #[cfg(feature = "lockcheck")]
    #[test]
    fn condvar_wait_excludes_blocked_time_from_holds() {
        lockcheck::force_enable();
        let m = Arc::new(Mutex::named("shimtest.cv_mutex", false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        // Give the waiter a moment to block, then hold the lock briefly:
        // if the waiter's blocked interval counted as hold time, max_ns
        // would dwarf the sleep below.
        std::thread::sleep(std::time::Duration::from_millis(50));
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
        let s = lockcheck::hold_stats("shimtest.cv_mutex").expect("tracked");
        assert!(
            s.max_ns < 40_000_000,
            "a condvar wait was accounted as lock hold time: max {} ns",
            s.max_ns
        );
    }

    /// Fairness audit (see module docs): a writer must get through while
    /// readers churn continuously. std's RwLock blocks new readers once a
    /// writer queues, so this terminates quickly; a reader-preferring
    /// lock would hang here until the churn stops.
    #[test]
    fn writer_is_not_starved_by_reader_churn() {
        let l = Arc::new(RwLock::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let reads = Arc::new(AtomicU64::new(0));
        let mut churn = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            churn.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let g = l.read();
                    reads.fetch_add(*g + 1, Ordering::Relaxed);
                }
            }));
        }
        // Ensure the readers are genuinely overlapping before the writer
        // arrives, then demand the write lock.
        while reads.load(Ordering::Relaxed) < 1_000 {
            std::thread::yield_now();
        }
        let start = std::time::Instant::now();
        *l.write() += 1;
        let waited = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        for t in churn {
            t.join().unwrap();
        }
        assert_eq!(*l.read(), 1);
        // Generous bound: the writer should be through in well under a
        // second even on a loaded CI box; an unfair lock spins forever.
        assert!(
            waited < std::time::Duration::from_secs(5),
            "writer waited {waited:?} behind reader churn"
        );
    }
}
