//! Vendored stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build environment has no registry access, so the workspace carries
//! API-compatible shims for its external dependencies. This one maps the
//! non-poisoning `parking_lot` lock API onto the std primitives: a
//! poisoned std lock simply yields the inner guard (lock poisoning is a
//! std-only concept; `parking_lot` locks never poison).

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with the `parking_lot` API: `lock()` returns
/// the guard directly and never errors.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock with the `parking_lot` API: `read()`/`write()`
/// return guards directly and never error.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T> From<T> for RwLock<T> {
    fn from(value: T) -> Self {
        RwLock::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1u8]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }
}
