//! End-to-end lockcheck run: force the acquisition tracker on and drive
//! the store through its contended paths — concurrent group commits,
//! reads, a checkpoint — then assert the recorded acquisition graph is
//! cycle-free (any cycle would have panicked mid-test) and that the
//! fsync observations are exactly the allowlisted ones.
//!
//! This is the `ITAG_LOCKCHECK=1 cargo test` matrix leg in miniature:
//! it works without the env var by calling `force_enable`, so the
//! default CI run also covers the instrumented code paths.

use itag_store::{Store, StoreOptions, SyncPolicy, TableId};
use parking_lot::lockcheck;
use std::sync::Arc;

const T: TableId = TableId(7);

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new() -> Self {
        let path = std::env::temp_dir().join(format!(
            "itag-lockcheck-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        std::fs::create_dir_all(&path).expect("create temp dir");
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn store_workload_under_lockcheck_is_cycle_free() {
    lockcheck::force_enable();
    if !lockcheck::enabled() {
        // Shim built without the `lockcheck` feature; nothing to check.
        return;
    }

    let dir = TempDir::new();
    let store = Arc::new(
        Store::open(
            &dir.0,
            StoreOptions {
                durability: itag_store::Durability::Sync,
                sync_policy: SyncPolicy::Batched,
                ..StoreOptions::default()
            },
        )
        .expect("open store"),
    );

    // Concurrent committers force group formation (leader + followers),
    // hitting commit_mu, log_mu, the shard RwLocks, and the batched
    // fsync's queue peek — the intentionally-exempted log_mu→commit_mu
    // edge. Any un-exempted inversion panics right here.
    let writers: Vec<_> = (0..4u8)
        .map(|w| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                for i in 0..50u32 {
                    let key = [w, (i >> 8) as u8, i as u8].to_vec();
                    store.put(T, key, i.to_le_bytes().to_vec()).expect("put");
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer thread");
    }

    // Readers and a checkpoint cross the shard locks and the quiescing
    // commit_mu/log_mu sequence in the opposite role.
    for w in 0..4u8 {
        assert!(store.get(T, &[w, 0, 0]).expect("get").is_some());
    }
    store.checkpoint().expect("checkpoint");
    store.sync().expect("sync");

    // The tracker saw real lock traffic...
    assert!(
        lockcheck::edge_count() > 0,
        "no acquisition edges recorded — is the store wired through the shim?"
    );
    let commit_stats = lockcheck::hold_stats("store.commit_mu")
        .expect("commit mutex must be a named, tracked class");
    assert!(commit_stats.acquisitions > 0);

    // ...and every lock held across an fsync was an allowlisted one.
    for obs in lockcheck::fsync_report() {
        assert!(
            obs.allowed,
            "un-allowlisted lock held across fsync: {obs:?}"
        );
    }
}
