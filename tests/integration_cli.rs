//! End-to-end tests of the `itag-cli` binary: generate → inspect →
//! campaign → export, and TSV ingestion.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_itag-cli"))
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("itag-cli-{}-{name}", std::process::id()))
}

#[test]
fn generate_inspect_campaign_roundtrip() {
    let corpus = temp_path("corpus.bin");
    let _ = std::fs::remove_file(&corpus);

    // generate
    let out = cli()
        .args([
            "generate",
            "--resources",
            "80",
            "--posts",
            "400",
            "--seed",
            "3",
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("run generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(corpus.exists());

    // inspect
    let out = cli()
        .args(["inspect", corpus.to_str().unwrap()])
        .output()
        .expect("run inspect");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("resources     80"), "{text}");
    assert!(text.contains("gini"), "{text}");

    // campaign
    let out = cli()
        .args([
            "campaign",
            "--corpus",
            corpus.to_str().unwrap(),
            "--strategy",
            "fp-mu",
            "--budget",
            "400",
            "--seed",
            "5",
        ])
        .output()
        .expect("run campaign");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("FP-MU"), "{text}");
    assert!(text.contains("400 tasks"), "{text}");

    // export
    let tags_csv = temp_path("tags.csv");
    let _ = std::fs::remove_file(&tags_csv);
    let out = cli()
        .args([
            "export",
            "--corpus",
            corpus.to_str().unwrap(),
            "--strategy",
            "mu",
            "--budget",
            "200",
            "--out",
            tags_csv.to_str().unwrap(),
        ])
        .output()
        .expect("run export");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let csv = std::fs::read_to_string(&tags_csv).expect("csv written");
    assert_eq!(csv.lines().count(), 81, "header + one row per resource");

    let _ = std::fs::remove_file(&corpus);
    let _ = std::fs::remove_file(&tags_csv);
}

#[test]
fn ingest_tsv_and_compare() {
    let input = temp_path("events.tsv");
    let corpus = temp_path("ingested.bin");
    let mut tsv = String::from("# at\tresource\ttagger\ttags\n");
    for i in 0..200u64 {
        tsv.push_str(&format!(
            "{i}\thttps://r{}\tu{}\ttag{},common\n",
            i % 10,
            i % 7,
            i % 4
        ));
    }
    std::fs::write(&input, tsv).unwrap();

    let out = cli()
        .args([
            "ingest",
            "--input",
            input.to_str().unwrap(),
            "--out",
            corpus.to_str().unwrap(),
        ])
        .output()
        .expect("run ingest");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("ingested 200 events onto 10 resources"),
        "{text}"
    );

    let out = cli()
        .args([
            "compare",
            "--corpus",
            corpus.to_str().unwrap(),
            "--budget",
            "100",
        ])
        .output()
        .expect("run compare");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    for label in ["FC", "RAND", "FP", "MU", "FP-MU", "OPT"] {
        assert!(text.contains(label), "missing {label} in:\n{text}");
    }

    let _ = std::fs::remove_file(&input);
    let _ = std::fs::remove_file(&corpus);
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = cli().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("USAGE"), "{err}");
}

#[test]
fn bad_flags_are_reported() {
    let out = cli().args(["campaign", "--corpus"]).output().expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));

    let out = cli()
        .args(["campaign", "--corpus", "/nonexistent/corpus.bin"])
        .output()
        .expect("run");
    assert!(!out.status.success());
}
