//! Schedule-explorer model of the MVCC snapshot capture / epoch
//! publication protocol in `itag_store` (`Store::apply_batch` vs
//! `Store::read_snapshot`).
//!
//! Shape-faithful to the real code: a committing writer locks every
//! shard its batch touches (in shard-index order), applies the entries,
//! and publishes the new epoch **while still holding those locks**; a
//! capturer locks all shards (same order), then reads the epoch and the
//! contents as one atomic cut. The invariant is the staleness contract
//! the `mvcc_snapshot` suite checks end-to-end: a capture that reads
//! epoch `e` must see *exactly* the effects of batches `1..=e` in every
//! shard — never a torn batch, never an effect the epoch does not admit.
//!
//! The `should_panic` twin moves the epoch publication to after the
//! writer has released its shard locks — the "obvious" ordering, since
//! the epoch is an atomic anyway. The explorer finds the schedule where
//! a capture slips between the unlock and the publication and sees
//! batch `e+1`'s effects under epoch `e`: a snapshot that is not equal
//! to its replay twin. That is exactly the bug the
//! publish-inside-the-critical-section rule exists to kill.

use itag::crowd::model::{explore, Config, Env};

const SHARDS: usize = 2;
const WRITERS: usize = 2;
const BATCHES_PER_WRITER: usize = 2;

fn cfg() -> Config {
    Config {
        preemption_bound: 2,
        ..Config::default()
    }
}

/// Runs writers committing cross-shard batches against one capturer.
/// `publish_inside` is the line under test: epoch publication inside vs
/// after the shard critical section.
fn run_capture_model(env: &Env, publish_inside: bool) {
    // Each shard holds the number of batches applied to it; a batch
    // touches every shard, so at any committed cut all shards agree.
    let shards: Vec<_> = (0..SHARDS).map(|_| env.mutex(0usize)).collect();
    let epoch = env.atomic_usize(0);

    let mut joins = Vec::new();
    for _ in 0..WRITERS {
        let shards = shards.clone();
        let epoch = epoch.clone();
        joins.push(env.spawn(move || {
            for _ in 0..BATCHES_PER_WRITER {
                // Lock order: shard index ascending — the same total
                // order the store's commit path uses.
                let mut guards: Vec<_> = shards.iter().map(|s| s.lock()).collect();
                for g in guards.iter_mut() {
                    **g += 1;
                }
                if publish_inside {
                    epoch.fetch_add(1);
                }
                drop(guards);
                if !publish_inside {
                    // Bug twin: the batch is visible before the epoch
                    // admits it.
                    epoch.fetch_add(1);
                }
            }
        }));
    }

    // The capturer: all shard locks (ascending), then epoch + contents
    // as one cut — `StoreSnapshot::capture` in miniature.
    {
        let shards = shards.clone();
        let epoch = epoch.clone();
        joins.push(env.spawn(move || {
            for _ in 0..2 {
                let guards: Vec<_> = shards.iter().map(|s| s.lock()).collect();
                let e = epoch.load();
                for (i, g) in guards.iter().enumerate() {
                    assert_eq!(
                        **g, e,
                        "shard {i} holds {} batches under published epoch {e}: \
                         the capture is not the prefix 1..={e}",
                        **g
                    );
                }
                drop(guards);
            }
        }));
    }

    for j in joins {
        j.join();
    }

    // Quiesced: every batch committed and published.
    assert_eq!(epoch.load(), WRITERS * BATCHES_PER_WRITER);
    for s in &shards {
        assert_eq!(*s.lock(), WRITERS * BATCHES_PER_WRITER);
    }
}

#[test]
fn epoch_published_under_shard_locks_gives_prefix_consistent_captures() {
    let report = explore(cfg(), |env| run_capture_model(env, true));
    assert!(report.executions > 0);
}

#[test]
#[should_panic(expected = "is not the prefix")]
fn bug_twin_publishing_epoch_after_unlock_tears_the_capture() {
    explore(cfg(), |env| run_capture_model(env, false));
}
