//! Reputation-schedule equivalence suite: the incremental ledger
//! (`ITAG_REPUTATION=ledger`, the default — built from the tagger table
//! once at engine open, maintained by applying each committed round's
//! per-worker deltas) must be **bit-identical** to the per-round rescan
//! schedule (`ITAG_REPUTATION=rescan`, the pre-ledger reference) — across
//! thread counts, pipeline depths, serial/parallel interleavings, crash +
//! reopen (the ledger's recovery rebuild), and registered populations far
//! larger than any round's worker set.

use itag::core::config::{EngineConfig, ReputationMode};
use itag::core::engine::{ITagEngine, RunSummary};
use itag::core::monitor::MonitorSnapshot;
use itag::core::project::ProjectSpec;
use itag::model::delicious::DeliciousConfig;
use itag::model::ids::ProjectId;

fn dataset(seed: u64) -> itag::model::dataset::Dataset {
    DeliciousConfig {
        resources: 40,
        initial_posts: 200,
        eval_posts: 0,
        seed,
        ..DeliciousConfig::default()
    }
    .generate()
    .dataset
}

fn build_engine(mode: ReputationMode, registered_taggers: u32) -> (ITagEngine, Vec<ProjectId>) {
    let mut config = EngineConfig::in_memory(0x1ED6E4);
    config.workers = 16;
    config.spammer_fraction = 0.25; // rejections → gate reads → bans
    config.reputation = Some(mode);
    let mut e = ITagEngine::new(config).unwrap();
    if registered_taggers > 0 {
        // A registered population far above the worker-id range: rescan
        // pays to walk it every round, the ledger never sees it.
        e.seed_taggers(1 << 20, registered_taggers).unwrap();
    }
    let provider = e.register_provider("reputation-equivalence").unwrap();
    let mut projects = Vec::new();
    for i in 0..4u64 {
        projects.push(
            e.add_project(
                provider,
                ProjectSpec::demo(&format!("campaign-{i}"), 200),
                dataset(0x1ED6E4 + i),
            )
            .unwrap(),
        );
    }
    (e, projects)
}

type RoundOutput = (
    Vec<(ProjectId, RunSummary)>,
    Vec<MonitorSnapshot>,
    Vec<Vec<(u32, u64)>>,
    u64,
);

fn run_rounds(
    mode: ReputationMode,
    registered_taggers: u32,
    threads: usize,
    depth: usize,
) -> RoundOutput {
    let (mut e, projects) = build_engine(mode, registered_taggers);
    let mut summaries = Vec::new();
    for _ in 0..2 {
        summaries.extend(e.run_all_with(75, threads, depth).unwrap());
    }
    let monitors = projects.iter().map(|p| e.monitor(*p).unwrap()).collect();
    let balances = projects
        .iter()
        .map(|p| e.worker_balances(*p).unwrap())
        .collect();
    (summaries, monitors, balances, e.store_checksum())
}

#[test]
fn ledger_matches_rescan_at_every_thread_count_and_depth() {
    // The acceptance matrix: threads {1, 2, 8} × pipeline depths {0, 2},
    // both schedules, all against one reference — monitor snapshots,
    // payment ledgers and the stored-table digest must agree bit-for-bit.
    let base = run_rounds(ReputationMode::Rescan, 0, 1, 0);
    for mode in [ReputationMode::Ledger, ReputationMode::Rescan] {
        for threads in [1usize, 2, 8] {
            for depth in [0usize, 2] {
                if (mode, threads, depth) == (ReputationMode::Rescan, 1, 0) {
                    continue; // the base cell itself
                }
                let other = run_rounds(mode, 0, threads, depth);
                assert_eq!(
                    base.0, other.0,
                    "summaries diverged: {mode:?}, {threads} threads, depth {depth}"
                );
                assert_eq!(
                    base.1, other.1,
                    "monitors diverged: {mode:?}, {threads} threads, depth {depth}"
                );
                assert_eq!(
                    base.2, other.2,
                    "ledger balances diverged: {mode:?}, {threads} threads, depth {depth}"
                );
                assert_eq!(
                    base.3, other.3,
                    "stored bytes diverged: {mode:?}, {threads} threads, depth {depth}"
                );
            }
        }
    }
}

#[test]
fn large_registered_population_changes_nothing_but_the_user_table() {
    // Registered-but-inactive taggers (the north-star shape: millions of
    // accounts, a small active fringe) must not influence a single
    // decision — in either schedule — and the two schedules must agree
    // on the full stored state including the seeded rows.
    let base = run_rounds(ReputationMode::Rescan, 0, 2, 2);
    let ledger = run_rounds(ReputationMode::Ledger, 5_000, 2, 2);
    let rescan = run_rounds(ReputationMode::Rescan, 5_000, 2, 2);
    assert_eq!(
        ledger.3, rescan.3,
        "stored bytes diverged under a large registered population"
    );
    assert_eq!(ledger.0, rescan.0, "summaries diverged under population");
    assert_eq!(ledger.1, rescan.1, "monitors diverged under population");
    // The population is invisible to campaign outcomes (checksums differ
    // only because the user table carries the extra rows).
    assert_eq!(base.0, ledger.0, "inactive accounts influenced a round");
    assert_eq!(base.1, ledger.1, "inactive accounts influenced a monitor");
    assert_eq!(base.2, ledger.2, "inactive accounts influenced a payout");
}

/// One durable life-cycle with a mid-run reopen: rounds, drop with the
/// WAL tail live (no checkpoint — reopening replays it, and in ledger
/// mode rebuilds the ledger from the recovered table), more rounds,
/// checkpoint, final reopen. Returns the post-reopen monitors and the
/// durable store digest.
fn durable_lifecycle(mode: ReputationMode) -> (Vec<MonitorSnapshot>, u64) {
    let dir = itag::store::testutil::TestDir::new(&format!("rep-equiv-{mode:?}"));
    let config = |seed: u64| {
        let mut c = EngineConfig::durable(seed, dir.path().to_path_buf());
        c.workers = 16;
        c.spammer_fraction = 0.25;
        c.reputation = Some(mode);
        c
    };
    let projects: Vec<ProjectId> = {
        let mut e = ITagEngine::new(config(0xC4A5)).unwrap();
        let provider = e.register_provider("durable-equivalence").unwrap();
        let projects: Vec<ProjectId> = (0..3u64)
            .map(|i| {
                e.add_project(
                    provider,
                    ProjectSpec::demo(&format!("durable-{i}"), 200),
                    dataset(0xC4A5 + i),
                )
                .unwrap()
            })
            .collect();
        for _ in 0..2 {
            e.run_all_with(40, 4, 2).unwrap();
        }
        projects
        // Dropped without a checkpoint: the WAL tail carries the rounds.
    };
    let monitors = {
        let mut e = ITagEngine::new(config(0xC4A5)).unwrap();
        for p in &projects {
            e.resume_project(*p).unwrap();
        }
        for _ in 0..2 {
            e.run_all_with(40, 4, 2).unwrap();
        }
        e.checkpoint().unwrap();
        projects.iter().map(|p| e.monitor(*p).unwrap()).collect()
    };
    let reopened = ITagEngine::new(config(0xC4A5)).unwrap();
    (monitors, reopened.store_checksum())
}

#[test]
fn crash_reopen_mid_run_rebuilds_the_ledger_identically() {
    let (ledger_monitors, ledger_digest) = durable_lifecycle(ReputationMode::Ledger);
    let (rescan_monitors, rescan_digest) = durable_lifecycle(ReputationMode::Rescan);
    assert_eq!(
        ledger_monitors, rescan_monitors,
        "post-reopen campaigns diverged between schedules"
    );
    assert_eq!(
        ledger_digest, rescan_digest,
        "durable on-disk state diverged between schedules after checkpoint + reopen"
    );
}

#[test]
fn env_selected_rescan_matches_config_selected_rescan() {
    // The CI matrix selects the schedule through `ITAG_REPUTATION`; the
    // engine must resolve config over env, and an engine with no config
    // choice must land on whatever the environment (or the default) says
    // while producing the same results either way.
    let via_config = run_rounds(ReputationMode::Rescan, 0, 2, 2);
    let (mut e, projects) = {
        let mut config = EngineConfig::in_memory(0x1ED6E4);
        config.workers = 16;
        config.spammer_fraction = 0.25;
        config.reputation = None; // resolve via ITAG_REPUTATION / default
        let mut e = ITagEngine::new(config).unwrap();
        let provider = e.register_provider("reputation-equivalence").unwrap();
        let projects: Vec<ProjectId> = (0..4u64)
            .map(|i| {
                e.add_project(
                    provider,
                    ProjectSpec::demo(&format!("campaign-{i}"), 200),
                    dataset(0x1ED6E4 + i),
                )
                .unwrap()
            })
            .collect();
        (e, projects)
    };
    let mut summaries = Vec::new();
    for _ in 0..2 {
        summaries.extend(e.run_all_with(75, 2, 2).unwrap());
    }
    assert_eq!(
        via_config.0, summaries,
        "schedule resolution changed results"
    );
    let monitors: Vec<MonitorSnapshot> = projects.iter().map(|p| e.monitor(*p).unwrap()).collect();
    assert_eq!(via_config.1, monitors);
    assert_eq!(via_config.3, e.store_checksum());
}
