//! Workspace-surface smoke tests: the facade prelude must expose a
//! workable API, and the flagship example must run under
//! `cargo run --example quickstart`. Guards the Cargo wiring itself
//! (manifest paths, re-exports, example registration) rather than any
//! single algorithm.

use itag::prelude::*;
use std::process::Command;

/// `itag::prelude::*` alone is enough to build a corpus, run a funded
/// campaign through the engine, and read the monitor.
#[test]
fn prelude_drives_an_engine_campaign() {
    let dataset = DeliciousConfig {
        resources: 40,
        initial_posts: 120,
        eval_posts: 0,
        seed: 11,
        ..DeliciousConfig::default()
    }
    .generate()
    .dataset;

    let config = EngineConfig::in_memory(11);
    let mut engine = ITagEngine::new(config).expect("engine boots in memory");
    let provider = engine.register_provider("smoke").expect("provider");
    let project = engine
        .add_project(provider, ProjectSpec::demo("smoke", 60), dataset)
        .expect("project");

    let summary = engine.run(project, 60).expect("campaign runs");
    assert_eq!(summary.issued, 60);
    assert_eq!(summary.approved + summary.rejected, 60);

    let monitor = engine.monitor(project).expect("monitor");
    assert!((0.0..=1.0).contains(&monitor.quality_mean));

    // Names from every layer resolve through the prelude.
    let _ = (
        StrategyKind::FreeChoice,
        QualityMetric::default(),
        StabilityKernel::Cosine,
        TaggerBehavior::casual(),
        PlatformKind::MTurk,
        ProjectState::Running,
        (ResourceId(0), TagId(0), TaggerId(0), ProjectId(0)),
    );
}

/// The quickstart example must build and run via the same command the
/// README advertises. Uses the `cargo` that is driving this test.
#[test]
fn quickstart_example_runs_under_cargo_run() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let out = Command::new(cargo)
        .current_dir(manifest_dir)
        .args(["run", "--example", "quickstart"])
        .output()
        .expect("spawn cargo run --example quickstart");
    assert!(
        out.status.success(),
        "quickstart failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("corpus:"), "unexpected output:\n{stdout}");
    assert!(stdout.contains("strategy"), "unexpected output:\n{stdout}");
}
