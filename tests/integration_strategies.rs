//! Cross-crate integration: the Table-I / Section-IV ordering claims on
//! the synthetic Delicious corpus, end to end through model → quality →
//! strategy. These are the reproduction's headline assertions.

use itag::model::delicious::DeliciousConfig;
use itag::quality::metric::QualityMetric;
use itag::strategy::framework::{Framework, RunReport};
use itag::strategy::simenv::SimWorld;
use itag::strategy::StrategyKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BUDGET: u32 = 6_000;
const SEED: u64 = 1746;

fn corpus() -> itag::model::dataset::Dataset {
    DeliciousConfig {
        resources: 1_000,
        initial_posts: 5_000,
        eval_posts: 0,
        seed: SEED,
        ..DeliciousConfig::default()
    }
    .generate()
    .dataset
}

fn run(kind: StrategyKind, budget: u32) -> (RunReport, SimWorld) {
    let mut world = SimWorld::new(corpus(), QualityMetric::default());
    let mut strategy = kind.build();
    let mut rng = StdRng::seed_from_u64(SEED);
    let report = Framework::default().run(&mut world, strategy.as_mut(), budget, &mut rng);
    (report, world)
}

#[test]
fn every_strategy_spends_the_full_budget() {
    for kind in StrategyKind::paper_lineup(5) {
        let (report, _) = run(kind, 1_000);
        assert_eq!(report.spent, 1_000, "{} under-spent", kind.label());
        assert_eq!(
            report.allocation.iter().sum::<u32>(),
            1_000,
            "{} allocation mismatch",
            kind.label()
        );
    }
}

#[test]
fn informed_strategies_dominate_fc() {
    let (fc, _) = run(StrategyKind::FreeChoice, BUDGET);
    for kind in [
        StrategyKind::FewestPosts,
        StrategyKind::MostUnstable,
        StrategyKind::FpMu { min_posts: 5 },
        StrategyKind::Optimal,
    ] {
        let (report, _) = run(kind, BUDGET);
        assert!(
            report.improvement() > fc.improvement(),
            "{} ({:+.4}) must beat FC ({:+.4})",
            kind.label(),
            report.improvement(),
            fc.improvement()
        );
    }
}

#[test]
fn fp_is_the_best_low_post_reducer() {
    // The bar is "fewer posts than the stability window": resources whose
    // rfd is not even measurable yet. FP's bottom-up levelling clears this
    // first once the budget can lift everyone over it (B = 6000 here).
    let mut low_counts = Vec::new();
    for kind in StrategyKind::paper_lineup(5) {
        let (_, world) = run(kind, BUDGET);
        low_counts.push((kind.label(), world.count_below_posts(5)));
    }
    let fp = low_counts
        .iter()
        .find(|(l, _)| *l == "FP")
        .expect("FP present")
        .1;
    // Table I: FP's pro is exactly this counter. Ties are allowed (FP-MU
    // shares the FP phase; OPT also fills thin resources first), but no
    // strategy may do strictly better.
    for (label, count) in &low_counts {
        assert!(
            fp <= *count,
            "FP ({fp}) must minimize low-post resources vs {label} ({count})"
        );
    }
    // And FP must beat the uninformed baselines outright.
    let fc = low_counts.iter().find(|(l, _)| *l == "FC").expect("FC").1;
    let rand = low_counts
        .iter()
        .find(|(l, _)| *l == "RAND")
        .expect("RAND")
        .1;
    assert!(fp < fc && fp < rand, "FP {fp} vs FC {fc}, RAND {rand}");
}

#[test]
fn mu_maximizes_threshold_satisfaction_among_observables() {
    // τ must be a *reachable* requirement (below the level MU equalizes
    // the corpus to); with τ = 0.75 and B = 6000 MU saturates the counter.
    let tau = 0.75;
    let (_, mu_world) = run(StrategyKind::MostUnstable, BUDGET);
    let mu = mu_world.count_quality_at_least(tau);
    for kind in [StrategyKind::FreeChoice, StrategyKind::Random] {
        let (_, world) = run(kind, BUDGET);
        let other = world.count_quality_at_least(tau);
        assert!(
            mu > other,
            "MU ({mu}) must beat {} ({other}) on #q ≥ τ",
            kind.label()
        );
    }
}

#[test]
fn hybrid_is_at_least_as_good_as_its_parts() {
    let (fp, _) = run(StrategyKind::FewestPosts, BUDGET);
    let (mu, _) = run(StrategyKind::MostUnstable, BUDGET);
    let (hybrid, _) = run(StrategyKind::FpMu { min_posts: 5 }, BUDGET);
    let parts = fp.improvement().max(mu.improvement());
    assert!(
        hybrid.improvement() >= parts - 0.01,
        "FP-MU ({:+.4}) must be ≥ max(FP, MU) ({:+.4}) − ε",
        hybrid.improvement(),
        parts
    );
}

#[test]
fn opt_upper_bounds_on_the_oracle_objective() {
    // OPT plans on oracle convergence curves, so its dominance claim is on
    // the oracle metric (the paper's "optimal allocation strategy" is the
    // yardstick, not a deployable competitor).
    let (_, opt_world) = run(StrategyKind::Optimal, BUDGET);
    let opt = opt_world.oracle_mean_quality();
    for kind in [
        StrategyKind::FreeChoice,
        StrategyKind::Random,
        StrategyKind::FewestPosts,
        StrategyKind::MostUnstable,
        StrategyKind::FpMu { min_posts: 5 },
    ] {
        let (_, world) = run(kind, BUDGET);
        let other = world.oracle_mean_quality();
        assert!(
            opt >= other - 0.005,
            "OPT ({opt:.4}) must upper-bound {} ({other:.4}) on oracle quality",
            kind.label()
        );
    }
}

#[test]
fn quality_improvement_grows_with_budget() {
    let mut last = f64::MIN;
    for budget in [0u32, 1_500, 3_000, 6_000] {
        let (report, _) = run(StrategyKind::FpMu { min_posts: 5 }, budget);
        assert!(
            report.improvement() >= last - 1e-9,
            "improvement at B={budget} regressed: {} < {last}",
            report.improvement()
        );
        last = report.improvement();
    }
}

#[test]
fn runs_are_reproducible() {
    let (a, _) = run(StrategyKind::MostUnstable, 2_000);
    let (b, _) = run(StrategyKind::MostUnstable, 2_000);
    assert_eq!(a.final_quality, b.final_quality);
    assert_eq!(a.allocation, b.allocation);
    assert_eq!(a.series.len(), b.series.len());
}
