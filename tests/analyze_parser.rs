//! Golden tests for the registry-free parser and the schema-drift
//! check, driven by the fixtures in `tests/fixtures/analyze/`.
//!
//! The torture fixture exercises every token shape that has bitten a
//! hand-rolled Rust lexer — raw/byte strings, nested block comments,
//! turbofish, lifetime-vs-char disambiguation, `#[cfg(test)]` regions,
//! nested fns — and its parse is pinned to `torture.golden`. Re-bless
//! after a reviewed parser change with `ITAG_BLESS=1 cargo test --test
//! analyze_parser`.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use itag::analyze::callgraph::Workspace;
use itag::analyze::parse::parse_file;
use itag::analyze::schema;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/analyze")
        .join(name)
}

fn read(name: &str) -> String {
    std::fs::read_to_string(fixture(name)).unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

/// Deterministic dump of everything the analyses consume from a file:
/// items with owners/lines/test-flags, plus per-fn extracted facts.
fn dump(rel: &str, content: &str) -> String {
    let pf = parse_file(rel, content);
    let ws = Workspace::from_files(vec![pf.clone()]);
    let mut out = String::new();
    for c in &pf.consts {
        writeln!(out, "const {} @{}", c.name, c.line).unwrap();
    }
    for t in &pf.types {
        let parts: Vec<String> = match t.kind {
            itag::analyze::parse::TypeKind::Struct => t
                .fields
                .iter()
                .map(|f| format!("{}: {}", f.name, f.ty))
                .collect(),
            itag::analyze::parse::TypeKind::Enum => t
                .variants
                .iter()
                .map(|v| {
                    if v.fields.is_empty() {
                        v.name.clone()
                    } else {
                        format!("{}({})", v.name, v.fields.len())
                    }
                })
                .collect(),
        };
        writeln!(
            out,
            "{} {} @{}{} derives=[{}] {{ {} }}",
            t.kind,
            t.name,
            t.line,
            if t.in_test { " test" } else { "" },
            t.derives.join(","),
            parts.join(", ")
        )
        .unwrap();
    }
    for f in &ws.fns {
        let mut line = format!(
            "fn {} @{}{}",
            f.qname(),
            f.item.line,
            if f.item.in_test { " test" } else { "" }
        );
        let panics: Vec<String> = f
            .facts
            .panics
            .iter()
            .map(|p| format!("{:?}@{}", p.kind, p.line))
            .collect();
        if !panics.is_empty() {
            write!(line, " panics=[{}]", panics.join(",")).unwrap();
        }
        let locks: Vec<String> = f.facts.lock_decls.iter().map(|d| d.class.clone()).collect();
        if !locks.is_empty() {
            write!(line, " locks=[{}]", locks.join(",")).unwrap();
        }
        if !f.facts.acquisitions.is_empty() {
            write!(line, " acquires={}", f.facts.acquisitions.len()).unwrap();
        }
        out.push_str(&line);
        out.push('\n');
    }
    out
}

#[test]
fn torture_fixture_matches_golden() {
    let got = dump("crates/store/src/torture.rs", &read("torture.rs"));
    let golden_path = fixture("torture.golden");
    if std::env::var("ITAG_BLESS").as_deref() == Ok("1") {
        std::fs::write(&golden_path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&golden_path)
        .expect("torture.golden missing — run with ITAG_BLESS=1 to create it");
    assert_eq!(
        got, want,
        "parser output drifted from torture.golden — review the diff, then \
         re-bless with `ITAG_BLESS=1 cargo test --test analyze_parser`"
    );
}

#[test]
fn torture_parse_is_total_on_truncations() {
    // Chopping the fixture at any char boundary must never panic the
    // lexer or parser (totality is what lets the lint run pre-commit).
    let src = read("torture.rs");
    for cut in (0..src.len()).step_by(97) {
        if !src.is_char_boundary(cut) {
            continue;
        }
        let _ = parse_file("x.rs", &src[..cut]);
    }
}

// ----------------------------------------------------- schema drift

fn schema_files(proto: &str) -> Vec<itag::analyze::parse::ParsedFile> {
    vec![
        parse_file("crates/server/src/proto.rs", proto),
        parse_file("crates/core/src/records.rs", &read("schema/records.rs")),
        parse_file("crates/core/src/engine.rs", &read("schema/engine.rs")),
    ]
}

fn check_drift(proto_fixture: &str) -> itag::analyze::AnalysisPart {
    let dir = std::env::temp_dir().join(format!(
        "itag-analyze-drift-{}-{}",
        std::process::id(),
        proto_fixture.replace('/', "_")
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let lock = dir.join("schema.lock");
    let blessed = schema::check(
        Path::new("."),
        &schema_files(&read("schema/base_proto.rs")),
        &lock,
        true,
    );
    assert!(blessed.is_clean(), "{:?}", blessed.violations);
    let part = schema::check(
        Path::new("."),
        &schema_files(&read(proto_fixture)),
        &lock,
        false,
    );
    let _ = std::fs::remove_dir_all(&dir);
    part
}

#[test]
fn seeded_variant_reorder_is_flagged() {
    let part = check_drift("schema/reorder_proto.rs");
    assert_eq!(part.violations.len(), 1, "{:?}", part.violations);
    let msg = &part.violations[0].message;
    assert!(msg.contains("ErrorCode"), "{msg}");
    assert!(msg.contains("index 0"), "{msg}");
}

#[test]
fn seeded_append_with_bump_is_clean() {
    let part = check_drift("schema/append_proto.rs");
    assert!(part.is_clean(), "{:?}", part.violations);
    assert!(
        part.notes.iter().any(|n| n.contains("ErrorCode")),
        "compatible append should be noted: {:?}",
        part.notes
    );
}
