//! Engine-level twin of the store torture harness: WAL faults injected
//! under a *durable engine* surface as typed [`EngineError`]s (never
//! panics), classify as storage faults, and after reopening the engine
//! recovers to exactly the state a fault-free twin reaches by replaying
//! the acknowledged operations.
//!
//! This binary arms the process-global fault plan; every test here must
//! arm (see `crates/store/tests/fault_torture.rs` for the isolation
//! rule).

#![cfg(feature = "faults")]

use itag_core::config::{EngineConfig, StorageConfig};
use itag_core::engine::ITagEngine;
use itag_core::project::ProjectSpec;
use itag_core::EngineError;
use itag_model::delicious::DeliciousConfig;
use itag_store::faults::{self, FaultKind, FaultPlan, FaultSpec, Trigger};
use itag_store::testutil::TestDir;

const SEED: u64 = 0x1CDE;

/// Strict durability so an `Ok` from the engine means the operation is
/// on disk — that is what makes the replay twin exact.
fn config(dir: &std::path::Path) -> EngineConfig {
    EngineConfig {
        seed: SEED,
        storage: StorageConfig::Durable {
            dir: dir.to_path_buf(),
            durability: itag_store::Durability::Sync,
            sync_policy: itag_store::SyncPolicy::Always,
            checkpoint_every: 0,
        },
        ..EngineConfig::default()
    }
}

/// The healthy prefix both engines replay identically (same seed, same
/// calls → same persisted state; the determinism suite pins that).
fn healthy_prefix(engine: &mut ITagEngine) -> u32 {
    let provider = engine.register_provider("alice").expect("provider");
    let dataset = DeliciousConfig {
        resources: 20,
        vocab: 100,
        initial_posts: 80,
        eval_posts: 150,
        taggers: 8,
        seed: SEED,
        ..DeliciousConfig::default()
    }
    .generate()
    .dataset;
    let project = engine
        .add_project(provider, ProjectSpec::demo("torture", 40), dataset)
        .expect("project");
    engine.run(project, 25).expect("round");
    provider
}

#[test]
fn wal_fault_under_engine_is_typed_and_recovery_matches_replay_twin() {
    let dir = TestDir::new("engine-torture");
    let mut engine = ITagEngine::new(config(dir.path())).expect("engine");
    healthy_prefix(&mut engine);

    // Arm: every WAL append from here on fails. The next write-path
    // operation must fail with a typed storage fault.
    let guard = faults::arm(&FaultPlan::new().site(
        faults::WAL_APPEND,
        FaultSpec::new(FaultKind::Eio, Trigger::After(0)),
    ));
    let err = engine
        .register_provider("bob")
        .expect_err("registration over a failing WAL must error");
    assert!(
        matches!(err, EngineError::Store(_)),
        "untyped error {err:?}"
    );
    assert!(
        err.is_storage_fault(),
        "{err} should classify as a storage fault"
    );
    assert!(guard.fired(faults::WAL_APPEND) >= 1);

    // The store is now broken: later writes fail too — still typed,
    // still storage faults (this is what latches server degradation).
    let err2 = engine
        .register_provider("carol")
        .expect_err("broken store must keep refusing writes");
    assert!(
        err2.is_storage_fault(),
        "{err2} should classify as a storage fault"
    );

    drop(guard);
    drop(engine);

    // Reopen: the engine recovers, and its persisted state equals a
    // fault-free twin that replays exactly the acknowledged operations.
    let recovered = ITagEngine::new(config(dir.path())).expect("reopen after fault");
    let twin_dir = TestDir::new("engine-torture-twin");
    let mut twin = ITagEngine::new(config(twin_dir.path())).expect("twin");
    healthy_prefix(&mut twin);
    assert_eq!(
        recovered.store_checksum(),
        twin.store_checksum(),
        "recovered engine diverged from the acknowledged-operations twin"
    );

    // And the healed engine accepts writes again.
    let mut recovered = recovered;
    recovered
        .register_provider("dave")
        .expect("healed engine rejects writes");
}

/// Strict-durability config with cross-project group commits enabled:
/// one WAL frame carries several projects' merge batches.
fn batched_config(dir: &std::path::Path) -> EngineConfig {
    EngineConfig {
        commit_batch: Some(8),
        ..config(dir)
    }
}

/// Multi-project prefix for the group-commit torture legs: three
/// campaigns whose round merges share a group commit (budget 8 > 3).
fn batched_prefix(engine: &mut ITagEngine) {
    let provider = engine.register_provider("alice").expect("provider");
    for i in 0..3u64 {
        let dataset = DeliciousConfig {
            resources: 15,
            vocab: 80,
            initial_posts: 60,
            eval_posts: 100,
            taggers: 8,
            seed: SEED + i,
            ..DeliciousConfig::default()
        }
        .generate()
        .dataset;
        engine
            .add_project(
                provider,
                ProjectSpec::demo(&format!("batch-{i}"), 40),
                dataset,
            )
            .expect("project");
    }
    engine.run_all_with(20, 1, 0).expect("round");
}

/// A WAL fault during a *batched* group commit fails the whole group —
/// every member's round is a typed storage fault, none is half-applied —
/// and the reopened engine equals a fault-free twin that replays only
/// the acknowledged prefix.
#[test]
fn group_commit_fault_fails_the_whole_group_and_recovers_to_prefix() {
    let dir = TestDir::new("engine-group-fault");
    let mut engine = ITagEngine::new(batched_config(dir.path())).expect("engine");
    batched_prefix(&mut engine);

    let guard = faults::arm(&FaultPlan::new().site(
        faults::WAL_APPEND,
        FaultSpec::new(FaultKind::Eio, Trigger::After(0)),
    ));
    let err = engine
        .run_all_with(20, 1, 0)
        .expect_err("a round over a failing WAL must error");
    assert!(
        err.is_storage_fault(),
        "{err} should classify as a storage fault"
    );
    assert!(guard.fired(faults::WAL_APPEND) >= 1);
    drop(guard);
    drop(engine);

    // The failed group was all-or-nothing: recovery lands exactly on the
    // acknowledged prefix, digest-equal to a fault-free twin.
    let recovered = ITagEngine::new(batched_config(dir.path())).expect("reopen");
    let twin_dir = TestDir::new("engine-group-fault-twin");
    let mut twin = ITagEngine::new(batched_config(twin_dir.path())).expect("twin");
    batched_prefix(&mut twin);
    assert_eq!(
        recovered.store_checksum(),
        twin.store_checksum(),
        "recovered engine diverged from the acknowledged-prefix twin"
    );

    // Healed: the next batched round goes through.
    let mut recovered = recovered;
    recovered
        .run_all_with(20, 1, 0)
        .expect("healed engine must run batched rounds again");
}

/// Power loss mid-batched-frame: the WAL swallows bytes partway through
/// a group commit's frame. Recovery must be atomic at group-commit
/// granularity — the reopened store equals the twin *before* the torn
/// round or the twin *after* it, never a state in between where some
/// group members' merges survived and others vanished.
#[test]
fn crash_mid_batched_group_frame_recovers_atomically() {
    let dir = TestDir::new("engine-group-crash");
    let mut engine = ITagEngine::new(batched_config(dir.path())).expect("engine");
    batched_prefix(&mut engine);

    let guard = faults::arm(&FaultPlan::new().site(
        faults::WAL_APPEND,
        FaultSpec::new(FaultKind::Crash(4_000), Trigger::Once),
    ));
    // Past the crash offset this round's group frame is torn; the engine
    // may or may not notice before power loss.
    let _ = engine.run_all_with(20, 1, 0);
    drop(engine);
    assert!(
        guard.fired(faults::WAL_APPEND) >= 1,
        "crash offset was never reached; the round wrote fewer WAL bytes than expected"
    );
    drop(guard);

    let recovered = ITagEngine::new(batched_config(dir.path())).expect("reopen after crash");

    let twin_before_dir = TestDir::new("engine-group-crash-twin-before");
    let mut twin_before = ITagEngine::new(batched_config(twin_before_dir.path())).expect("twin");
    batched_prefix(&mut twin_before);
    let before = twin_before.store_checksum();
    twin_before.run_all_with(20, 1, 0).expect("twin round");
    let after = twin_before.store_checksum();

    let got = recovered.store_checksum();
    assert!(
        got == before || got == after,
        "recovered state is neither the pre-round nor the post-round twin: \
         group-commit recovery tore a batch"
    );

    let mut recovered = recovered;
    recovered
        .register_provider("post-crash")
        .expect("recovered engine must accept writes");
}

/// Crash-at-offset under the engine: commits keep reporting `Ok` while
/// bytes past the offset are silently swallowed (power loss), and the
/// reopened engine must land on a consistent recovered state — no
/// panics, no corruption errors, and the store serves reads and writes.
#[test]
fn wal_crash_under_engine_recovers_consistently() {
    let dir = TestDir::new("engine-crash");
    let mut engine = ITagEngine::new(config(dir.path())).expect("engine");
    healthy_prefix(&mut engine);

    let guard = faults::arm(&FaultPlan::new().site(
        faults::WAL_APPEND,
        FaultSpec::new(FaultKind::Crash(40_000), Trigger::Once),
    ));
    // Keep writing; past the crash offset these land in the void.
    for i in 0..30 {
        let _ = engine.register_provider(&format!("t{i}"));
    }
    // Power loss: the engine dies with the fault still armed.
    drop(engine);
    drop(guard);

    let mut recovered = ITagEngine::new(config(dir.path())).expect("reopen after crash");
    recovered
        .register_provider("post-crash")
        .expect("recovered engine must accept writes");
}
