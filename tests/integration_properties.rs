//! Property-based integration tests: Algorithm-1 invariants must hold for
//! arbitrary workloads, budgets and strategies.

use itag::model::delicious::DeliciousConfig;
use itag::quality::metric::{QualityMetric, StabilityKernel};
use itag::strategy::framework::Framework;
use itag::strategy::simenv::SimWorld;
use itag::strategy::StrategyKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn strategy_kind() -> impl Strategy<Value = StrategyKind> {
    prop_oneof![
        Just(StrategyKind::FreeChoice),
        Just(StrategyKind::FreeChoicePreferential),
        Just(StrategyKind::FewestPosts),
        Just(StrategyKind::MostUnstable),
        (1u32..8).prop_map(|m| StrategyKind::FpMu { min_posts: m }),
        Just(StrategyKind::Random),
        Just(StrategyKind::Optimal),
    ]
}

fn kernel() -> impl Strategy<Value = StabilityKernel> {
    prop_oneof![
        Just(StabilityKernel::Cosine),
        Just(StabilityKernel::OneMinusTv),
        (2usize..12).prop_map(|k| StabilityKernel::TopKJaccard { k }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any corpus/strategy/budget/metric: the budget is spent exactly
    /// (informed strategies never run dry on a non-empty corpus), the
    /// allocation vector accounts for every task, qualities stay in
    /// [0, 1], and the recorded series is budget-monotone.
    #[test]
    fn algorithm1_invariants_hold_for_arbitrary_runs(
        seed in 0u64..1_000,
        resources in 20usize..120,
        posts_per_resource in 0usize..8,
        budget in 0u32..600,
        batch in 1usize..20,
        kind in strategy_kind(),
        window in 1u32..8,
        kernel in kernel(),
        noise in 0.0f64..0.5,
    ) {
        let corpus = DeliciousConfig {
            resources,
            initial_posts: resources * posts_per_resource,
            eval_posts: 0,
            seed,
            ..DeliciousConfig::default()
        }
        .generate();
        let metric = QualityMetric::Stability { window, kernel };
        let mut world = SimWorld::new(corpus.dataset, metric).with_noise(noise);
        let mut strategy = kind.build();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let report = Framework {
            batch_size: batch,
            record_every: 50,
        }
        .run(&mut world, strategy.as_mut(), budget, &mut rng);

        // Budget accounting.
        prop_assert!(report.spent <= budget);
        prop_assert_eq!(
            report.allocation.iter().sum::<u32>(),
            report.spent,
            "allocation must account for every issued task"
        );
        // OPT may stop early when no gain remains; everyone else spends
        // the full budget on a non-empty corpus.
        if !matches!(kind, StrategyKind::Optimal) {
            prop_assert_eq!(report.spent, budget);
        }

        // Quality bounds.
        prop_assert!((0.0..=1.0).contains(&report.initial_quality));
        prop_assert!((0.0..=1.0).contains(&report.final_quality));
        for point in &report.series {
            prop_assert!((0.0..=1.0).contains(&point.mean_quality));
        }

        // Series covers [0, spent] with strictly increasing budget marks.
        prop_assert_eq!(report.series.first().map(|p| p.spent), Some(0));
        prop_assert_eq!(report.series.last().map(|p| p.spent), Some(report.spent));
        prop_assert!(report.series.windows(2).all(|w| w[0].spent < w[1].spent));

        // Post counts equal initial + allocation, resource by resource.
        let initial: Vec<u32> = {
            let corpus2 = DeliciousConfig {
                resources,
                initial_posts: resources * posts_per_resource,
                eval_posts: 0,
                seed,
                ..DeliciousConfig::default()
            }
            .generate();
            corpus2.dataset.initial_counts()
        };
        for (i, (&c0, &x)) in initial.iter().zip(&report.allocation).enumerate() {
            prop_assert_eq!(world.counts()[i], c0 + x, "resource {}", i);
        }
    }

    /// Engine-path invariant: money conservation holds for arbitrary
    /// budgets and spammer mixes.
    #[test]
    fn engine_money_conservation(
        seed in 0u64..100,
        budget in 1u32..120,
        spammer_fraction in 0.0f64..0.6,
    ) {
        use itag::core::config::EngineConfig;
        use itag::core::engine::ITagEngine;
        use itag::core::project::ProjectSpec;

        let mut config = EngineConfig::in_memory(seed);
        config.spammer_fraction = spammer_fraction;
        let mut engine = ITagEngine::new(config).unwrap();
        let provider = engine.register_provider("prop").unwrap();
        let dataset = DeliciousConfig {
            resources: 30,
            initial_posts: 90,
            eval_posts: 0,
            seed,
            ..DeliciousConfig::default()
        }
        .generate()
        .dataset;
        let p = engine
            .add_project(provider, ProjectSpec::demo("prop", budget), dataset)
            .unwrap();
        let summary = engine.run(p, budget).unwrap();
        let m = engine.monitor(p).unwrap();

        prop_assert_eq!(summary.issued, budget);
        prop_assert_eq!(summary.approved + summary.rejected, budget);
        prop_assert_eq!(m.paid + m.refunded + m.escrowed, budget as u64 * 5);
        prop_assert_eq!(m.paid, m.tasks_approved * 5);
        prop_assert_eq!(m.refunded, m.tasks_rejected * 5);
        prop_assert_eq!(engine.verify_integrity(p).unwrap(), 30);
    }
}
