//! Schema-drift fixture. Stands in for crates/core/src/engine.rs.
pub const SCHEMA_VERSION: u32 = 2;
