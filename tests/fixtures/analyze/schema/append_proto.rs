//! Schema-drift fixture: one variant appended at the end plus a
//! version bump — the sanctioned wire-compatible evolution.
pub const PROTOCOL_VERSION: u32 = 3;

#[derive(Serialize, Deserialize)]
pub enum ErrorCode {
    Version,
    Malformed,
    Engine,
    Degraded,
    Throttled,
}

#[derive(Serialize, Deserialize)]
pub struct Hello {
    pub version: u32,
    pub name: String,
}
