//! Schema-drift fixture. Stands in for crates/core/src/records.rs.
#[derive(Serialize, Deserialize)]
pub struct UserRecord {
    pub id: u32,
    pub name: String,
}
