//! Schema-drift fixture: ErrorCode variants swapped — positional tags
//! now decode as each other. Must be flagged even though the version
//! was bumped.
pub const PROTOCOL_VERSION: u32 = 3;

#[derive(Serialize, Deserialize)]
pub enum ErrorCode {
    Malformed,
    Version,
    Engine,
    Degraded,
}

#[derive(Serialize, Deserialize)]
pub struct Hello {
    pub version: u32,
    pub name: String,
}
