//! Schema-drift fixture, baseline. Stands in for crates/server/src/proto.rs.
pub const PROTOCOL_VERSION: u32 = 2;

#[derive(Serialize, Deserialize)]
pub enum ErrorCode {
    Version,
    Malformed,
    Engine,
    Degraded,
}

#[derive(Serialize, Deserialize)]
pub struct Hello {
    pub version: u32,
    pub name: String,
}
