//! Parser torture fixture: every token shape that has bitten a
//! hand-rolled Rust lexer. Parsed by `tests/analyze_parser.rs` and
//! compared against `torture.golden` — this file is NOT compiled.

/* nested /* block /* comments */ nest */ to any depth */
/* a stray fn inside a comment: fn not_a_real_fn() {} */

pub const ANSWER: u32 = 42;
pub const SITE: &str = "wal.append";

/// Raw strings swallow quotes and escapes: "fn fake() {}" stays text.
pub fn raw_strings() -> &'static str {
    let _plain = "quote \" and brace } inside";
    let _raw = r"no escapes \ here";
    let _hashed = r#"embedded "quotes" and { braces }"#;
    let _double = r##"even a "# inside"##;
    let _bytes = b"\x00\xff";
    let _raw_bytes = br#"raw "bytes""#;
    r"done"
}

/// Lifetimes are not char literals: `'a` vs `'x'` vs `'\n'`.
pub fn lifetimes<'a, 'b: 'a>(x: &'a str, _y: &'b [u8]) -> &'a str {
    let _c = 'x';
    let _esc = '\n';
    let _quote = '\'';
    let _label: char = 'a';
    x
}

/// Turbofish and shift-vs-generics ambiguity.
pub fn turbofish(v: Vec<u32>) -> usize {
    let doubled = v.iter().map(|x| x << 1).collect::<Vec<u32>>();
    let nested: Vec<Vec<u8>> = Vec::<Vec<u8>>::new();
    doubled.len() + nested.len()
}

#[derive(Serialize, Deserialize, Debug)]
pub enum Wire {
    Hello { version: u32 },
    Ping,
    Payload(Vec<u8>),
}

#[derive(Serialize)]
pub struct Framed<'a> {
    pub header: &'a [u8],
    pub body: Vec<u8>,
}

pub struct Guarded {
    mu: Mutex<u64>,
}

impl Guarded {
    pub fn new() -> Self {
        Guarded {
            mu: Mutex::named("torture.mu", 0),
        }
    }

    /// Panic sites of all three kinds, plus a nested fn that must be a
    /// separate item (its body must NOT leak into `kinds`).
    pub fn kinds(&self, v: &[u8], o: Option<u8>) -> u8 {
        fn nested_helper(x: u8) -> u8 {
            x + 1
        }
        let g = self.mu.lock();
        let first = v[0];
        let _slice = &v[1..3];
        let _full = &v[..];
        drop(g);
        if first > 10 {
            panic!("boom");
        }
        nested_helper(o.unwrap())
    }
}

#[cfg(test)]
mod tests {
    /// In-test panics are exempt from reachability.
    #[test]
    fn test_only_fn() {
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(v[0], 1);
        v.get(9).unwrap();
    }
}
