//! Tier-1 gate: the repo-invariant lint must be clean.
//!
//! This is the CI hook for `itag::lint` — the same check `itag-lint`
//! runs from the command line, wired into `cargo test` so a new
//! `env::var` site, a panicking store path, a raw `std::sync` lock in a
//! shimmed crate, or a clock read inside a determinism fence fails the
//! build, not a review.

use std::path::Path;

#[test]
fn repo_invariant_lint_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = itag::lint::run(root);

    assert!(
        report.is_clean(),
        "itag-lint found {} violation(s):\n{}",
        report.violations.len(),
        report
            .violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    // The waiver list is part of the contract: exactly the two reviewed
    // shard-guard expects in the store's apply path. A waiver appearing
    // or disappearing should be a conscious change, so pin it here.
    let mut waivers: Vec<String> = report
        .waivers_used
        .iter()
        .map(|w| format!("{}:{}", w.file, w.rule))
        .collect();
    waivers.sort();
    assert_eq!(
        waivers,
        vec![
            "crates/store/src/db.rs:store-unwrap".to_string(),
            "crates/store/src/db.rs:store-unwrap".to_string(),
        ],
        "the reviewed waiver list changed — update this test deliberately"
    );
}
