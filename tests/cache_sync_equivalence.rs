//! Equivalence suite for the two new store knobs: the decoded-entity
//! cache and the WAL `SyncPolicy`. Both are throughput knobs only — this
//! file proves the engine's observable output (run summaries, monitor
//! snapshots, worker ledgers, golden quality trajectories, and the
//! content checksum over every stored table) is bit-identical with the
//! cache on or off, and that every sync policy leaves identical store
//! contents after a clean shutdown.

use itag::core::config::{EngineConfig, StorageConfig};
use itag::core::engine::{ITagEngine, RunSummary};
use itag::core::monitor::MonitorSnapshot;
use itag::core::project::ProjectSpec;
use itag::model::delicious::DeliciousConfig;
use itag::model::ids::ProjectId;
use itag::store::{Durability, SyncPolicy};

fn dataset(seed: u64) -> itag::model::dataset::Dataset {
    DeliciousConfig {
        resources: 30,
        initial_posts: 150,
        eval_posts: 0,
        seed,
        ..DeliciousConfig::default()
    }
    .generate()
    .dataset
}

/// Runs a fixed multi-campaign scenario at `threads` and returns
/// everything observable.
#[allow(clippy::type_complexity)]
fn run_scenario_on(
    mut config: EngineConfig,
    threads: usize,
) -> (
    Vec<(ProjectId, RunSummary)>,
    Vec<MonitorSnapshot>,
    Vec<Vec<(u32, u64)>>,
    u64,
) {
    config.workers = 12;
    config.spammer_fraction = 0.2; // rejections exercise the user tables
    let mut e = ITagEngine::new(config).unwrap();
    let provider = e.register_provider("equivalence").unwrap();
    let mut projects = Vec::new();
    for i in 0..4u64 {
        projects.push(
            e.add_project(
                provider,
                ProjectSpec::demo(&format!("equiv-{i}"), 120),
                dataset(0xCAC4E + i),
            )
            .unwrap(),
        );
    }
    let mut summaries = Vec::new();
    for _ in 0..2 {
        summaries.extend(e.run_all_on(60, threads).unwrap());
    }
    let monitors = projects.iter().map(|p| e.monitor(*p).unwrap()).collect();
    let balances = projects
        .iter()
        .map(|p| e.worker_balances(*p).unwrap())
        .collect();
    let checksum = e.store_checksum();
    (summaries, monitors, balances, checksum)
}

#[test]
fn entity_cache_on_and_off_are_bit_identical() {
    let seed = 0x0FF_CACE;
    let on = run_scenario_on(
        EngineConfig {
            entity_cache: true,
            ..EngineConfig::in_memory(seed)
        },
        2,
    );
    let off = run_scenario_on(
        EngineConfig {
            entity_cache: false,
            ..EngineConfig::in_memory(seed)
        },
        2,
    );
    assert_eq!(on.0, off.0, "run summaries diverged with the cache off");
    assert_eq!(
        on.1, off.1,
        "monitor snapshots (golden trajectory) diverged"
    );
    assert_eq!(on.2, off.2, "worker ledgers diverged");
    assert_eq!(on.3, off.3, "stored-table checksums diverged");
}

#[test]
fn entity_cache_equivalence_holds_at_every_thread_count() {
    // Cache-on at 1 thread vs cache-off at 2 and 8 threads: both knobs
    // varied at once must still be bit-identical.
    let base = run_scenario_on(
        EngineConfig {
            entity_cache: true,
            ..EngineConfig::in_memory(7)
        },
        1,
    );
    for threads in [2usize, 8] {
        let other = run_scenario_on(
            EngineConfig {
                entity_cache: false,
                ..EngineConfig::in_memory(7)
            },
            threads,
        );
        assert_eq!(base.0, other.0, "summaries diverged (threads={threads})");
        assert_eq!(base.1, other.1, "monitors diverged (threads={threads})");
        assert_eq!(base.3, other.3, "checksums diverged (threads={threads})");
    }
}

#[test]
fn sync_policies_leave_identical_stores_after_clean_shutdown() {
    let policies = [
        SyncPolicy::Always,
        SyncPolicy::EveryN(8),
        SyncPolicy::Batched,
    ];
    let mut checksums = Vec::new();
    let mut resumed_monitors: Vec<Vec<MonitorSnapshot>> = Vec::new();
    for (i, policy) in policies.into_iter().enumerate() {
        let dir = itag::store::testutil::TestDir::new(&format!("engine-sync-equiv-{i}"));
        let config = EngineConfig {
            storage: StorageConfig::Durable {
                dir: dir.path().to_path_buf(),
                durability: Durability::Sync,
                sync_policy: policy,
                checkpoint_every: 0,
            },
            ..EngineConfig::in_memory(0x5ECC)
        };
        let projects = {
            let mut e = ITagEngine::new(config.clone()).unwrap();
            let provider = e.register_provider("sync-equiv").unwrap();
            let mut projects = Vec::new();
            for s in 0..2u64 {
                projects.push(
                    e.add_project(
                        provider,
                        ProjectSpec::demo(&format!("sync-{s}"), 80),
                        dataset(0x5ECC + s),
                    )
                    .unwrap(),
                );
            }
            e.run_all_on(80, 2).unwrap();
            projects
            // Clean shutdown: drop without an explicit sync — every policy
            // must still leave the full committed state on disk.
        };

        let mut e = ITagEngine::new(config).unwrap();
        checksums.push(e.store_checksum());
        let mut monitors = Vec::new();
        for p in &projects {
            e.resume_project(*p).unwrap();
            monitors.push(e.monitor(*p).unwrap());
        }
        resumed_monitors.push(monitors);
    }
    assert_eq!(
        checksums[0], checksums[1],
        "Always vs EveryN(8) stores diverged after clean shutdown"
    );
    assert_eq!(
        checksums[0], checksums[2],
        "Always vs Batched stores diverged after clean shutdown"
    );
    assert_eq!(resumed_monitors[0], resumed_monitors[1]);
    assert_eq!(resumed_monitors[0], resumed_monitors[2]);
}
