//! Tier-1 gate: the four call-graph analyses must be clean on the repo.
//!
//! The CI hook for `itag::analyze` — panic-reachability, serbin schema
//! drift, static lock-order, and fault-site coverage all run exactly as
//! `itag-lint all` does, so a panic sneaking into a commit path, a
//! reordered wire enum, an unsanctioned lock order, or unguarded
//! durability I/O fails `cargo test`, not a review.
//!
//! After a reviewed schema change, re-bless the lock with
//! `ITAG_BLESS=1 cargo test --test analysis_gate` (or
//! `itag-lint schema --bless`) and commit the new `schema.lock`.

use std::collections::BTreeMap;
use std::path::Path;

#[test]
fn repo_passes_all_static_analyses() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let bless = std::env::var("ITAG_BLESS").as_deref() == Ok("1");
    let report = itag::analyze::run_all(root, bless);

    assert!(
        report.is_clean(),
        "static analysis found violation(s):\n{}",
        report
            .violations()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );

    // Sanity: the parser actually saw the workspace (an empty walk
    // would be vacuously clean).
    assert!(
        report.files_parsed > 50,
        "only {} files parsed",
        report.files_parsed
    );
    assert!(
        report.fns_analyzed > 800,
        "only {} fns analyzed",
        report.fns_analyzed
    );
}

#[test]
fn panic_path_waivers_are_pinned() {
    // The reviewed waiver surface is part of the contract: one entry
    // per function, pinned here per file so a new waiver (or a stale
    // one disappearing) is a conscious diff to this test.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let ws = itag::analyze::Workspace::load(root);
    let part = itag::analyze::panics::check(root, &ws);
    assert!(part.is_clean(), "{:?}", part.violations);

    let mut per_file: BTreeMap<String, usize> = BTreeMap::new();
    for w in &part.waivers {
        let file = w.split(':').next().unwrap_or("?").to_string();
        *per_file.entry(file).or_default() += 1;
    }
    let got: Vec<(String, usize)> = per_file.into_iter().collect();
    let want: Vec<(String, usize)> = [
        ("crates/core/src/engine.rs", 1),
        ("crates/core/src/export.rs", 1),
        ("crates/crowd/src/audience.rs", 1),
        ("crates/crowd/src/payment.rs", 2),
        ("crates/crowd/src/platform.rs", 2),
        ("crates/model/src/vocab.rs", 2),
        ("crates/model/src/zipf.rs", 2),
        ("crates/quality/src/metric.rs", 1),
        ("crates/quality/src/rfd.rs", 1),
        ("crates/server/src/frame.rs", 1),
        ("crates/store/src/codec.rs", 2),
        ("crates/store/src/db.rs", 8),
        ("crates/store/src/faults.rs", 2),
        ("crates/store/src/snapshot.rs", 1),
        ("crates/store/src/wal.rs", 1),
        ("crates/strategy/src/fc.rs", 1),
    ]
    .into_iter()
    .map(|(f, n)| (f.to_string(), n))
    .collect();
    assert_eq!(
        got, want,
        "the reviewed panic-path waiver set changed — update this test \
         (and the BUDGET in src/analyze/panics.rs) deliberately"
    );
}

#[test]
fn schema_lock_is_committed_and_current() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let lock = itag::analyze::lock_path(root);
    assert!(
        lock.exists(),
        "schema.lock missing — run `itag-lint schema --bless` and commit it"
    );
    let ws = itag::analyze::Workspace::load(root);
    let part = itag::analyze::schema::check(root, &ws.files, &lock, false);
    assert!(part.is_clean(), "{:?}", part.violations);
}
