//! Concurrency determinism suite: the parallel engine tick must be
//! bit-for-bit identical at every thread count **and every round-pipeline
//! depth**. The same multi-campaign scenario (spammers included, so the
//! reliability overlay is exercised) runs at `threads = 1, 2, 8` and
//! pipeline depths `0` (the barrier schedule), `1` and `2`; monitor
//! snapshots, per-worker ledger balances, and a digest of every stored
//! table must agree exactly.

use itag::core::config::EngineConfig;
use itag::core::engine::{ITagEngine, RunSummary};
use itag::core::monitor::MonitorSnapshot;
use itag::core::project::ProjectSpec;
use itag::model::delicious::DeliciousConfig;
use itag::model::ids::ProjectId;

fn dataset(seed: u64) -> itag::model::dataset::Dataset {
    DeliciousConfig {
        resources: 40,
        initial_posts: 200,
        eval_posts: 0,
        seed,
        ..DeliciousConfig::default()
    }
    .generate()
    .dataset
}

fn build_engine() -> (ITagEngine, Vec<ProjectId>) {
    build_engine_with(None)
}

fn build_engine_with(commit_batch: Option<usize>) -> (ITagEngine, Vec<ProjectId>) {
    let mut config = EngineConfig::in_memory(0xD17E);
    config.workers = 16;
    config.spammer_fraction = 0.25; // rejections → bans → overlay gating
    config.commit_batch = commit_batch;
    let mut e = ITagEngine::new(config).unwrap();
    let provider = e.register_provider("determinism-suite").unwrap();
    let mut projects = Vec::new();
    for i in 0..6u64 {
        projects.push(
            e.add_project(
                provider,
                ProjectSpec::demo(&format!("campaign-{i}"), 150),
                dataset(0xD17E + i),
            )
            .unwrap(),
        );
    }
    (e, projects)
}

type RoundOutput = (
    Vec<(ProjectId, RunSummary)>,
    Vec<MonitorSnapshot>,
    Vec<Vec<(u32, u64)>>,
    u64,
);

fn run_with(
    threads: usize,
    pipeline_depth: usize,
    rounds: u32,
    tasks_per_round: u32,
) -> RoundOutput {
    run_with_batch(threads, pipeline_depth, rounds, tasks_per_round, None)
}

fn run_with_batch(
    threads: usize,
    pipeline_depth: usize,
    rounds: u32,
    tasks_per_round: u32,
    commit_batch: Option<usize>,
) -> RoundOutput {
    let (mut e, projects) = build_engine_with(commit_batch);
    let mut summaries = Vec::new();
    for _ in 0..rounds {
        summaries.extend(
            e.run_all_with(tasks_per_round, threads, pipeline_depth)
                .unwrap(),
        );
    }
    let monitors = projects.iter().map(|p| e.monitor(*p).unwrap()).collect();
    let balances = projects
        .iter()
        .map(|p| e.worker_balances(*p).unwrap())
        .collect();
    let checksum = e.store_checksum();
    (summaries, monitors, balances, checksum)
}

fn assert_equal(base: &RoundOutput, other: &RoundOutput, what: &str) {
    assert_eq!(base.0, other.0, "run summaries differ: {what}");
    assert_eq!(base.1, other.1, "monitor snapshots differ: {what}");
    assert_eq!(base.2, other.2, "ledger balances differ: {what}");
    assert_eq!(base.3, other.3, "stored-table checksums differ: {what}");
}

#[test]
fn single_round_is_identical_at_1_2_and_8_threads() {
    let base = run_with(1, 0, 1, 150);
    for threads in [2usize, 8] {
        let other = run_with(threads, 0, 1, 150);
        assert_equal(&base, &other, &format!("{threads} threads, pipeline off"));
    }
}

#[test]
fn single_round_is_identical_across_pipeline_depths() {
    // Pipelining on vs off, and at depth 1 vs 2, at every thread count:
    // snapshots, ledgers and stored bytes must be bit-identical. This is
    // the round-pipeline contract — the merger overlapping later ticks
    // must be unobservable in the results.
    let base = run_with(1, 0, 1, 150);
    for threads in [1usize, 2, 8] {
        for depth in [1usize, 2] {
            let other = run_with(threads, depth, 1, 150);
            assert_equal(&base, &other, &format!("{threads} threads, depth {depth}"));
        }
    }
}

#[test]
fn multi_round_interleaving_is_identical_across_thread_counts() {
    // Several smaller rounds: reputation persisted between rounds feeds
    // the next round's reliability gate, so round boundaries must land in
    // the same places at every thread count.
    let base = run_with(1, 0, 3, 50);
    for threads in [2usize, 8] {
        let other = run_with(threads, 0, 3, 50);
        assert_equal(&base, &other, &format!("{threads} threads, pipeline off"));
    }
}

#[test]
fn multi_round_interleaving_is_identical_across_pipeline_depths() {
    // Round boundaries are where the pipeline hands its RNG streams and
    // reputation snapshots across rounds; depths 1 and 2 must land every
    // boundary in the same place the barrier schedule does.
    let base = run_with(1, 0, 3, 50);
    for threads in [2usize, 8] {
        for depth in [1usize, 2] {
            let other = run_with(threads, depth, 3, 50);
            assert_equal(&base, &other, &format!("{threads} threads, depth {depth}"));
        }
    }
}

#[test]
fn run_all_with_env_resolved_threads_matches_explicit_single_thread() {
    // `run_all()` resolves its thread count from `EngineConfig::threads`,
    // then `ITAG_THREADS`, then the machine — and its pipeline depth from
    // `EngineConfig::pipeline_depth`, then `ITAG_PIPELINE`, then the
    // default. This is the path the CI matrix (ITAG_THREADS x
    // ITAG_PIPELINE) actually exercises. Whatever it resolves to, the
    // results must equal an explicit one-thread, pipeline-off round.
    let (mut via_env, projects) = build_engine();
    let (mut explicit, _) = build_engine();
    assert!(via_env.resolved_threads() >= 1);
    let a = via_env.run_all(150).unwrap();
    let b = explicit.run_all_with(150, 1, 0).unwrap();
    assert_eq!(a, b, "env-resolved thread count changed the results");
    assert_eq!(via_env.store_checksum(), explicit.store_checksum());
    for p in &projects {
        assert_eq!(
            via_env.monitor(*p).unwrap(),
            explicit.monitor(*p).unwrap(),
            "monitor for {p:?} differs"
        );
    }
}

#[test]
fn parallel_rounds_preserve_integrity_and_money_conservation() {
    for depth in [0usize, 2] {
        let (mut e, projects) = build_engine();
        let summaries = e.run_all_with(150, 4, depth).unwrap();
        assert_eq!(summaries.len(), projects.len());
        for p in &projects {
            assert_eq!(e.verify_integrity(*p).unwrap(), 40);
            let m = e.monitor(*p).unwrap();
            assert_eq!(
                m.paid + m.refunded + m.escrowed,
                m.budget_spent as u64 * 5,
                "project {p:?} leaks money at pipeline depth {depth}"
            );
        }
    }
}

#[test]
fn sequential_and_parallel_paths_can_interleave() {
    // run() (engine-global RNG) and run_all() (per-project RNG) are
    // different streams by design, but mixing them must keep every
    // invariant: budgets, integrity, and the ability to finish a project
    // either way.
    let (mut e, projects) = build_engine();
    let first = projects[0];
    let s = e.run(first, 30).unwrap();
    assert_eq!(s.issued, 30);
    let summaries = e.run_all_on(40, 3).unwrap();
    assert_eq!(summaries.len(), projects.len());
    let (_, s0) = summaries[0];
    assert_eq!(s0.issued, 40);
    let m = e.monitor(first).unwrap();
    assert_eq!(m.budget_spent, 70);
    for p in &projects {
        assert_eq!(e.verify_integrity(*p).unwrap(), 40);
    }
}

#[test]
fn group_commit_batching_is_identical_to_per_project_commits() {
    // The cross-project group commit (EngineConfig::commit_batch) folds
    // several projects' merge frames into one store commit. It is a
    // throughput knob only: summaries, monitors, ledgers, and the stored
    // bytes must be bit-identical to the per-project legacy schedule at
    // every thread count and pipeline depth. `0` is the documented alias
    // for `1`.
    let base = run_with_batch(1, 0, 2, 60, Some(1));
    let zero = run_with_batch(2, 0, 2, 60, Some(0));
    assert_equal(&base, &zero, "commit_batch 0 (legacy alias)");
    for threads in [1usize, 2, 8] {
        for depth in [0usize, 2] {
            let other = run_with_batch(threads, depth, 2, 60, Some(8));
            assert_equal(
                &base,
                &other,
                &format!("commit_batch 8, {threads} threads, depth {depth}"),
            );
        }
    }
}

#[test]
fn group_commit_batching_cuts_fsyncs_per_round() {
    // The point of the batching: with 6 projects and budget 8, a round's
    // merges land in ⌈6/8⌉ = 1 group commit instead of 6 — fewer WAL
    // syncs for the same bytes. Measured on durable stores so the syncs
    // are real, and the recovered stores must still be byte-identical.
    let mut syncs = Vec::new();
    let mut checksums = Vec::new();
    for (tag, batch) in [("per-project", 1usize), ("batched", 8)] {
        let dir = itag::store::testutil::TestDir::new(&format!("det-batch-{tag}"));
        {
            let mut config = EngineConfig::durable(0xD17E, dir.path().to_path_buf());
            // `durable()` defaults to buffered WAL writes (no fsyncs at
            // all); force one fsync per commit group so the counter
            // actually measures commits.
            config.storage = itag::core::config::StorageConfig::Durable {
                dir: dir.path().to_path_buf(),
                durability: itag::store::Durability::Sync,
                sync_policy: itag::store::SyncPolicy::Always,
                checkpoint_every: 10_000,
            };
            config.workers = 16;
            config.spammer_fraction = 0.25;
            config.commit_batch = Some(batch);
            let mut e = ITagEngine::new(config).unwrap();
            let provider = e.register_provider("determinism-suite").unwrap();
            for i in 0..6u64 {
                e.add_project(
                    provider,
                    ProjectSpec::demo(&format!("campaign-{i}"), 100),
                    dataset(0xD17E + i),
                )
                .unwrap();
            }
            let before = e.store_handle().stats().wal_syncs;
            e.run_all_with(50, 4, 1).unwrap();
            syncs.push(e.store_handle().stats().wal_syncs - before);
            e.checkpoint().unwrap();
        }
        let reopened =
            ITagEngine::new(EngineConfig::durable(0xD17E, dir.path().to_path_buf())).unwrap();
        checksums.push(reopened.store_checksum());
    }
    assert_eq!(
        checksums[0], checksums[1],
        "batching changed the durable bytes"
    );
    assert!(
        syncs[1] < syncs[0],
        "batched round should sync less: per-project {} vs batched {}",
        syncs[0],
        syncs[1]
    );
}

#[test]
fn durable_store_bytes_are_identical_across_pipeline_depths() {
    // The strongest form of the contract: the WAL frames the merger
    // commits land in the same order with pipelining on and off, so two
    // durable engines running the same rounds produce byte-identical
    // recovered stores.
    let mut checksums = Vec::new();
    for depth in [0usize, 1, 2] {
        let dir = itag::store::testutil::TestDir::new(&format!("det-pipeline-{depth}"));
        {
            let mut config = EngineConfig::durable(0xD17E, dir.path().to_path_buf());
            config.workers = 16;
            config.spammer_fraction = 0.25;
            let mut e = ITagEngine::new(config).unwrap();
            let provider = e.register_provider("determinism-suite").unwrap();
            for i in 0..3u64 {
                e.add_project(
                    provider,
                    ProjectSpec::demo(&format!("campaign-{i}"), 100),
                    dataset(0xD17E + i),
                )
                .unwrap();
            }
            e.run_all_with(100, 4, depth).unwrap();
            e.checkpoint().unwrap();
        }
        let reopened =
            ITagEngine::new(EngineConfig::durable(0xD17E, dir.path().to_path_buf())).unwrap();
        checksums.push(reopened.store_checksum());
    }
    assert_eq!(checksums[0], checksums[1], "depth 0 vs 1 diverged on disk");
    assert_eq!(checksums[0], checksums[2], "depth 0 vs 2 diverged on disk");
}
