//! Cross-crate integration: a full campaign through the engine — the
//! system path with platform, approvals and payments — and durability
//! across an engine restart.

use itag::core::config::EngineConfig;
use itag::core::engine::ITagEngine;
use itag::core::monitor::SortKey;
use itag::core::project::ProjectSpec;
use itag::model::delicious::DeliciousConfig;
use itag::store::testutil::TestDir;
use itag::strategy::StrategyKind;

fn dataset(seed: u64, n: usize) -> itag::model::dataset::Dataset {
    DeliciousConfig {
        resources: n,
        initial_posts: n * 5,
        eval_posts: 0,
        seed,
        ..DeliciousConfig::default()
    }
    .generate()
    .dataset
}

#[test]
fn campaign_end_to_end_with_monitoring() {
    let mut engine = ITagEngine::new(EngineConfig::in_memory(0x11)).unwrap();
    let provider = engine.register_provider("it-test").unwrap();
    let project = engine
        .add_project(
            provider,
            ProjectSpec::demo("e2e", 1_200),
            dataset(0x11, 300),
        )
        .unwrap();

    let q0 = engine.monitor(project).unwrap().quality_mean;
    let mut improvements = Vec::new();
    for _ in 0..3 {
        let summary = engine.run(project, 400).unwrap();
        assert_eq!(summary.issued, 400);
        improvements.push(summary.improvement);
    }
    assert!(
        improvements.windows(2).all(|w| w[1] >= w[0] - 1e-9),
        "improvement must be cumulative across runs: {improvements:?}"
    );

    let mut m = engine.monitor(project).unwrap();
    assert_eq!(m.budget_spent, 1_200);
    assert_eq!(m.state, "completed");
    assert!(m.quality_mean > q0);
    assert_eq!(m.tasks_approved + m.tasks_rejected, 1_200);
    // Budget × pay is fully accounted.
    assert_eq!(m.paid + m.refunded + m.escrowed, 1_200 * 5);

    // Sorted monitoring views stay consistent with each other.
    m.sort_rows(SortKey::PostsAsc);
    let min_posts_row = m.rows.first().unwrap().posts;
    assert!(m.rows.iter().all(|r| r.posts >= min_posts_row));

    // The quality series the provider watches is non-trivial and ends at
    // the final spend.
    assert!(m.series.len() >= 3);
    assert_eq!(m.series.last().unwrap().spent, 1_200);
}

#[test]
fn engine_and_simulator_agree_on_direction() {
    // The system path (approvals, noise, latency) and the pure simulator
    // must agree on the paper's core claim: informed allocation beats FC.
    let run_engine = |kind: StrategyKind| -> f64 {
        let mut engine = ITagEngine::new(EngineConfig::in_memory(0x22)).unwrap();
        let provider = engine.register_provider("dir").unwrap();
        let mut spec = ProjectSpec::demo("dir", 1_500);
        spec.strategy = kind;
        let p = engine
            .add_project(provider, spec, dataset(0x22, 300))
            .unwrap();
        engine.run(p, 1_500).unwrap().improvement
    };
    let fc = run_engine(StrategyKind::FreeChoice);
    let hybrid = run_engine(StrategyKind::FpMu { min_posts: 5 });
    assert!(
        hybrid > fc,
        "engine path: FP-MU ({hybrid:+.4}) must beat FC ({fc:+.4})"
    );
}

#[test]
fn durable_campaign_survives_restart_and_continues() {
    let dir = TestDir::new("it-durable");
    let project;
    let quality_before;
    {
        let mut engine =
            ITagEngine::new(EngineConfig::durable(0x33, dir.path().to_path_buf())).unwrap();
        let provider = engine.register_provider("durable").unwrap();
        project = engine
            .add_project(
                provider,
                ProjectSpec::demo("restart", 800),
                dataset(0x33, 200),
            )
            .unwrap();
        engine.run(project, 400).unwrap();
        engine.checkpoint().unwrap();
        quality_before = engine.monitor(project).unwrap().quality_mean;
    }

    let mut engine =
        ITagEngine::new(EngineConfig::durable(0x33, dir.path().to_path_buf())).unwrap();
    engine.resume_project(project).unwrap();
    let m = engine.monitor(project).unwrap();
    assert!(
        (m.quality_mean - quality_before).abs() < 1e-9,
        "quality after replay {} vs before {}",
        m.quality_mean,
        quality_before
    );
    assert_eq!(m.budget_spent, 400);

    // Continue the campaign to completion on the reopened engine.
    let summary = engine.run(project, 400).unwrap();
    assert_eq!(summary.issued, 400);
    assert_eq!(engine.monitor(project).unwrap().state, "completed");
}

#[test]
fn export_roundtrips_and_matches_monitor() {
    let mut engine = ITagEngine::new(EngineConfig::in_memory(0x44)).unwrap();
    let provider = engine.register_provider("export").unwrap();
    let p = engine
        .add_project(
            provider,
            ProjectSpec::demo("export", 600),
            dataset(0x44, 150),
        )
        .unwrap();
    engine.run(p, 600).unwrap();

    let m = engine.monitor(p).unwrap();
    let export = engine.export(p).unwrap();
    assert_eq!(export.resources.len(), m.rows.len());
    for (row, exp) in m.rows.iter().zip(&export.resources) {
        assert_eq!(row.posts, exp.posts);
        assert!((row.quality - exp.quality).abs() < 1e-12);
    }

    let bytes = export.to_bytes();
    let back = itag::core::export::Export::from_bytes(&bytes).unwrap();
    assert_eq!(back, export);

    let csv = export.to_csv();
    assert_eq!(csv.lines().count(), export.resources.len() + 1);
}

#[test]
fn two_projects_are_fully_isolated() {
    let mut engine = ITagEngine::new(EngineConfig::in_memory(0x55)).unwrap();
    let provider = engine.register_provider("multi").unwrap();
    let p1 = engine
        .add_project(provider, ProjectSpec::demo("one", 500), dataset(1, 100))
        .unwrap();
    let p2 = engine
        .add_project(provider, ProjectSpec::demo("two", 500), dataset(2, 120))
        .unwrap();

    engine.run(p1, 500).unwrap();
    let m1 = engine.monitor(p1).unwrap();
    let m2 = engine.monitor(p2).unwrap();
    assert_eq!(m1.budget_spent, 500);
    assert_eq!(m2.budget_spent, 0, "project two must be untouched");
    assert_eq!(m1.rows.len(), 100);
    assert_eq!(m2.rows.len(), 120);

    engine.run(p2, 100).unwrap();
    assert_eq!(engine.monitor(p2).unwrap().budget_spent, 100);
    assert_eq!(engine.monitor(p1).unwrap().budget_spent, 500);
}
