//! Wire framing: one frame = a LEB128 length prefix followed by that many
//! bytes of `serbin` payload.
//!
//! The reader applies the same discipline as `serbin::read_len`: the
//! declared length is validated against the frame cap *before* any
//! payload buffer is allocated, so a corrupt or hostile length prefix
//! costs ten bytes of varint parsing, never an allocation. Partial input
//! is first-class — the reader is a resumable state machine, so a socket
//! read timeout ([`ReadOutcome::TimedOut`]) can be used to poll a
//! shutdown flag and resume mid-frame, and a peer that disconnects
//! mid-frame yields a typed [`FrameError::Torn`] instead of a panic or a
//! silent short read.

use std::io::{ErrorKind, Read, Write};

use serde::de::DeserializeOwned;
use serde::Serialize;

/// Longest accepted varint length prefix: 10 bytes encode any `u64`; an
/// eleventh continuation byte is unconditionally garbage.
const MAX_VARINT_BYTES: usize = 10;

/// Framing failures. Every variant means the stream can no longer be
/// trusted to be frame-aligned — the session must be dropped.
#[derive(Debug)]
pub enum FrameError {
    /// Peer closed the connection mid-frame.
    Torn { got: usize, want: usize },
    /// The length prefix is not a valid varint (continuation bytes past
    /// the `u64` range).
    BadLength,
    /// The declared payload length exceeds the frame cap. Detected before
    /// allocation: the declared size never turns into a buffer.
    TooLarge { declared: u64, max: usize },
    /// Transport error other than timeout/interrupt.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Torn { got, want } => {
                write!(f, "connection closed mid-frame ({got}/{want} bytes)")
            }
            FrameError::BadLength => write!(f, "malformed frame length prefix"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "declared frame length {declared} exceeds cap {max}")
            }
            FrameError::Io(e) => write!(f, "transport: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// One step of [`FrameReader::read`].
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean end of stream on a frame boundary (no bytes of a new frame
    /// had arrived).
    Eof,
    /// The transport timed out (`WouldBlock`/`TimedOut`). Any partial
    /// frame is retained; the caller may poll its shutdown flag and call
    /// [`FrameReader::read`] again to resume.
    TimedOut,
}

enum State {
    /// Collecting the varint length prefix.
    Len {
        buf: [u8; MAX_VARINT_BYTES],
        n: usize,
    },
    /// Collecting `want` payload bytes (`buf.len()` received so far).
    Payload { buf: Vec<u8>, want: usize },
}

/// Resumable frame reader over any [`Read`].
pub struct FrameReader {
    max_frame: usize,
    state: State,
}

impl FrameReader {
    pub fn new(max_frame: usize) -> Self {
        FrameReader {
            max_frame,
            state: State::Len {
                buf: [0; MAX_VARINT_BYTES],
                n: 0,
            },
        }
    }

    /// Reads until a full frame, EOF, timeout, or error.
    // lint: allow(panic-path)
    pub fn read(&mut self, r: &mut impl Read) -> Result<ReadOutcome, FrameError> {
        let mut scratch = [0u8; 8192];
        loop {
            match &mut self.state {
                State::Len { buf, n } => {
                    // One byte at a time: the prefix is at most ten bytes
                    // and reading past it would swallow payload.
                    let mut byte = [0u8; 1];
                    match r.read(&mut byte) {
                        Ok(0) => {
                            return if *n == 0 {
                                Ok(ReadOutcome::Eof)
                            } else {
                                Err(FrameError::Torn {
                                    got: *n,
                                    want: *n + 1,
                                })
                            };
                        }
                        Ok(_) => {
                            buf[*n] = byte[0];
                            *n += 1;
                            if byte[0] & 0x80 == 0 {
                                let declared = decode_uvarint(&buf[..*n])?;
                                if declared > self.max_frame as u64 {
                                    // Reject before allocating anything.
                                    return Err(FrameError::TooLarge {
                                        declared,
                                        max: self.max_frame,
                                    });
                                }
                                self.state = State::Payload {
                                    buf: Vec::with_capacity(declared as usize),
                                    want: declared as usize,
                                };
                            } else if *n == MAX_VARINT_BYTES {
                                return Err(FrameError::BadLength);
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(e)
                            if e.kind() == ErrorKind::WouldBlock
                                || e.kind() == ErrorKind::TimedOut =>
                        {
                            return Ok(ReadOutcome::TimedOut);
                        }
                        Err(e) => return Err(FrameError::Io(e)),
                    }
                }
                State::Payload { buf, want } => {
                    if buf.len() == *want {
                        let frame = std::mem::take(buf);
                        self.state = State::Len {
                            buf: [0; MAX_VARINT_BYTES],
                            n: 0,
                        };
                        return Ok(ReadOutcome::Frame(frame));
                    }
                    let room = (*want - buf.len()).min(scratch.len());
                    match r.read(&mut scratch[..room]) {
                        Ok(0) => {
                            return Err(FrameError::Torn {
                                got: buf.len(),
                                want: *want,
                            });
                        }
                        Ok(k) => buf.extend_from_slice(&scratch[..k]),
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(e)
                            if e.kind() == ErrorKind::WouldBlock
                                || e.kind() == ErrorKind::TimedOut =>
                        {
                            return Ok(ReadOutcome::TimedOut);
                        }
                        Err(e) => return Err(FrameError::Io(e)),
                    }
                }
            }
        }
    }
}

/// Decodes a complete little-endian-base-128 varint (final byte has the
/// continuation bit clear). Rejects encodings that overflow `u64`.
fn decode_uvarint(bytes: &[u8]) -> Result<u64, FrameError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    for &b in bytes {
        let payload = (b & 0x7f) as u64;
        v |= payload
            .checked_shl(shift)
            .filter(|_| shift < 64 && (shift != 63 || payload <= 1))
            .ok_or(FrameError::BadLength)?;
        shift += 7;
    }
    Ok(v)
}

/// Serializes `value` and writes it as one frame. Fails (without writing)
/// if the encoded payload exceeds `max_frame` — the writer obeys the same
/// cap it expects peers to enforce.
pub fn write_frame<T: Serialize + ?Sized>(
    w: &mut impl Write,
    value: &T,
    max_frame: usize,
) -> Result<(), FrameError> {
    let payload = itag_store::serbin::to_bytes(value)
        .map_err(|e| FrameError::Io(std::io::Error::new(ErrorKind::InvalidData, e.to_string())))?;
    if payload.len() > max_frame {
        return Err(FrameError::TooLarge {
            declared: payload.len() as u64,
            max: max_frame,
        });
    }
    let mut prefix = Vec::with_capacity(MAX_VARINT_BYTES);
    itag_store::codec::write_uvarint(&mut prefix, payload.len() as u64);
    w.write_all(&prefix)?;
    w.write_all(&payload)?;
    w.flush()?;
    Ok(())
}

/// Decodes a frame payload produced by [`write_frame`].
pub fn decode_payload<T: DeserializeOwned>(payload: &[u8]) -> Result<T, String> {
    itag_store::serbin::from_bytes(payload).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_bytes<T: Serialize>(v: &T) -> Vec<u8> {
        let mut out = Vec::new();
        write_frame(&mut out, v, 1 << 20).unwrap();
        out
    }

    fn read_all(bytes: &[u8], max: usize) -> Result<ReadOutcome, FrameError> {
        FrameReader::new(max).read(&mut Cursor::new(bytes))
    }

    #[test]
    fn roundtrip() {
        let bytes = frame_bytes(&("hello".to_string(), 42u32));
        match read_all(&bytes, 1 << 20).unwrap() {
            ReadOutcome::Frame(p) => {
                let (s, n): (String, u32) = decode_payload(&p).unwrap();
                assert_eq!((s.as_str(), n), ("hello", 42));
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn two_frames_back_to_back() {
        let mut bytes = frame_bytes(&1u64);
        bytes.extend(frame_bytes(&2u64));
        let mut cur = Cursor::new(bytes);
        let mut fr = FrameReader::new(1 << 20);
        for want in [1u64, 2u64] {
            match fr.read(&mut cur).unwrap() {
                ReadOutcome::Frame(p) => assert_eq!(decode_payload::<u64>(&p).unwrap(), want),
                other => panic!("expected frame, got {other:?}"),
            }
        }
        assert!(matches!(fr.read(&mut cur).unwrap(), ReadOutcome::Eof));
    }

    #[test]
    fn clean_eof_between_frames() {
        assert!(matches!(read_all(&[], 64).unwrap(), ReadOutcome::Eof));
    }

    /// The serbin torn-input idiom: every proper prefix of a valid frame
    /// followed by EOF is either a clean EOF (zero bytes) or `Torn` —
    /// never a panic, never a short frame.
    #[test]
    fn cut_sweep_of_a_valid_frame_is_torn_or_eof() {
        let bytes = frame_bytes(&vec![7u8; 300]); // 2-byte varint prefix
        for cut in 0..bytes.len() {
            match read_all(&bytes[..cut], 1 << 20) {
                Ok(ReadOutcome::Eof) => assert_eq!(cut, 0),
                Err(FrameError::Torn { .. }) => assert!(cut > 0),
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        // Declares ~1 TiB; the reader must refuse at the prefix without
        // ever constructing a payload buffer.
        let mut bytes = Vec::new();
        itag_store::codec::write_uvarint(&mut bytes, 1 << 40);
        match read_all(&bytes, 1 << 20) {
            Err(FrameError::TooLarge { declared, max }) => {
                assert_eq!(declared, 1 << 40);
                assert_eq!(max, 1 << 20);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn garbage_varint_prefix_is_bad_length() {
        // Eleven continuation bytes: no u64 varint is that long.
        assert!(matches!(
            read_all(&[0xff; 11], 1 << 20),
            Err(FrameError::BadLength)
        ));
        // Ten bytes whose top byte overflows u64.
        let mut overflow = [0xffu8; 10];
        overflow[9] = 0x7f;
        assert!(matches!(
            read_all(&overflow, u32::MAX as usize),
            Err(FrameError::BadLength) | Err(FrameError::TooLarge { .. })
        ));
    }

    #[test]
    fn timeout_preserves_partial_frame_state() {
        struct Stutter {
            chunks: Vec<Vec<u8>>,
        }
        impl Read for Stutter {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                match self.chunks.first_mut() {
                    None => Ok(0),
                    Some(c) if c.is_empty() => {
                        self.chunks.remove(0);
                        Err(std::io::Error::new(ErrorKind::WouldBlock, "slow"))
                    }
                    Some(c) => {
                        let n = buf.len().min(c.len());
                        buf[..n].copy_from_slice(&c[..n]);
                        c.drain(..n);
                        Ok(n)
                    }
                }
            }
        }
        let bytes = frame_bytes(&vec![9u8; 500]);
        let split = bytes.len() / 2;
        let mut r = Stutter {
            chunks: vec![bytes[..split].to_vec(), bytes[split..].to_vec()],
        };
        let mut fr = FrameReader::new(1 << 20);
        assert!(matches!(fr.read(&mut r).unwrap(), ReadOutcome::TimedOut));
        match fr.read(&mut r).unwrap() {
            ReadOutcome::Frame(p) => {
                assert_eq!(decode_payload::<Vec<u8>>(&p).unwrap(), vec![9u8; 500])
            }
            other => panic!("expected resumed frame, got {other:?}"),
        }
    }

    #[test]
    fn writer_refuses_frames_over_the_cap() {
        let mut out = Vec::new();
        let big = vec![0u8; 4096];
        assert!(matches!(
            write_frame(&mut out, &big, 128),
            Err(FrameError::TooLarge { .. })
        ));
        assert!(out.is_empty(), "nothing written on refusal");
    }

    use proptest::prelude::*;

    proptest! {
        /// Random bytes fed to the reader never panic: they produce a
        /// frame (which may fail to decode — that is the next layer's
        /// problem), a clean EOF, or a typed framing error.
        #[test]
        fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
            let mut fr = FrameReader::new(256);
            let mut cur = Cursor::new(bytes.as_slice());
            for _ in 0..8 {
                match fr.read(&mut cur) {
                    Ok(ReadOutcome::Frame(p)) => prop_assert!(p.len() <= 256),
                    Ok(ReadOutcome::Eof) | Ok(ReadOutcome::TimedOut) | Err(_) => break,
                }
            }
        }
    }
}
