//! A blocking client for the wire protocol — what tests, `loadgen`, and
//! a future dashboard speak. One request in flight at a time; responses
//! are matched positionally (the protocol has no request ids yet).

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use itag_core::engine::RunSummary;
use itag_core::monitor::{MonitorSnapshot, ProjectListing};
use itag_core::project::ProjectSpec;
use itag_model::ids::{ProjectId, TagId, TaggerId};

use crate::frame::{decode_payload, write_frame, FrameError, FrameReader, ReadOutcome};
use crate::proto::{DatasetSpec, OpenTask, Request, Response, WireError, PROTOCOL_VERSION};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Frame(FrameError),
    /// The response payload did not decode.
    Decode(String),
    /// The server answered with a typed protocol error.
    Server(WireError),
    /// The server shed this session (accept queue full).
    Busy,
    /// Connection ended where a response was expected.
    Closed,
    /// The response decoded but was not the kind this call expects.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Frame(e) => write!(f, "framing: {e}"),
            ClientError::Decode(m) => write!(f, "undecodable response: {m}"),
            ClientError::Server(e) => write!(f, "server refused: {e}"),
            ClientError::Busy => write!(f, "server busy (session shed)"),
            ClientError::Closed => write!(f, "connection closed mid-call"),
            ClientError::Unexpected(kind) => write!(f, "unexpected response kind (wanted {kind})"),
        }
    }
}

impl std::error::Error for ClientError {}

impl ClientError {
    /// True for failures worth retrying a fresh connection over: the
    /// server shed us (`Busy`), the connection died before or during the
    /// handshake, or the socket hit a transient-looking I/O condition.
    /// Typed server refusals, decode failures, and protocol surprises
    /// are deterministic — retrying them only repeats the mistake.
    pub fn is_transient(&self) -> bool {
        fn transient_io(e: &std::io::Error) -> bool {
            matches!(
                e.kind(),
                std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::ConnectionReset
                    | std::io::ErrorKind::ConnectionAborted
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::UnexpectedEof
            )
        }
        match self {
            ClientError::Busy | ClientError::Closed => true,
            ClientError::Io(e) => transient_io(e),
            // A connection dying mid-frame surfaces as a framing-layer
            // I/O error; it is as transient as the same error naked.
            ClientError::Frame(FrameError::Io(e)) => transient_io(e),
            ClientError::Frame(_)
            | ClientError::Decode(_)
            | ClientError::Server(_)
            | ClientError::Unexpected(_) => false,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

pub type Result<T> = std::result::Result<T, ClientError>;

/// Opt-in retry/backoff for connection establishment. The policy only
/// governs [`Client::connect_retrying`] — established sessions never
/// retry implicitly, because re-sending a non-idempotent request (fund a
/// project, submit a post) after an ambiguous failure could apply it
/// twice. Backoff is exponential with deterministic decorrelated jitter:
/// attempt `n` sleeps a duration drawn from `[d/2, d]` where
/// `d = min(cap, base * 2^n)`, using a splitmix64 stream seeded by
/// `seed` — reproducible in tests, spread out in a fleet.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total connection attempts (≥ 1); the last failure is returned.
    pub max_attempts: u32,
    /// First backoff step.
    pub base: Duration,
    /// Ceiling for a single backoff step.
    pub cap: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(20),
            cap: Duration::from_secs(1),
            seed: 0x17a6_5eed,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based: the delay after
    /// the first failure is `backoff(0)`). Pure — the caller advances
    /// `rng` between calls.
    pub fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let exp = self
            .base
            .saturating_mul(2u32.saturating_pow(attempt))
            .min(self.cap);
        let exp_ns = exp.as_nanos() as u64;
        if exp_ns == 0 {
            return Duration::ZERO;
        }
        // Jitter in [exp/2, exp] keeps a floor under the delay (pure
        // full-jitter can draw ~0 and hammer the server anyway).
        let half = exp_ns / 2;
        Duration::from_nanos(half + splitmix64(rng) % (exp_ns - half + 1))
    }
}

/// splitmix64: tiny, seedable, and good enough for jitter.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A connected session. [`Client::connect`] performs the `Hello`
/// handshake, so a constructed client is ready for typed calls.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    frames: FrameReader,
    max_frame: usize,
}

impl Client {
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        Client::connect_with(addr, 4 << 20, Duration::from_secs(30))
    }

    /// `timeout` bounds every blocking socket operation, so a wedged or
    /// shed session fails instead of hanging the caller forever.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        max_frame: usize,
        timeout: Duration,
    ) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        let read_half = stream.try_clone()?;
        let mut client = Client {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            frames: FrameReader::new(max_frame),
            max_frame,
        };
        match client.call(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::HelloOk { .. } => Ok(client),
            Response::Busy => Err(ClientError::Busy),
            Response::Error(e) => Err(ClientError::Server(e)),
            _ => Err(ClientError::Unexpected("HelloOk")),
        }
    }

    /// [`Client::connect_with`], retried under `policy` for transient
    /// failures — shed sessions (`Busy`), dropped connections, socket
    /// timeouts. Deterministic refusals (version mismatch, malformed
    /// traffic) fail immediately; the final attempt's error is returned
    /// when the budget runs out.
    pub fn connect_retrying(
        addr: impl ToSocketAddrs + Clone,
        max_frame: usize,
        timeout: Duration,
        policy: RetryPolicy,
    ) -> Result<Client> {
        let mut rng = policy.seed;
        let attempts = policy.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            match Client::connect_with(addr.clone(), max_frame, timeout) {
                Ok(client) => return Ok(client),
                Err(e) if e.is_transient() && attempt + 1 < attempts => {
                    std::thread::sleep(policy.backoff(attempt, &mut rng));
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Sends one request and reads one response.
    pub fn call(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.writer, req, self.max_frame)?;
        match self.frames.read(&mut self.reader)? {
            ReadOutcome::Frame(p) => decode_payload::<Response>(&p).map_err(ClientError::Decode),
            ReadOutcome::Eof => Err(ClientError::Closed),
            // The socket timeout is the deadline; a TimedOut here means
            // the server is still thinking past it.
            ReadOutcome::TimedOut => Err(ClientError::Closed),
        }
    }

    fn expect<T>(
        &mut self,
        req: &Request,
        kind: &'static str,
        pick: impl FnOnce(Response) -> Option<T>,
    ) -> Result<T> {
        match self.call(req)? {
            Response::Busy => Err(ClientError::Busy),
            Response::Error(e) => Err(ClientError::Server(e)),
            resp => pick(resp).ok_or(ClientError::Unexpected(kind)),
        }
    }

    pub fn ping(&mut self) -> Result<()> {
        self.expect(&Request::Ping, "Pong", |r| {
            matches!(r, Response::Pong).then_some(())
        })
    }

    pub fn register_provider(&mut self, name: &str) -> Result<u32> {
        self.expect(
            &Request::RegisterProvider { name: name.into() },
            "Registered",
            |r| match r {
                Response::Registered { id } => Some(id),
                _ => None,
            },
        )
    }

    pub fn register_tagger(&mut self, name: &str) -> Result<u32> {
        self.expect(
            &Request::RegisterTagger { name: name.into() },
            "Registered",
            |r| match r {
                Response::Registered { id } => Some(id),
                _ => None,
            },
        )
    }

    pub fn create_project(
        &mut self,
        provider: u32,
        spec: ProjectSpec,
        dataset: DatasetSpec,
        audience: bool,
    ) -> Result<ProjectId> {
        self.expect(
            &Request::CreateProject {
                provider,
                spec,
                dataset,
                audience,
            },
            "ProjectCreated",
            |r| match r {
                Response::ProjectCreated { project } => Some(project),
                _ => None,
            },
        )
    }

    pub fn publish_batch(&mut self, project: ProjectId, want: u32) -> Result<u32> {
        self.expect(
            &Request::PublishBatch { project, want },
            "Published",
            |r| match r {
                Response::Published { tasks } => Some(tasks),
                _ => None,
            },
        )
    }

    pub fn run_round(&mut self, project: ProjectId, max_tasks: u32) -> Result<RunSummary> {
        self.expect(
            &Request::RunRound { project, max_tasks },
            "RunDone",
            |r| match r {
                Response::RunDone { summary } => Some(summary),
                _ => None,
            },
        )
    }

    pub fn collect(&mut self, project: ProjectId) -> Result<(u32, u32)> {
        self.expect(&Request::Collect { project }, "Collected", |r| match r {
            Response::Collected { approved, rejected } => Some((approved, rejected)),
            _ => None,
        })
    }

    pub fn monitor(&mut self, project: ProjectId) -> Result<MonitorSnapshot> {
        self.expect(&Request::Monitor { project }, "Snapshot", |r| match r {
            Response::Snapshot(s) => Some(s),
            _ => None,
        })
    }

    pub fn monitor_table(&mut self, project: ProjectId, limit: u32) -> Result<String> {
        self.expect(
            &Request::MonitorTable { project, limit },
            "Table",
            |r| match r {
                Response::Table { rendered } => Some(rendered),
                _ => None,
            },
        )
    }

    pub fn add_budget(&mut self, project: ProjectId, extra_tasks: u32) -> Result<()> {
        self.expect(
            &Request::AddBudget {
                project,
                extra_tasks,
            },
            "Done",
            |r| matches!(r, Response::Done).then_some(()),
        )
    }

    pub fn switch_strategy(
        &mut self,
        project: ProjectId,
        strategy: itag_strategy::StrategyKind,
    ) -> Result<()> {
        self.expect(
            &Request::SwitchStrategy { project, strategy },
            "Done",
            |r| matches!(r, Response::Done).then_some(()),
        )
    }

    pub fn stop_project(&mut self, project: ProjectId) -> Result<()> {
        self.expect(&Request::StopProject { project }, "Done", |r| {
            matches!(r, Response::Done).then_some(())
        })
    }

    pub fn export_csv(&mut self, project: ProjectId) -> Result<String> {
        self.expect(&Request::ExportCsv { project }, "Csv", |r| match r {
            Response::Csv { csv } => Some(csv),
            _ => None,
        })
    }

    pub fn export_download(&mut self, project: ProjectId) -> Result<Vec<u8>> {
        self.expect(
            &Request::ExportDownload { project },
            "Download",
            |r| match r {
                Response::Download { bytes } => Some(bytes),
                _ => None,
            },
        )
    }

    pub fn browse_projects(&mut self) -> Result<Vec<ProjectListing>> {
        self.expect(&Request::BrowseProjects, "Projects", |r| match r {
            Response::Projects { listings } => Some(listings),
            _ => None,
        })
    }

    pub fn pull_tasks(&mut self, project: ProjectId, limit: u32) -> Result<Vec<OpenTask>> {
        self.expect(
            &Request::PullTasks { project, limit },
            "Tasks",
            |r| match r {
                Response::Tasks { open } => Some(open),
                _ => None,
            },
        )
    }

    pub fn submit_post(
        &mut self,
        project: ProjectId,
        task: u64,
        tagger: TaggerId,
        tags: Vec<TagId>,
    ) -> Result<()> {
        self.expect(
            &Request::SubmitPost {
                project,
                task,
                tagger,
                tags,
            },
            "Done",
            |r| matches!(r, Response::Done).then_some(()),
        )
    }

    pub fn reputation(&mut self, tagger: u32) -> Result<(f64, bool)> {
        self.expect(
            &Request::Reputation { tagger },
            "ReputationReport",
            |r| match r {
                Response::ReputationReport {
                    approval_rate,
                    reliable,
                } => Some((approval_rate, reliable)),
                _ => None,
            },
        )
    }

    pub fn checksum(&mut self) -> Result<u64> {
        self.expect(&Request::Checksum, "Checksum", |r| match r {
            Response::Checksum { digest } => Some(digest),
            _ => None,
        })
    }

    /// Ends the session cleanly.
    pub fn quit(mut self) -> Result<()> {
        match self.call(&Request::Quit)? {
            Response::Bye => Ok(()),
            _ => Err(ClientError::Unexpected("Bye")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_bounded_and_capped() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            seed: 42,
        };
        let (mut a, mut b) = (policy.seed, policy.seed);
        for attempt in 0..8 {
            let d1 = policy.backoff(attempt, &mut a);
            let d2 = policy.backoff(attempt, &mut b);
            assert_eq!(d1, d2, "same seed must give the same schedule");
            let exp = policy
                .base
                .saturating_mul(2u32.saturating_pow(attempt))
                .min(policy.cap);
            assert!(
                d1 >= exp / 2 && d1 <= exp,
                "attempt {attempt}: {d1:?} outside [{:?}, {exp:?}]",
                exp / 2
            );
        }
        // Deep attempts saturate at the cap, never overflow.
        let mut rng = 7;
        let deep = policy.backoff(1000, &mut rng);
        assert!(deep <= policy.cap && deep >= policy.cap / 2);
    }

    #[test]
    fn jitter_actually_varies_across_the_stream() {
        let policy = RetryPolicy::default();
        let mut rng = 1;
        let draws: Vec<Duration> = (0..6).map(|_| policy.backoff(3, &mut rng)).collect();
        assert!(
            draws.windows(2).any(|w| w[0] != w[1]),
            "six draws at the same attempt all equal — jitter is dead: {draws:?}"
        );
    }

    #[test]
    fn transient_classification_splits_retryable_from_deterministic() {
        assert!(ClientError::Busy.is_transient());
        assert!(ClientError::Closed.is_transient());
        assert!(ClientError::Io(std::io::ErrorKind::TimedOut.into()).is_transient());
        assert!(ClientError::Io(std::io::ErrorKind::ConnectionReset.into()).is_transient());
        assert!(!ClientError::Io(std::io::ErrorKind::PermissionDenied.into()).is_transient());
        assert!(!ClientError::Decode("junk".into()).is_transient());
        assert!(!ClientError::Unexpected("Pong").is_transient());
        assert!(!ClientError::Server(WireError::new(
            crate::proto::ErrorCode::Degraded,
            "read-only"
        ))
        .is_transient());
    }
}
