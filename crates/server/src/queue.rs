//! Bounded accept-to-worker handoff.
//!
//! The acceptor pushes fresh connections; a fixed pool of session
//! workers pops them. The queue never grows past its capacity — when it
//! is full the acceptor sheds the connection with a `Busy` response
//! instead of buffering, which is the server's back-pressure contract.
//!
//! The lock is registered with the lockcheck layer as
//! `server.session_queue`; it is never held while the engine lock
//! (`server.engine`) is held, so the server adds no edges into the
//! store's lock-order graph. The handoff protocol itself (bounded push
//! with shedding, blocking pop with shutdown wakeup) is modeled under
//! the schedule explorer in `tests/model_session_queue.rs`.

use std::collections::VecDeque;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Result of a [`SessionQueue::pop`].
#[derive(Debug)]
pub enum Pop<T> {
    Item(T),
    /// Timed out with the queue still open — poll shutdown and retry.
    Empty,
    /// The queue is closed and drained; the worker should exit.
    Closed,
}

/// A bounded MPMC queue with explicit shedding.
pub struct SessionQueue<T> {
    inner: Mutex<Inner<T>>,
    cv: Condvar,
    capacity: usize,
}

impl<T> SessionQueue<T> {
    pub fn new(capacity: usize) -> Self {
        SessionQueue {
            inner: Mutex::named(
                "server.session_queue",
                Inner {
                    items: VecDeque::with_capacity(capacity),
                    closed: false,
                },
            ),
            cv: Condvar::new(),
            capacity,
        }
    }

    /// Hands a session to the pool, or returns it to the caller when the
    /// queue is full or closed (the caller sheds it with `Busy`).
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut g = self.inner.lock();
        if g.closed || g.items.len() >= self.capacity {
            return Err(item);
        }
        g.items.push_back(item);
        drop(g);
        self.cv.notify_one();
        Ok(())
    }

    /// Blocks up to `timeout` for a session.
    pub fn pop(&self, timeout: Duration) -> Pop<T> {
        let mut g = self.inner.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Pop::Item(item);
            }
            if g.closed {
                return Pop::Closed;
            }
            if self.cv.wait_for(&mut g, timeout) {
                return Pop::Empty;
            }
        }
    }

    /// Closes the queue: queued items remain poppable, new pushes shed,
    /// and blocked workers wake to drain and exit.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.cv.notify_all();
    }

    pub fn len(&self) -> usize {
        self.inner.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TICK: Duration = Duration::from_millis(10);

    #[test]
    fn push_pop_fifo() {
        let q = SessionQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.pop(TICK), Pop::Item(1)));
        assert!(matches!(q.pop(TICK), Pop::Item(2)));
        assert!(matches!(q.pop(TICK), Pop::Empty));
    }

    #[test]
    fn full_queue_sheds() {
        let q = SessionQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(3));
        assert!(matches!(q.pop(TICK), Pop::Item(1)));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = SessionQueue::new(4);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(8), "closed queue sheds new sessions");
        assert!(matches!(q.pop(TICK), Pop::Item(7)), "queued work drains");
        assert!(matches!(q.pop(TICK), Pop::Closed));
    }

    #[test]
    fn close_wakes_blocked_workers() {
        let q = std::sync::Arc::new(SessionQueue::<u32>::new(1));
        let q2 = std::sync::Arc::clone(&q);
        let t = std::thread::spawn(move || {
            // A long timeout: only the close() wakeup can end this fast.
            matches!(q2.pop(Duration::from_secs(30)), Pop::Closed)
        });
        std::thread::sleep(Duration::from_millis(30));
        q.close();
        assert!(t.join().unwrap());
    }
}
