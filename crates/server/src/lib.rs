//! # itag-server — the networked front-end
//!
//! Turns the in-process [`itag_core::engine::ITagEngine`] into a
//! multi-tenant TCP service: providers fund, inspect, and stop campaigns
//! and download exports; taggers register, browse projects, pull tasks,
//! submit posts, and query their reputation — the screens of Figs. 3–8
//! of the iTag paper, spoken over a wire.
//!
//! Layering:
//!
//! * [`frame`] — length-prefixed `serbin` frames with the store codec's
//!   varint discipline: declared lengths are validated against the frame
//!   cap *before* allocation, torn input is a typed error, never a panic;
//! * [`proto`] — versioned request/response enums behind a `Hello`
//!   handshake;
//! * [`queue`] — the bounded accept-to-worker handoff with explicit
//!   `Busy` shedding (modeled under the schedule explorer);
//! * [`server`] — the acceptor + worker pool around one engine behind a
//!   lockcheck-registered `server.engine` mutex;
//! * [`client`] — the blocking client the tests and `loadgen` use.
//!
//! ```no_run
//! use itag_core::config::EngineConfig;
//! use itag_core::engine::ITagEngine;
//! use itag_core::project::ProjectSpec;
//! use itag_server::proto::DatasetSpec;
//! use itag_server::server::{serve, ServerConfig};
//! use itag_server::client::Client;
//!
//! let engine = ITagEngine::new(EngineConfig::in_memory(7)).unwrap();
//! let handle = serve(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut c = Client::connect(handle.addr()).unwrap();
//! let provider = c.register_provider("docs").unwrap();
//! let project = c
//!     .create_project(provider, ProjectSpec::demo("wire", 50), DatasetSpec::small(7), false)
//!     .unwrap();
//! let summary = c.run_round(project, 50).unwrap();
//! assert_eq!(summary.issued, 50);
//! c.quit().unwrap();
//!
//! let report = handle.shutdown();
//! assert_eq!(report.stats.served, 1);
//! ```

pub mod client;
pub mod frame;
pub mod proto;
pub mod queue;
pub mod server;

pub use client::{Client, ClientError, RetryPolicy};
pub use proto::{DatasetSpec, ErrorCode, Request, Response, WireError, PROTOCOL_VERSION};
pub use server::{serve, ServeStats, ServerConfig, ServerHandle, ShutdownReport};
