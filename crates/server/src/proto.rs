//! The versioned wire protocol: request/response enums covering the
//! provider screens (Figs. 3–6: create/fund/inspect/stop campaigns,
//! monitor snapshots, export download) and the tagger screens (Figs.
//! 7–8: register, browse, pull tasks, submit posts, query reputation).
//!
//! Every session starts with [`Request::Hello`]; the server refuses any
//! other first message and any unknown version, so a future v2 can
//! change payload layouts behind the same handshake. Payloads are
//! `serbin`, which is not self-describing — the version gate is what
//! keeps both sides decoding the same shapes.

use itag_core::engine::RunSummary;
use itag_core::monitor::{MonitorSnapshot, ProjectListing, ResourceDetail};
use itag_core::project::ProjectSpec;
use itag_model::dataset::Dataset;
use itag_model::delicious::DeliciousConfig;
use itag_model::ids::{ProjectId, ResourceId, TagId, TaggerId};
use itag_strategy::StrategyKind;
use serde::{Deserialize, Serialize};

/// Current protocol version; bumped on any wire-incompatible change.
///
/// v2 appended [`ErrorCode::Degraded`] — serbin enum tags are positional
/// and not self-describing, so a v1 client could not decode a frame
/// carrying the new variant; the handshake gate is what makes the
/// addition safe.
pub const PROTOCOL_VERSION: u32 = 2;

/// Dataset parameters a provider uploads with a new project. The server
/// generates the dataset deterministically from these — the same spec
/// always yields the same bytes, which is what lets a loopback session
/// be compared byte-for-byte against the same operations in-process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    pub resources: u32,
    pub vocab: u32,
    pub initial_posts: u32,
    pub eval_posts: u32,
    pub taggers: u32,
    pub seed: u64,
}

impl DatasetSpec {
    /// A small campaign corpus, sized for tests and load generation.
    pub fn small(seed: u64) -> Self {
        DatasetSpec {
            resources: 40,
            vocab: 200,
            initial_posts: 200,
            eval_posts: 400,
            taggers: 16,
            seed,
        }
    }

    /// Materializes the dataset (deterministic in the spec).
    pub fn generate(&self) -> Dataset {
        DeliciousConfig {
            resources: self.resources as usize,
            vocab: self.vocab as usize,
            initial_posts: self.initial_posts as usize,
            eval_posts: self.eval_posts as usize,
            taggers: self.taggers as usize,
            seed: self.seed,
            ..DeliciousConfig::default()
        }
        .generate()
        .dataset
    }
}

/// An open task offered to a remote tagger (Fig. 8's tagging screen).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenTask {
    pub task: u64,
    pub resource: ResourceId,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Mandatory first message of every session.
    Hello {
        version: u32,
    },
    Ping,
    // --- provider surface ---
    RegisterProvider {
        name: String,
    },
    /// `audience` selects a live [`itag_crowd::audience::ManualPlatform`]
    /// (remote taggers pull/submit) instead of the simulated marketplace.
    CreateProject {
        provider: u32,
        spec: ProjectSpec,
        dataset: DatasetSpec,
        audience: bool,
    },
    /// Publishes up to `want` tasks on an audience project.
    PublishBatch {
        project: ProjectId,
        want: u32,
    },
    /// Runs up to `max_tasks` tasks through a simulated marketplace.
    RunRound {
        project: ProjectId,
        max_tasks: u32,
    },
    /// Collects submitted audience posts through approval/payment.
    Collect {
        project: ProjectId,
    },
    Monitor {
        project: ProjectId,
    },
    /// The rendered Fig. 3 console table (top `limit` rows).
    MonitorTable {
        project: ProjectId,
        limit: u32,
    },
    ResourceDetail {
        project: ProjectId,
        resource: ResourceId,
    },
    AddBudget {
        project: ProjectId,
        extra_tasks: u32,
    },
    SwitchStrategy {
        project: ProjectId,
        strategy: StrategyKind,
    },
    StopProject {
        project: ProjectId,
    },
    ExportCsv {
        project: ProjectId,
    },
    /// The compact binary export ("download").
    ExportDownload {
        project: ProjectId,
    },
    // --- tagger surface ---
    RegisterTagger {
        name: String,
    },
    BrowseProjects,
    PullTasks {
        project: ProjectId,
        limit: u32,
    },
    SubmitPost {
        project: ProjectId,
        task: u64,
        tagger: TaggerId,
        tags: Vec<TagId>,
    },
    Reputation {
        tagger: u32,
    },
    // --- diagnostics ---
    /// Order-independent digest of the engine's persisted tables.
    Checksum,
    Quit,
}

impl Request {
    /// True for requests that mutate engine state. This is the wire
    /// protocol's read/write split: a degraded (read-only) server refuses
    /// exactly these with [`ErrorCode::Degraded`] and keeps serving the
    /// rest. Exhaustive match so a new variant is a compile error until
    /// classified.
    pub fn is_write(&self) -> bool {
        match self {
            Request::RegisterProvider { .. }
            | Request::RegisterTagger { .. }
            | Request::CreateProject { .. }
            | Request::PublishBatch { .. }
            | Request::RunRound { .. }
            | Request::Collect { .. }
            | Request::AddBudget { .. }
            | Request::SwitchStrategy { .. }
            | Request::StopProject { .. }
            | Request::SubmitPost { .. } => true,
            Request::Hello { .. }
            | Request::Ping
            | Request::Monitor { .. }
            | Request::MonitorTable { .. }
            | Request::ResourceDetail { .. }
            | Request::ExportCsv { .. }
            | Request::ExportDownload { .. }
            | Request::BrowseProjects
            | Request::PullTasks { .. }
            | Request::Reputation { .. }
            | Request::Checksum
            | Request::Quit => false,
        }
    }

    /// True for the dashboard reads the server answers from an
    /// [`itag_core::EngineSnapshot`] instead of the live engine: they
    /// never touch the engine mutex, so a long `RunRound` cannot stall a
    /// monitor screen. A strict subset of `!is_write()` — the remaining
    /// reads (`ResourceDetail`, `PullTasks`, `Reputation`, `Checksum`)
    /// stay on the engine because they serve audience-platform or
    /// diagnostic state the snapshot does not carry. Purely a routing
    /// hint; nothing on the wire changes.
    pub fn is_snapshot_read(&self) -> bool {
        matches!(
            self,
            Request::Monitor { .. }
                | Request::MonitorTable { .. }
                | Request::BrowseProjects
                | Request::ExportCsv { .. }
                | Request::ExportDownload { .. }
        )
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(clippy::large_enum_variant)] // one decoded response lives at a time
pub enum Response {
    HelloOk {
        version: u32,
    },
    Pong,
    Registered {
        id: u32,
    },
    ProjectCreated {
        project: ProjectId,
    },
    Published {
        tasks: u32,
    },
    RunDone {
        summary: RunSummary,
    },
    Collected {
        approved: u32,
        rejected: u32,
    },
    Snapshot(MonitorSnapshot),
    Table {
        rendered: String,
    },
    Detail(ResourceDetail),
    Projects {
        listings: Vec<ProjectListing>,
    },
    Tasks {
        open: Vec<OpenTask>,
    },
    ReputationReport {
        approval_rate: f64,
        reliable: bool,
    },
    Csv {
        csv: String,
    },
    Download {
        bytes: Vec<u8>,
    },
    Checksum {
        digest: u64,
    },
    /// Generic acknowledgement for state-changing requests with no
    /// payload to return.
    Done,
    Bye,
    /// Sent (followed by a close) when the accept queue is full — the
    /// load-shedding contract: the server refuses loudly instead of
    /// buffering without bound.
    Busy,
    Error(WireError),
}

/// Why a request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCode {
    /// Handshake spoke an unknown protocol version (or skipped `Hello`).
    Version,
    /// The frame decoded to no known request shape.
    Malformed,
    /// The engine rejected the operation (unknown project, bad state,
    /// budget overflow, …). The session stays usable.
    Engine,
    /// The server is in read-only degradation after a storage fault on
    /// the write path: reads keep serving, writes are refused until an
    /// operator restarts (or explicitly clears) the server. Appended in
    /// protocol v2 — new codes go at the end, serbin tags are positional.
    Degraded,
}

/// A typed protocol error; `message` is advisory, `code` is contractual.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    pub code: ErrorCode,
    pub message: String,
}

impl WireError {
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_serbin() {
        let reqs = vec![
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::CreateProject {
                provider: 3,
                spec: ProjectSpec::demo("wire", 60),
                dataset: DatasetSpec::small(9),
                audience: true,
            },
            Request::SubmitPost {
                project: ProjectId(1),
                task: 7,
                tagger: TaggerId(2),
                tags: vec![TagId(5), TagId(9)],
            },
            Request::Quit,
        ];
        for r in reqs {
            let bytes = itag_store::serbin::to_bytes(&r).unwrap();
            let back: Request = itag_store::serbin::from_bytes(&bytes).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn responses_roundtrip_through_serbin() {
        let resps = vec![
            Response::HelloOk {
                version: PROTOCOL_VERSION,
            },
            Response::Tasks {
                open: vec![OpenTask {
                    task: 4,
                    resource: ResourceId(11),
                }],
            },
            Response::Busy,
            Response::Error(WireError::new(ErrorCode::Malformed, "nope")),
        ];
        for r in resps {
            let bytes = itag_store::serbin::to_bytes(&r).unwrap();
            let back: Response = itag_store::serbin::from_bytes(&bytes).unwrap();
            assert_eq!(back, r);
        }
    }

    #[test]
    fn dataset_spec_is_deterministic() {
        let a = DatasetSpec::small(42).generate();
        let b = DatasetSpec::small(42).generate();
        assert_eq!(a.resources.len(), b.resources.len());
        assert_eq!(a.initial_posts, b.initial_posts);
        let c = DatasetSpec::small(43).generate();
        assert!(
            itag_store::serbin::to_bytes(&a).unwrap() == itag_store::serbin::to_bytes(&b).unwrap()
        );
        assert!(
            itag_store::serbin::to_bytes(&a).unwrap() != itag_store::serbin::to_bytes(&c).unwrap()
        );
    }
}
