//! The serving loop: one acceptor, a fixed worker pool, one engine.
//!
//! Sessions are whole-connection units of work: the acceptor hands each
//! fresh `TcpStream` to the pool through the bounded [`SessionQueue`],
//! shedding with [`Response::Busy`] when the queue is full, and a worker
//! serves the connection's frames until `Quit`, disconnect, or a framing
//! violation. The engine sits behind one `server.engine` lock (lockcheck
//! class) acquired per request — never across a socket read or write, so
//! a slow client cannot hold the engine hostage.
//!
//! # Snapshot reads
//!
//! Dashboard verbs ([`Request::is_snapshot_read`]: monitor, table,
//! browse, export) skip the engine mutex entirely: they run against an
//! [`EngineSnapshot`] held in an epoch-keyed cache
//! (`server.snapshot_cache`), re-captured only when the store's commit
//! epoch has advanced and served stale (bounded by one pipeline flush)
//! when the engine is mid-round. Serialization and socket writes happen
//! on the `Arc`'d snapshot after every lock is dropped, so a slow
//! dashboard client costs the write path nothing. The answers are
//! *identical* to engine dispatch at the same epoch — that equivalence
//! is the `itag_core::snapshot` contract, enforced by its pin tests and
//! the loopback byte-identity suite. `ITAG_SNAPSHOT_READS=0` (or
//! [`ServerConfig::snapshot_reads`]) falls back to engine dispatch for
//! A/B and bisection.
//!
//! Framing errors drop the session; payload-decode errors answer
//! [`ErrorCode::Malformed`] and keep the session (frame alignment is
//! intact); engine errors answer [`ErrorCode::Engine`] and keep the
//! session. Nothing a client sends can panic the server — that contract
//! is exercised by `tests/wire_adversarial.rs`.
//!
//! # Degradation and drain
//!
//! Two resilience behaviours live here. **Read-only degradation**: when
//! the engine reports a storage fault on a write request (the store's
//! retryable `Io`/`Broken` family), the server flips a latch and from
//! then on refuses writes with [`ErrorCode::Degraded`] while reads keep
//! serving from the applied in-memory state — a half-alive server beats
//! a dead one, and the latch is visible to operators via
//! [`ServerHandle::degraded`]. **Graceful drain**: shutdown stops the
//! acceptor, lets in-flight sessions finish up to
//! [`ServerConfig::drain_deadline`], then cuts stragglers (counted in
//! [`ServeStats::drain_cut`]) — without the deadline a
//! continuously-streaming client would hold its worker, and `shutdown`'s
//! join, hostage forever. The `server.accept` / `server.session_write`
//! fault sites (see `itag_store::faults`) inject failures into both
//! paths for the torture suite.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use itag_store::{faults, Store};

use itag_core::engine::ITagEngine;
use itag_core::EngineSnapshot;
use itag_crowd::audience::ManualPlatform;
use parking_lot::{Mutex, MutexGuard};

use crate::frame::{write_frame, FrameError, FrameReader, ReadOutcome};
use crate::proto::{ErrorCode, OpenTask, Request, Response, WireError, PROTOCOL_VERSION};
use crate::queue::{Pop, SessionQueue};

/// Serving knobs. All configuration arrives through this struct (or the
/// `loadgen` CLI) — the one environment override is `ITAG_SNAPSHOT_READS`
/// for [`ServerConfig::snapshot_reads`], validated strictly at
/// [`serve`] time (garbage refuses to start rather than silently
/// defaulting).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Session workers: the concurrency ceiling for in-flight sessions.
    pub workers: usize,
    /// Accepted-but-unclaimed sessions; beyond this the acceptor sheds.
    pub queue_capacity: usize,
    /// Frame cap for both directions.
    pub max_frame: usize,
    /// Socket read timeout: how often a blocked session polls shutdown.
    pub read_timeout: Duration,
    /// Stack size for session workers (a worker keeps no deep state, so
    /// pools of ~1k workers stay cheap).
    pub worker_stack: usize,
    /// After shutdown is requested, in-flight sessions may keep serving
    /// frames for this long before being cut ([`ServeStats::drain_cut`]).
    pub drain_deadline: Duration,
    /// Sessions idle (no complete frame) longer than this are reaped
    /// ([`ServeStats::reaped_idle`]); `None` disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Serve dashboard reads ([`Request::is_snapshot_read`]) from an
    /// epoch-keyed [`EngineSnapshot`] instead of the engine mutex.
    /// `None` = the `ITAG_SNAPSHOT_READS` override, else on. Read
    /// *results* do not depend on this — snapshot reads equal live reads
    /// at the same store epoch — only whether a dashboard can stall
    /// behind a long write.
    pub snapshot_reads: Option<bool>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            queue_capacity: 64,
            max_frame: 4 << 20,
            read_timeout: Duration::from_millis(100),
            worker_stack: 512 * 1024,
            drain_deadline: Duration::from_secs(1),
            idle_timeout: None,
            snapshot_reads: None,
        }
    }
}

/// Resolves [`ServerConfig::snapshot_reads`]: explicit config wins, else
/// the `ITAG_SNAPSHOT_READS` environment override (`0/false/off` and
/// `1/true/on`; empty = unset), else on. A garbage value is a startup
/// error, not a silent default — the same strictness contract as the
/// engine's `ITAG_*` knobs.
fn resolve_snapshot_reads(cfg: &ServerConfig) -> std::io::Result<bool> {
    if let Some(on) = cfg.snapshot_reads {
        return Ok(on);
    }
    // The env read itself lives in `core::config` (the lint-sanctioned
    // home for `ITAG_*` grammar); only the posture is decided here.
    match itag_core::config::env_snapshot_reads() {
        Ok(over) => Ok(over.unwrap_or(true)),
        Err(e) => Err(std::io::Error::new(std::io::ErrorKind::InvalidInput, e)),
    }
}

/// Counters a load test asserts over.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Sessions fully served by a worker.
    pub served: u64,
    /// Sessions refused with `Busy`.
    pub shed: u64,
    /// Sessions dropped for framing violations.
    pub framing_errors: u64,
    /// Shed sessions whose best-effort `Busy` frame could not even be
    /// written — the peer saw a bare close instead of a typed refusal.
    pub shed_write_failures: u64,
    /// In-flight sessions cut because they outlived the drain deadline.
    pub drain_cut: u64,
    /// Sessions reaped for exceeding [`ServerConfig::idle_timeout`].
    pub reaped_idle: u64,
    /// Write requests refused because the server is degraded (read-only).
    pub degraded_refusals: u64,
    /// Accepted connections dropped by an injected `server.accept` fault.
    pub accept_faults: u64,
    /// Sessions cut because a response write failed (injected
    /// `server.session_write` faults and real socket errors alike).
    pub session_write_failures: u64,
    /// Worker or acceptor threads that died by panic instead of joining
    /// cleanly. Known only after shutdown; always zero before.
    pub worker_panics: u64,
    /// Snapshot reads answered from the cached capture at the current
    /// store epoch — the no-lock, no-copy fast path.
    pub snapshot_hits: u64,
    /// Snapshot reads that captured a fresh [`EngineSnapshot`] because
    /// the store epoch had advanced past the cache.
    pub snapshot_captures: u64,
    /// Snapshot reads served a stale capture because the engine mutex
    /// was busy (a round in flight): bounded staleness instead of
    /// blocking the dashboard behind the write path.
    pub snapshot_stale: u64,
}

struct Shared {
    engine: Mutex<ITagEngine>,
    /// The engine's store, shared so snapshot reads can check the commit
    /// epoch (and capture raw-store state) without the engine mutex.
    store: Arc<Store>,
    /// Epoch-keyed cache of the latest [`EngineSnapshot`]. Lock order:
    /// `server.snapshot_cache` → `server.engine` → store shards — the
    /// engine never acquires the cache, so the hierarchy is acyclic.
    snapshot_cache: Mutex<Option<Arc<EngineSnapshot>>>,
    /// Resolved [`ServerConfig::snapshot_reads`].
    snapshot_reads: bool,
    queue: SessionQueue<TcpStream>,
    stop: AtomicBool,
    /// Read-only degradation latch; see the module docs.
    degraded: AtomicBool,
    served: AtomicU64,
    shed: AtomicU64,
    framing_errors: AtomicU64,
    shed_write_failures: AtomicU64,
    drain_cut: AtomicU64,
    reaped_idle: AtomicU64,
    degraded_refusals: AtomicU64,
    accept_faults: AtomicU64,
    session_write_failures: AtomicU64,
    snapshot_hits: AtomicU64,
    snapshot_captures: AtomicU64,
    snapshot_stale: AtomicU64,
    /// When the server came up; drain deadlines are stored as offsets
    /// from this epoch so they fit an atomic.
    epoch: Instant,
    /// Millis-from-epoch at which shutdown was requested; `u64::MAX`
    /// while running. Written once (before `stop` flips) so workers can
    /// compute the drain deadline without a lock.
    stop_at_ms: AtomicU64,
    cfg: ServerConfig,
}

impl Shared {
    fn stats_now(&self) -> ServeStats {
        ServeStats {
            served: self.served.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            framing_errors: self.framing_errors.load(Ordering::Relaxed),
            shed_write_failures: self.shed_write_failures.load(Ordering::Relaxed),
            drain_cut: self.drain_cut.load(Ordering::Relaxed),
            reaped_idle: self.reaped_idle.load(Ordering::Relaxed),
            degraded_refusals: self.degraded_refusals.load(Ordering::Relaxed),
            accept_faults: self.accept_faults.load(Ordering::Relaxed),
            session_write_failures: self.session_write_failures.load(Ordering::Relaxed),
            worker_panics: 0,
            snapshot_hits: self.snapshot_hits.load(Ordering::Relaxed),
            snapshot_captures: self.snapshot_captures.load(Ordering::Relaxed),
            snapshot_stale: self.snapshot_stale.load(Ordering::Relaxed),
        }
    }

    /// The instant past which in-flight sessions are cut, once shutdown
    /// has been requested.
    fn drain_deadline(&self) -> Option<Instant> {
        let ms = self.stop_at_ms.load(Ordering::Acquire);
        (ms != u64::MAX).then(|| self.epoch + Duration::from_millis(ms) + self.cfg.drain_deadline)
    }
}

/// A running server; dropping it without [`ServerHandle::shutdown`]
/// leaks the threads, so tests and `loadgen` always shut down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

/// What [`ServerHandle::shutdown`] hands back.
pub struct ShutdownReport {
    /// The engine, returned to the caller once every worker has exited —
    /// this is what the loopback byte-identity test checksums.
    pub engine: ITagEngine,
    pub stats: ServeStats,
}

/// Binds `addr` (use port 0 for an ephemeral port) and starts serving
/// `engine`.
pub fn serve(
    engine: ITagEngine,
    addr: impl ToSocketAddrs,
    cfg: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let snapshot_reads = resolve_snapshot_reads(&cfg)?;
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    // Seed the snapshot cache before any worker exists: the first
    // dashboard request finds a capture waiting instead of racing the
    // first round for the engine mutex.
    let store = engine.store_handle();
    let seeded = snapshot_reads.then(|| Arc::new(engine.snapshot()));

    let shared = Arc::new(Shared {
        engine: Mutex::named("server.engine", engine),
        store,
        snapshot_cache: Mutex::named("server.snapshot_cache", seeded),
        snapshot_reads,
        queue: SessionQueue::new(cfg.queue_capacity),
        stop: AtomicBool::new(false),
        degraded: AtomicBool::new(false),
        served: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        framing_errors: AtomicU64::new(0),
        shed_write_failures: AtomicU64::new(0),
        drain_cut: AtomicU64::new(0),
        reaped_idle: AtomicU64::new(0),
        degraded_refusals: AtomicU64::new(0),
        accept_faults: AtomicU64::new(0),
        session_write_failures: AtomicU64::new(0),
        snapshot_hits: AtomicU64::new(0),
        snapshot_captures: AtomicU64::new(0),
        snapshot_stale: AtomicU64::new(0),
        epoch: Instant::now(),
        stop_at_ms: AtomicU64::new(u64::MAX),
        cfg: cfg.clone(),
    });

    let mut workers = Vec::with_capacity(cfg.workers);
    for i in 0..cfg.workers {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("itag-session-{i}"))
                .stack_size(cfg.worker_stack)
                .spawn(move || worker_loop(&shared))?,
        );
    }

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("itag-acceptor".into())
            .spawn(move || accept_loop(listener, &shared))?
    };

    Ok(ServerHandle {
        addr: local,
        shared,
        acceptor,
        workers,
    })
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> ServeStats {
        self.shared.stats_now()
    }

    /// True once a storage fault flipped the server read-only.
    pub fn degraded(&self) -> bool {
        self.shared.degraded.load(Ordering::SeqCst)
    }

    /// Operator override for the degradation latch: set it to take the
    /// server read-only preemptively, clear it after the storage fault
    /// is resolved out of band.
    pub fn set_degraded(&self, on: bool) {
        self.shared.degraded.store(on, Ordering::SeqCst);
    }

    /// Locks the engine and hands the guard to the caller — the test
    /// hook behind the lock-free-dashboard contract: a test parks itself
    /// on the engine mutex through this and then proves snapshot reads
    /// still answer. Holding it stalls every write and non-snapshot
    /// read, exactly like a long `RunRound` would.
    pub fn engine_guard(&self) -> MutexGuard<'_, ITagEngine> {
        self.shared.engine.lock()
    }

    /// Whether dashboard reads are being served from MVCC snapshots
    /// (the resolved [`ServerConfig::snapshot_reads`]).
    pub fn snapshot_reads(&self) -> bool {
        self.shared.snapshot_reads
    }

    /// Stops accepting, drains the pool, joins every thread, and returns
    /// the engine. Idle sessions end at their next read timeout; sessions
    /// still streaming requests may finish work until
    /// [`ServerConfig::drain_deadline`], after which they are cut.
    pub fn shutdown(self) -> ShutdownReport {
        let elapsed =
            u64::try_from(self.shared.epoch.elapsed().as_millis()).unwrap_or(u64::MAX - 1);
        // Deadline first, stop flag second: a worker that sees `stop`
        // must be able to read a real deadline.
        self.shared.stop_at_ms.store(elapsed, Ordering::Release);
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        let mut worker_panics = 0;
        if self.acceptor.join().is_err() {
            worker_panics += 1;
        }
        for w in self.workers {
            if w.join().is_err() {
                worker_panics += 1;
            }
        }
        let stats = ServeStats {
            worker_panics,
            ..self.shared.stats_now()
        };
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("all server threads joined; no other owners remain"));
        ShutdownReport {
            engine: shared.engine.into_inner(),
            stats,
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // `server.accept` fault site: an injected failure here
                // models accept()/fd-limit errors — the connection is
                // dropped on the floor (the peer sees a reset), which is
                // exactly what clients must retry through.
                if faults::check_io(faults::SERVER_ACCEPT).is_err() {
                    shared.accept_faults.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                if let Err(stream) = shared.queue.try_push(stream) {
                    shed(shared, stream);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// The load-shedding contract: a refused session gets a best-effort
/// `Busy` frame, then its connection is closed. Short write timeout so a
/// stalled peer cannot wedge the acceptor. "Best-effort" is still
/// accounted for: a refusal the peer never saw is a different outcome
/// from a typed `Busy`, and `shed_write_failures` keeps the difference
/// visible instead of silently dropping the write error.
fn shed(shared: &Shared, stream: TcpStream) {
    shared.shed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut w = BufWriter::new(stream);
    let sent =
        write_frame(&mut w, &Response::Busy, shared.cfg.max_frame).is_ok() && w.flush().is_ok();
    if !sent {
        shared.shed_write_failures.fetch_add(1, Ordering::Relaxed);
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        match shared.queue.pop(shared.cfg.read_timeout) {
            Pop::Item(stream) => {
                serve_session(shared, stream);
                shared.served.fetch_add(1, Ordering::Relaxed);
            }
            Pop::Empty => continue,
            Pop::Closed => break,
        }
    }
}

/// Outcome of one request: keep the session or end it.
enum Ctl {
    Continue,
    Close,
}

fn serve_session(shared: &Shared, stream: TcpStream) {
    if stream
        .set_read_timeout(Some(shared.cfg.read_timeout))
        .is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut frames = FrameReader::new(shared.cfg.max_frame);
    let mut helloed = false;
    let mut last_frame_at = Instant::now();

    loop {
        let payload = match frames.read(&mut reader) {
            Ok(ReadOutcome::Frame(p)) => {
                last_frame_at = Instant::now();
                p
            }
            Ok(ReadOutcome::Eof) => return,
            Ok(ReadOutcome::TimedOut) => {
                // An idle session has nothing in flight: shutdown ends it
                // at the next poll, no drain grace needed.
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(limit) = shared.cfg.idle_timeout {
                    if last_frame_at.elapsed() >= limit {
                        shared.reaped_idle.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                }
                continue;
            }
            Err(e) => {
                shared.framing_errors.fetch_add(1, Ordering::Relaxed);
                // Best-effort typed refusal; the stream is no longer
                // frame-aligned either way, so the session ends here.
                let code = match e {
                    FrameError::TooLarge { .. } | FrameError::BadLength => ErrorCode::Malformed,
                    _ => return,
                };
                let _ = write_frame(
                    &mut writer,
                    &Response::Error(WireError::new(code, e.to_string())),
                    shared.cfg.max_frame,
                );
                return;
            }
        };

        let (response, ctl) = match crate::frame::decode_payload::<Request>(&payload) {
            Err(e) => (
                Response::Error(WireError::new(
                    ErrorCode::Malformed,
                    format!("undecodable request: {e}"),
                )),
                Ctl::Continue,
            ),
            Ok(Request::Hello { version }) => {
                if version == PROTOCOL_VERSION {
                    helloed = true;
                    (
                        Response::HelloOk {
                            version: PROTOCOL_VERSION,
                        },
                        Ctl::Continue,
                    )
                } else {
                    (
                        Response::Error(WireError::new(
                            ErrorCode::Version,
                            format!(
                                "unknown protocol version {version} (speaking {PROTOCOL_VERSION})"
                            ),
                        )),
                        Ctl::Close,
                    )
                }
            }
            Ok(_) if !helloed => (
                Response::Error(WireError::new(
                    ErrorCode::Version,
                    "session must start with Hello",
                )),
                Ctl::Close,
            ),
            Ok(Request::Quit) => (Response::Bye, Ctl::Close),
            Ok(req) => (apply(shared, req), Ctl::Continue),
        };

        // `server.session_write` fault site: an injected failure models a
        // response write dying mid-session. Injected or real, a failed
        // response write cuts the session (the peer's framing is gone)
        // and is counted rather than silently swallowed.
        if faults::check_io(faults::SERVER_SESSION_WRITE).is_err()
            || write_frame(&mut writer, &response, shared.cfg.max_frame).is_err()
        {
            shared
                .session_write_failures
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
        if matches!(ctl, Ctl::Close) {
            return;
        }
        // Graceful drain: once shutdown is requested this session may
        // keep answering in-flight frames, but only until the deadline —
        // a client that never stops streaming must not stall `shutdown`'s
        // join forever.
        if shared.stop.load(Ordering::SeqCst) {
            if let Some(deadline) = shared.drain_deadline() {
                if Instant::now() >= deadline {
                    shared.drain_cut.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
    }
}

/// Executes one request against the engine. The engine lock is scoped to
/// this function — never held across socket I/O.
///
/// This is also where read-only degradation lives: a write request that
/// fails with a storage fault latches `degraded`, and every later write
/// is refused with [`ErrorCode::Degraded`] without touching the engine.
/// Reads bypass the latch entirely — they serve the applied in-memory
/// state, which a broken WAL does not invalidate.
fn apply(shared: &Shared, req: Request) -> Response {
    // Dashboard reads never touch the engine mutex: they run against an
    // epoch-keyed MVCC snapshot, so a mid-flight `RunRound` (or a client
    // that parked itself on the engine) cannot stall a monitor screen.
    if shared.snapshot_reads && req.is_snapshot_read() {
        let (snap, fresh) = current_snapshot(shared);
        match dispatch_snapshot(&snap, req.clone()) {
            Ok(resp) => return resp,
            Err(e) if fresh => {
                return Response::Error(WireError::new(ErrorCode::Engine, e.to_string()))
            }
            // A *negative* answer from a stale capture is not
            // trustworthy — the project may have been created after the
            // capture. Positive stale answers are the documented
            // staleness contract; negative ones fall through to live
            // engine dispatch below and pay the lock for the
            // authoritative answer.
            Err(_) => {}
        }
    }
    let is_write = req.is_write();
    if is_write && shared.degraded.load(Ordering::SeqCst) {
        shared.degraded_refusals.fetch_add(1, Ordering::Relaxed);
        return Response::Error(WireError::new(
            ErrorCode::Degraded,
            "server is read-only after a storage fault; writes are refused",
        ));
    }
    let mut engine = shared.engine.lock();
    let result = dispatch(&mut engine, req);
    drop(engine);
    match result {
        Ok(resp) => resp,
        Err(e) => {
            if is_write && e.is_storage_fault() {
                shared.degraded.store(true, Ordering::SeqCst);
            }
            Response::Error(WireError::new(ErrorCode::Engine, e.to_string()))
        }
    }
}

/// Returns a snapshot no older than the last *committed* store epoch at
/// some point during this call, plus whether it is *fresh* (epoch-equal
/// to the store at read time) or a stale serve. Freshness argument:
/// every engine mutation that can change a dashboard answer (rounds,
/// budget, strategy switches, registrations, stops) commits a store
/// batch and so advances the epoch — an epoch-equal cache is therefore
/// answer-equal, not merely probably fresh. When the cache is stale the
/// capture needs the engine mutex; if a round holds it, the stale
/// capture is served instead of blocking
/// ([`ServeStats::snapshot_stale`]) — the staleness is bounded by one
/// flush of the writer's pipeline, and `apply` refuses to serve
/// *negative* answers from a stale capture.
///
/// Lock order here is `server.snapshot_cache` → `server.engine` → store
/// shards; nothing acquires them in any other order.
fn current_snapshot(shared: &Shared) -> (Arc<EngineSnapshot>, bool) {
    let mut cache = shared.snapshot_cache.lock();
    let epoch = shared.store.epoch();
    if let Some(snap) = cache.as_ref() {
        if snap.epoch() == epoch {
            shared.snapshot_hits.fetch_add(1, Ordering::Relaxed);
            return (Arc::clone(snap), true);
        }
    }
    if let Some(engine) = shared.engine.try_lock() {
        let snap = Arc::new(engine.snapshot());
        drop(engine);
        shared.snapshot_captures.fetch_add(1, Ordering::Relaxed);
        *cache = Some(Arc::clone(&snap));
        return (snap, true);
    }
    if let Some(snap) = cache.as_ref() {
        shared.snapshot_stale.fetch_add(1, Ordering::Relaxed);
        return (Arc::clone(snap), false);
    }
    // No capture yet and the engine is busy — only reachable when the
    // eager seed in `serve` was skipped (snapshot reads toggled on after
    // start is impossible today, but stay total): block once.
    let snap = Arc::new(shared.engine.lock().snapshot());
    shared.snapshot_captures.fetch_add(1, Ordering::Relaxed);
    *cache = Some(Arc::clone(&snap));
    (snap, true)
}

/// The snapshot twin of [`dispatch`], covering exactly the
/// [`Request::is_snapshot_read`] verbs. Response payloads are identical
/// to engine dispatch at the same store epoch — the snapshot
/// equivalence contract (`itag_core::snapshot`) is what licenses the
/// routing split, and the loopback byte-identity test holds both paths
/// to it.
fn dispatch_snapshot(snap: &EngineSnapshot, req: Request) -> itag_core::Result<Response> {
    Ok(match req {
        Request::Monitor { project } => Response::Snapshot(snap.monitor(project)?),
        Request::MonitorTable { project, limit } => Response::Table {
            rendered: snap.render_table(project, limit as usize)?,
        },
        Request::ExportCsv { project } => Response::Csv {
            csv: snap.export(project)?.to_csv(),
        },
        Request::ExportDownload { project } => Response::Download {
            bytes: snap.export(project)?.to_bytes(),
        },
        Request::BrowseProjects => Response::Projects {
            listings: snap.browse()?,
        },
        // `apply` routes only snapshot reads here; anything else is a
        // routing bug answered as an error, never a panic (this path is
        // reachable from the wire).
        other => {
            return Err(itag_core::EngineError::Config(format!(
                "request {other:?} is not a snapshot read"
            )))
        }
    })
}

fn dispatch(engine: &mut ITagEngine, req: Request) -> itag_core::Result<Response> {
    Ok(match req {
        // Handled in the session loop; unreachable here but kept total so
        // a new Request variant is a compile error until routed.
        Request::Hello { .. } => Response::HelloOk {
            version: PROTOCOL_VERSION,
        },
        Request::Quit => Response::Bye,
        Request::Ping => Response::Pong,
        Request::RegisterProvider { name } => Response::Registered {
            id: engine.register_provider(&name)?,
        },
        Request::RegisterTagger { name } => Response::Registered {
            id: engine.register_tagger(&name)?,
        },
        Request::CreateProject {
            provider,
            spec,
            dataset,
            audience,
        } => {
            let data = dataset.generate();
            let project = if audience {
                engine.add_project_with_platform(
                    provider,
                    spec.clone(),
                    data,
                    Box::new(ManualPlatform::new(spec.platform)),
                )?
            } else {
                engine.add_project(provider, spec, data)?
            };
            Response::ProjectCreated { project }
        }
        Request::PublishBatch { project, want } => Response::Published {
            tasks: engine.publish_batch(project, want as usize)?,
        },
        Request::RunRound { project, max_tasks } => Response::RunDone {
            summary: engine.run(project, max_tasks)?,
        },
        Request::Collect { project } => {
            let (approved, rejected) = engine.collect_once(project)?;
            Response::Collected { approved, rejected }
        }
        Request::Monitor { project } => Response::Snapshot(engine.monitor(project)?),
        Request::MonitorTable { project, limit } => Response::Table {
            rendered: engine.monitor(project)?.render_table(limit as usize),
        },
        Request::ResourceDetail { project, resource } => {
            Response::Detail(engine.resource_detail(project, resource)?)
        }
        Request::AddBudget {
            project,
            extra_tasks,
        } => {
            engine.add_budget(project, extra_tasks)?;
            Response::Done
        }
        Request::SwitchStrategy { project, strategy } => {
            engine.switch_strategy(project, strategy)?;
            Response::Done
        }
        Request::StopProject { project } => {
            engine.stop_project(project)?;
            Response::Done
        }
        Request::ExportCsv { project } => Response::Csv {
            csv: engine.export(project)?.to_csv(),
        },
        Request::ExportDownload { project } => Response::Download {
            bytes: engine.export(project)?.to_bytes(),
        },
        Request::BrowseProjects => Response::Projects {
            listings: engine.browse_projects()?,
        },
        Request::PullTasks { project, limit } => Response::Tasks {
            open: engine
                .audience_open_tasks(project, limit as usize)?
                .into_iter()
                .map(|(task, resource)| OpenTask { task, resource })
                .collect(),
        },
        Request::SubmitPost {
            project,
            task,
            tagger,
            tags,
        } => {
            engine.audience_submit(project, task, tagger, tags)?;
            Response::Done
        }
        Request::Reputation { tagger } => Response::ReputationReport {
            approval_rate: engine.tagger_approval_rate(tagger)?,
            reliable: engine.is_reliable_tagger(tagger)?,
        },
        Request::Checksum => Response::Checksum {
            digest: engine.store_checksum(),
        },
    })
}

/// Applies the same operation a wire request would, directly to an
/// engine — the in-process twin used by the loopback byte-identity test
/// and kept here so server dispatch and twin dispatch cannot drift.
pub fn apply_in_process(engine: &mut ITagEngine, req: Request) -> itag_core::Result<Response> {
    dispatch(engine, req)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reads_knob_parses_strictly() {
        use itag_core::config::parse_snapshot_reads;
        assert_eq!(parse_snapshot_reads(None).unwrap(), None);
        assert_eq!(parse_snapshot_reads(Some("  ")).unwrap(), None);
        for on in ["1", "true", "on", " true "] {
            assert_eq!(parse_snapshot_reads(Some(on)).unwrap(), Some(true));
        }
        for off in ["0", "false", "off", " off "] {
            assert_eq!(parse_snapshot_reads(Some(off)).unwrap(), Some(false));
        }
        for garbage in ["yes", "2", "enabled", "-1"] {
            let err = parse_snapshot_reads(Some(garbage)).unwrap_err();
            assert!(
                err.contains("ITAG_SNAPSHOT_READS"),
                "error must name the variable: {err}"
            );
        }
    }

    #[test]
    fn explicit_config_beats_the_environment() {
        let cfg = ServerConfig {
            snapshot_reads: Some(false),
            ..ServerConfig::default()
        };
        assert!(!resolve_snapshot_reads(&cfg).unwrap());
        let cfg = ServerConfig {
            snapshot_reads: Some(true),
            ..ServerConfig::default()
        };
        assert!(resolve_snapshot_reads(&cfg).unwrap());
    }
}
