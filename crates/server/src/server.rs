//! The serving loop: one acceptor, a fixed worker pool, one engine.
//!
//! Sessions are whole-connection units of work: the acceptor hands each
//! fresh `TcpStream` to the pool through the bounded [`SessionQueue`],
//! shedding with [`Response::Busy`] when the queue is full, and a worker
//! serves the connection's frames until `Quit`, disconnect, or a framing
//! violation. The engine sits behind one `server.engine` lock (lockcheck
//! class) acquired per request — never across a socket read or write, so
//! a slow client cannot hold the engine hostage.
//!
//! Framing errors drop the session; payload-decode errors answer
//! [`ErrorCode::Malformed`] and keep the session (frame alignment is
//! intact); engine errors answer [`ErrorCode::Engine`] and keep the
//! session. Nothing a client sends can panic the server — that contract
//! is exercised by `tests/wire_adversarial.rs`.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use itag_core::engine::ITagEngine;
use itag_crowd::audience::ManualPlatform;
use parking_lot::Mutex;

use crate::frame::{write_frame, FrameError, FrameReader, ReadOutcome};
use crate::proto::{ErrorCode, OpenTask, Request, Response, WireError, PROTOCOL_VERSION};
use crate::queue::{Pop, SessionQueue};

/// Serving knobs. All configuration arrives through this struct (or the
/// `loadgen` CLI) — the server itself reads no environment variables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Session workers: the concurrency ceiling for in-flight sessions.
    pub workers: usize,
    /// Accepted-but-unclaimed sessions; beyond this the acceptor sheds.
    pub queue_capacity: usize,
    /// Frame cap for both directions.
    pub max_frame: usize,
    /// Socket read timeout: how often a blocked session polls shutdown.
    pub read_timeout: Duration,
    /// Stack size for session workers (a worker keeps no deep state, so
    /// pools of ~1k workers stay cheap).
    pub worker_stack: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            queue_capacity: 64,
            max_frame: 4 << 20,
            read_timeout: Duration::from_millis(100),
            worker_stack: 512 * 1024,
        }
    }
}

/// Counters a load test asserts over.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeStats {
    /// Sessions fully served by a worker.
    pub served: u64,
    /// Sessions refused with `Busy`.
    pub shed: u64,
    /// Sessions dropped for framing violations.
    pub framing_errors: u64,
}

struct Shared {
    engine: Mutex<ITagEngine>,
    queue: SessionQueue<TcpStream>,
    stop: AtomicBool,
    served: AtomicU64,
    shed: AtomicU64,
    framing_errors: AtomicU64,
    cfg: ServerConfig,
}

/// A running server; dropping it without [`ServerHandle::shutdown`]
/// leaks the threads, so tests and `loadgen` always shut down.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

/// What [`ServerHandle::shutdown`] hands back.
pub struct ShutdownReport {
    /// The engine, returned to the caller once every worker has exited —
    /// this is what the loopback byte-identity test checksums.
    pub engine: ITagEngine,
    pub stats: ServeStats,
}

/// Binds `addr` (use port 0 for an ephemeral port) and starts serving
/// `engine`.
pub fn serve(
    engine: ITagEngine,
    addr: impl ToSocketAddrs,
    cfg: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        engine: Mutex::named("server.engine", engine),
        queue: SessionQueue::new(cfg.queue_capacity),
        stop: AtomicBool::new(false),
        served: AtomicU64::new(0),
        shed: AtomicU64::new(0),
        framing_errors: AtomicU64::new(0),
        cfg: cfg.clone(),
    });

    let mut workers = Vec::with_capacity(cfg.workers);
    for i in 0..cfg.workers {
        let shared = Arc::clone(&shared);
        workers.push(
            std::thread::Builder::new()
                .name(format!("itag-session-{i}"))
                .stack_size(cfg.worker_stack)
                .spawn(move || worker_loop(&shared))?,
        );
    }

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("itag-acceptor".into())
            .spawn(move || accept_loop(listener, &shared))?
    };

    Ok(ServerHandle {
        addr: local,
        shared,
        acceptor,
        workers,
    })
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn stats(&self) -> ServeStats {
        ServeStats {
            served: self.shared.served.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            framing_errors: self.shared.framing_errors.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, drains the pool, joins every thread, and returns
    /// the engine. In-flight sessions are cut at their next read timeout.
    pub fn shutdown(self) -> ShutdownReport {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
        let stats = ServeStats {
            served: self.shared.served.load(Ordering::Relaxed),
            shed: self.shared.shed.load(Ordering::Relaxed),
            framing_errors: self.shared.framing_errors.load(Ordering::Relaxed),
        };
        let shared = Arc::try_unwrap(self.shared)
            .unwrap_or_else(|_| panic!("all server threads joined; no other owners remain"));
        ShutdownReport {
            engine: shared.engine.into_inner(),
            stats,
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if let Err(stream) = shared.queue.try_push(stream) {
                    shed(shared, stream);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// The load-shedding contract: a refused session gets a best-effort
/// `Busy` frame, then its connection is closed. Short write timeout so a
/// stalled peer cannot wedge the acceptor.
fn shed(shared: &Shared, stream: TcpStream) {
    shared.shed.fetch_add(1, Ordering::Relaxed);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let mut w = BufWriter::new(stream);
    let _ = write_frame(&mut w, &Response::Busy, shared.cfg.max_frame);
    let _ = w.flush();
}

fn worker_loop(shared: &Shared) {
    loop {
        match shared.queue.pop(shared.cfg.read_timeout) {
            Pop::Item(stream) => {
                serve_session(shared, stream);
                shared.served.fetch_add(1, Ordering::Relaxed);
            }
            Pop::Empty => continue,
            Pop::Closed => break,
        }
    }
}

/// Outcome of one request: keep the session or end it.
enum Ctl {
    Continue,
    Close,
}

fn serve_session(shared: &Shared, stream: TcpStream) {
    if stream
        .set_read_timeout(Some(shared.cfg.read_timeout))
        .is_err()
    {
        return;
    }
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut frames = FrameReader::new(shared.cfg.max_frame);
    let mut helloed = false;

    loop {
        let payload = match frames.read(&mut reader) {
            Ok(ReadOutcome::Frame(p)) => p,
            Ok(ReadOutcome::Eof) => return,
            Ok(ReadOutcome::TimedOut) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(e) => {
                shared.framing_errors.fetch_add(1, Ordering::Relaxed);
                // Best-effort typed refusal; the stream is no longer
                // frame-aligned either way, so the session ends here.
                let code = match e {
                    FrameError::TooLarge { .. } | FrameError::BadLength => ErrorCode::Malformed,
                    _ => return,
                };
                let _ = write_frame(
                    &mut writer,
                    &Response::Error(WireError::new(code, e.to_string())),
                    shared.cfg.max_frame,
                );
                return;
            }
        };

        let (response, ctl) = match crate::frame::decode_payload::<Request>(&payload) {
            Err(e) => (
                Response::Error(WireError::new(
                    ErrorCode::Malformed,
                    format!("undecodable request: {e}"),
                )),
                Ctl::Continue,
            ),
            Ok(Request::Hello { version }) => {
                if version == PROTOCOL_VERSION {
                    helloed = true;
                    (
                        Response::HelloOk {
                            version: PROTOCOL_VERSION,
                        },
                        Ctl::Continue,
                    )
                } else {
                    (
                        Response::Error(WireError::new(
                            ErrorCode::Version,
                            format!(
                                "unknown protocol version {version} (speaking {PROTOCOL_VERSION})"
                            ),
                        )),
                        Ctl::Close,
                    )
                }
            }
            Ok(_) if !helloed => (
                Response::Error(WireError::new(
                    ErrorCode::Version,
                    "session must start with Hello",
                )),
                Ctl::Close,
            ),
            Ok(Request::Quit) => (Response::Bye, Ctl::Close),
            Ok(req) => (apply(shared, req), Ctl::Continue),
        };

        if write_frame(&mut writer, &response, shared.cfg.max_frame).is_err() {
            return;
        }
        if matches!(ctl, Ctl::Close) {
            return;
        }
    }
}

/// Executes one request against the engine. The engine lock is scoped to
/// this function — never held across socket I/O.
fn apply(shared: &Shared, req: Request) -> Response {
    let mut engine = shared.engine.lock();
    let result = dispatch(&mut engine, req);
    match result {
        Ok(resp) => resp,
        Err(e) => Response::Error(WireError::new(ErrorCode::Engine, e.to_string())),
    }
}

fn dispatch(engine: &mut ITagEngine, req: Request) -> itag_core::Result<Response> {
    Ok(match req {
        // Handled in the session loop; unreachable here but kept total so
        // a new Request variant is a compile error until routed.
        Request::Hello { .. } => Response::HelloOk {
            version: PROTOCOL_VERSION,
        },
        Request::Quit => Response::Bye,
        Request::Ping => Response::Pong,
        Request::RegisterProvider { name } => Response::Registered {
            id: engine.register_provider(&name)?,
        },
        Request::RegisterTagger { name } => Response::Registered {
            id: engine.register_tagger(&name)?,
        },
        Request::CreateProject {
            provider,
            spec,
            dataset,
            audience,
        } => {
            let data = dataset.generate();
            let project = if audience {
                engine.add_project_with_platform(
                    provider,
                    spec.clone(),
                    data,
                    Box::new(ManualPlatform::new(spec.platform)),
                )?
            } else {
                engine.add_project(provider, spec, data)?
            };
            Response::ProjectCreated { project }
        }
        Request::PublishBatch { project, want } => Response::Published {
            tasks: engine.publish_batch(project, want as usize)?,
        },
        Request::RunRound { project, max_tasks } => Response::RunDone {
            summary: engine.run(project, max_tasks)?,
        },
        Request::Collect { project } => {
            let (approved, rejected) = engine.collect_once(project)?;
            Response::Collected { approved, rejected }
        }
        Request::Monitor { project } => Response::Snapshot(engine.monitor(project)?),
        Request::MonitorTable { project, limit } => Response::Table {
            rendered: engine.monitor(project)?.render_table(limit as usize),
        },
        Request::ResourceDetail { project, resource } => {
            Response::Detail(engine.resource_detail(project, resource)?)
        }
        Request::AddBudget {
            project,
            extra_tasks,
        } => {
            engine.add_budget(project, extra_tasks)?;
            Response::Done
        }
        Request::SwitchStrategy { project, strategy } => {
            engine.switch_strategy(project, strategy)?;
            Response::Done
        }
        Request::StopProject { project } => {
            engine.stop_project(project)?;
            Response::Done
        }
        Request::ExportCsv { project } => Response::Csv {
            csv: engine.export(project)?.to_csv(),
        },
        Request::ExportDownload { project } => Response::Download {
            bytes: engine.export(project)?.to_bytes(),
        },
        Request::BrowseProjects => Response::Projects {
            listings: engine.browse_projects()?,
        },
        Request::PullTasks { project, limit } => Response::Tasks {
            open: engine
                .audience_open_tasks(project, limit as usize)?
                .into_iter()
                .map(|(task, resource)| OpenTask { task, resource })
                .collect(),
        },
        Request::SubmitPost {
            project,
            task,
            tagger,
            tags,
        } => {
            engine.audience_submit(project, task, tagger, tags)?;
            Response::Done
        }
        Request::Reputation { tagger } => Response::ReputationReport {
            approval_rate: engine.tagger_approval_rate(tagger)?,
            reliable: engine.is_reliable_tagger(tagger)?,
        },
        Request::Checksum => Response::Checksum {
            digest: engine.store_checksum(),
        },
    })
}

/// Applies the same operation a wire request would, directly to an
/// engine — the in-process twin used by the loopback byte-identity test
/// and kept here so server dispatch and twin dispatch cannot drift.
pub fn apply_in_process(engine: &mut ITagEngine, req: Request) -> itag_core::Result<Response> {
    dispatch(engine, req)
}
