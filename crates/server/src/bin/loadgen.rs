//! `loadgen` — replays thousands of concurrent client sessions against a
//! self-hosted `itag-server` and reports serving throughput and tail
//! latency. This is the harness behind `BENCH_pr7.json`.
//!
//! ```text
//! cargo run --release -p itag-server --bin loadgen -- \
//!     [--sessions N] [--workers W] [--queue Q] [--tasks T] [--seed S] [--out PATH]
//! ```
//!
//! The mix is 1 provider session per 10 taggers: providers create and run
//! a private simulated campaign, inspect it, and download the export;
//! taggers browse, pull tasks from a shared audience campaign, submit
//! posts, and check their reputation. Engine-level refusals (e.g. a task
//! already taken by a concurrent tagger) are counted as served responses
//! — they are the protocol working, not failures. Every session thread
//! verifies its responses; any panic anywhere fails the run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use itag_core::config::EngineConfig;
use itag_core::engine::ITagEngine;
use itag_core::project::ProjectSpec;
use itag_model::ids::{ProjectId, TagId, TaggerId};
use itag_server::client::{Client, ClientError};
use itag_server::proto::DatasetSpec;
use itag_server::server::{serve, ServerConfig};

struct Args {
    sessions: usize,
    workers: usize,
    queue: usize,
    /// Audience tasks published up front for taggers to fight over.
    tasks: u32,
    seed: u64,
    out: Option<String>,
    /// Fault storm: a `site:kind[@trigger],...` plan (same grammar as
    /// `ITAG_FAULTS`) armed for the duration of the session storm. The
    /// shakeout contract: sessions may fail *transiently*, the server
    /// must stay healthy — zero panics, post-storm ping answered.
    faults: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        sessions: 1000,
        workers: 128,
        queue: 2048,
        tasks: 2000,
        seed: 7,
        out: None,
        faults: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--sessions" => args.sessions = take("--sessions").parse().expect("--sessions"),
            "--workers" => args.workers = take("--workers").parse().expect("--workers"),
            "--queue" => args.queue = take("--queue").parse().expect("--queue"),
            "--tasks" => args.tasks = take("--tasks").parse().expect("--tasks"),
            "--seed" => args.seed = take("--seed").parse().expect("--seed"),
            "--out" => args.out = Some(take("--out")),
            "--faults" => args.faults = Some(take("--faults")),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// A session that died, and whether the death is tolerable under a fault
/// storm (transient connection loss, shed, or a typed degraded refusal —
/// the resilience machinery working as designed).
struct SessionFailure {
    msg: String,
    tolerable: bool,
}

fn classify(e: ClientError, ctx: String) -> SessionFailure {
    let tolerable = e.is_transient()
        || matches!(
            &e,
            ClientError::Server(w) if w.code == itag_server::proto::ErrorCode::Degraded
        );
    SessionFailure {
        msg: format!("{ctx}: {e}"),
        tolerable,
    }
}

fn connect(addr: std::net::SocketAddr, retry: bool) -> Result<Client, ClientError> {
    if retry {
        Client::connect_retrying(
            addr,
            4 << 20,
            std::time::Duration::from_secs(30),
            itag_server::client::RetryPolicy::default(),
        )
    } else {
        Client::connect(addr)
    }
}

/// One timed request round-trip, in microseconds.
fn timed<T>(lat: &mut Vec<u64>, f: impl FnOnce() -> T) -> T {
    let t = Instant::now();
    let out = f();
    lat.push(t.elapsed().as_micros() as u64);
    out
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// A provider session: create a private simulated campaign, run it,
/// inspect it, fund it, and download the export.
fn provider_session(
    addr: std::net::SocketAddr,
    n: usize,
    seed: u64,
    retry: bool,
) -> Result<Vec<u64>, SessionFailure> {
    let mut lat = Vec::with_capacity(16);
    let mut run = || -> Result<(), ClientError> {
        let mut c = connect(addr, retry)?;
        let provider = timed(&mut lat, || c.register_provider(&format!("prov-{n}")))?;
        let project = timed(&mut lat, || {
            c.create_project(
                provider,
                ProjectSpec::demo(&format!("campaign-{n}"), 30),
                DatasetSpec {
                    resources: 20,
                    vocab: 120,
                    initial_posts: 80,
                    eval_posts: 120,
                    taggers: 8,
                    seed: seed ^ n as u64,
                },
                false,
            )
        })?;
        let summary = timed(&mut lat, || c.run_round(project, 20))?;
        if summary.issued == 0 {
            return Err(ClientError::Unexpected("a non-empty round"));
        }
        timed(&mut lat, || c.add_budget(project, 10))?;
        let snap = timed(&mut lat, || c.monitor(project))?;
        if snap.budget_total != 40 {
            return Err(ClientError::Unexpected("funded budget"));
        }
        timed(&mut lat, || c.monitor_table(project, 5))?;
        timed(&mut lat, || c.export_csv(project))?;
        timed(&mut lat, || c.stop_project(project))?;
        c.quit()?;
        Ok(())
    };
    run().map_err(|e| classify(e, format!("provider session {n}")))?;
    Ok(lat)
}

/// A tagger session against the shared audience campaign.
fn tagger_session(
    addr: std::net::SocketAddr,
    n: usize,
    shared_project: ProjectId,
    submitted: &AtomicU64,
    retry: bool,
) -> Result<Vec<u64>, SessionFailure> {
    let mut lat = Vec::with_capacity(16);
    let mut run = || -> Result<(), ClientError> {
        let mut c = connect(addr, retry)?;
        let tagger = timed(&mut lat, || c.register_tagger(&format!("tagger-{n}")))?;
        let listings = timed(&mut lat, || c.browse_projects())?;
        if listings.is_empty() {
            return Err(ClientError::Unexpected("a browsable project"));
        }
        let open = timed(&mut lat, || c.pull_tasks(shared_project, 4))?;
        for t in &open {
            // Another tagger may have claimed the task between pull and
            // submit — an Engine error response is the correct outcome.
            match timed(&mut lat, || {
                c.submit_post(
                    shared_project,
                    t.task,
                    TaggerId(tagger),
                    vec![TagId((t.task % 60) as u32), TagId((t.task % 7) as u32)],
                )
            }) {
                Ok(()) => {
                    submitted.fetch_add(1, Ordering::Relaxed);
                }
                Err(ClientError::Server(e)) if e.code == itag_server::proto::ErrorCode::Engine => {}
                Err(e) => return Err(e),
            }
        }
        timed(&mut lat, || c.reputation(tagger))?;
        c.quit()?;
        Ok(())
    };
    run().map_err(|e| classify(e, format!("tagger session {n}")))?;
    Ok(lat)
}

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn main() {
    let args = parse_args();

    let engine = ITagEngine::new(EngineConfig::in_memory(args.seed)).expect("engine");
    let handle = serve(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    // Host session: the shared audience campaign the taggers work on.
    let shared_project = {
        let mut host = Client::connect(addr).expect("host connect");
        let provider = host.register_provider("loadgen-host").expect("register");
        let project = host
            .create_project(
                provider,
                ProjectSpec::demo("audience-firehose", args.tasks),
                DatasetSpec {
                    resources: 200,
                    vocab: 400,
                    initial_posts: 800,
                    eval_posts: 0,
                    taggers: 32,
                    seed: args.seed,
                },
                true,
            )
            .expect("shared project");
        let published = host
            .publish_batch(project, args.tasks)
            .expect("publish firehose");
        assert!(published > 0, "no tasks published for the tagger fleet");
        host.quit().expect("host quit");
        project
    };

    println!(
        "loadgen: {} sessions ({} workers, queue {}) against {addr}",
        args.sessions, args.workers, args.queue
    );

    // Fault storm: armed only after the healthy setup above, so the
    // shared campaign always exists. With the `faults` feature off this
    // panics loudly instead of silently testing nothing.
    let fault_guard = args.faults.as_deref().map(|raw| {
        assert!(
            itag_store::faults::compiled_in(),
            "--faults requires a build with the `faults` feature"
        );
        let plan =
            itag_store::faults::FaultPlan::parse(raw).unwrap_or_else(|e| panic!("--faults: {e}"));
        println!("fault storm armed: {raw}");
        itag_store::faults::arm(&plan)
    });
    let storm = fault_guard.is_some();

    let submitted = Arc::new(AtomicU64::new(0));
    let wall = Instant::now();
    let mut joins = Vec::with_capacity(args.sessions);
    for n in 0..args.sessions {
        let submitted = Arc::clone(&submitted);
        let seed = args.seed;
        joins.push(
            std::thread::Builder::new()
                .name(format!("loadgen-{n}"))
                .stack_size(256 * 1024)
                .spawn(move || {
                    if n % 10 == 0 {
                        provider_session(addr, n, seed, storm)
                    } else {
                        tagger_session(addr, n, shared_project, &submitted, storm)
                    }
                })
                .expect("spawn session"),
        );
    }

    let mut latencies: Vec<u64> = Vec::new();
    let mut busy = 0u64;
    let mut faulted = 0u64;
    let mut failures: Vec<String> = Vec::new();
    for j in joins {
        match j.join().expect("session thread panicked") {
            Ok(lat) => latencies.extend(lat),
            // A shed session is the server keeping its bounded-queue
            // promise under overload; under a fault storm, transient
            // deaths and degraded refusals are the resilience contract
            // working. Anything else is a failure.
            Err(f) if f.msg.contains("server busy") => busy += 1,
            Err(f) if storm && f.tolerable => faulted += 1,
            Err(f) => failures.push(f.msg),
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();

    // End the storm before the health check: the server must come back
    // clean the moment faults stop, or resilience is just delayed death.
    drop(fault_guard);

    // Post-run smoke: the server must still be healthy after the storm.
    {
        let mut c = connect(addr, storm).expect("post-run connect");
        c.ping().expect("post-run ping");
        c.quit().expect("post-run quit");
    }

    let was_degraded = handle.degraded();
    let report = handle.shutdown();
    assert!(
        failures.is_empty(),
        "{} failed sessions, first: {}",
        failures.len(),
        failures[0]
    );
    assert_eq!(
        report.stats.worker_panics, 0,
        "server threads died by panic during the run"
    );
    if storm {
        println!(
            "fault storm: {faulted} sessions tolerably faulted; server counters: \
             accept_faults {}, session_write_failures {}, degraded_refusals {}, degraded {was_degraded}",
            report.stats.accept_faults,
            report.stats.session_write_failures,
            report.stats.degraded_refusals,
        );
    }

    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let throughput = requests as f64 / wall_s;
    let rss = peak_rss_kb().unwrap_or(0);

    println!(
        "{} requests in {:.2}s: {:.0} req/s, p50 {}us, p99 {}us; {} posts submitted; \
         {} sessions shed busy; served {}, framing errors {}; peak RSS {} KiB",
        requests,
        wall_s,
        throughput,
        p50,
        p99,
        submitted.load(Ordering::Relaxed),
        busy,
        report.stats.served,
        report.stats.framing_errors,
        rss
    );

    if let Some(path) = args.out {
        let json = format!(
            r#"{{
  "benchmark": "itag-server loopback serving: {sessions} concurrent client sessions (1 provider : 9 taggers) against one engine behind {workers} session workers, queue capacity {queue}; providers create+run+fund+export a private simulated campaign, taggers pull/submit against a shared {tasks}-task audience campaign",
  "methodology": "cargo run --release -p itag-server --bin loadgen -- --sessions {sessions} --workers {workers} --queue {queue} --tasks {tasks} --seed {seed}; every session is its own thread and TCP connection; per-request round-trip latency measured client-side; engine-level refusals (task already taken) count as served requests, Busy-shed sessions are counted separately and are the load-shedding contract working",
  "wall_seconds": {wall_s:.3},
  "requests": {requests},
  "throughput_req_per_sec": {throughput:.0},
  "latency_us": {{ "p50": {p50}, "p99": {p99} }},
  "sessions": {{ "launched": {sessions}, "served": {served}, "shed_busy": {busy}, "failed": 0 }},
  "posts_submitted": {submitted},
  "framing_errors": {framing},
  "peak_rss_kib": {rss},
  "invariants": "zero panics across {sessions} session threads and the server pool; a post-storm ping succeeded before shutdown; the engine came back from ServerHandle::shutdown intact"
}}
"#,
            sessions = args.sessions,
            workers = args.workers,
            queue = args.queue,
            tasks = args.tasks,
            seed = args.seed,
            wall_s = wall_s,
            requests = requests,
            throughput = throughput,
            p50 = p50,
            p99 = p99,
            served = report.stats.served,
            busy = busy,
            submitted = submitted.load(Ordering::Relaxed),
            framing = report.stats.framing_errors,
            rss = rss,
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}
