//! `loadgen` — replays thousands of concurrent client sessions against a
//! self-hosted `itag-server` and reports serving throughput and tail
//! latency. This is the harness behind `BENCH_pr7.json`.
//!
//! ```text
//! cargo run --release -p itag-server --bin loadgen -- \
//!     [--sessions N] [--workers W] [--queue Q] [--tasks T] [--seed S] [--out PATH]
//! ```
//!
//! The mix is 1 provider session per 10 taggers: providers create and run
//! a private simulated campaign, inspect it, and download the export;
//! taggers browse, pull tasks from a shared audience campaign, submit
//! posts, and check their reputation. Engine-level refusals (e.g. a task
//! already taken by a concurrent tagger) are counted as served responses
//! — they are the protocol working, not failures. Every session thread
//! verifies its responses; any panic anywhere fails the run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use itag_core::config::EngineConfig;
use itag_core::engine::ITagEngine;
use itag_core::project::ProjectSpec;
use itag_model::ids::{ProjectId, TagId, TaggerId};
use itag_server::client::{Client, ClientError};
use itag_server::proto::DatasetSpec;
use itag_server::server::{serve, ServerConfig};

struct Args {
    sessions: usize,
    workers: usize,
    queue: usize,
    /// Audience tasks published up front for taggers to fight over.
    tasks: u32,
    seed: u64,
    out: Option<String>,
    /// Fault storm: a `site:kind[@trigger],...` plan (same grammar as
    /// `ITAG_FAULTS`) armed for the duration of the session storm. The
    /// shakeout contract: sessions may fail *transiently*, the server
    /// must stay healthy — zero panics, post-storm ping answered.
    faults: Option<String>,
    /// `storm` (the default session storm) or `mixed` (concurrent
    /// writers running rounds while dashboard readers hammer Monitor —
    /// the MVCC snapshot-read benchmark).
    mode: String,
    /// Mixed mode: concurrent dashboard reader sessions.
    read_sessions: usize,
    /// Mixed mode: rounds each writer runs on its campaign.
    rounds: u32,
    /// Mixed mode: `EngineConfig::commit_batch` (group-commit budget).
    commit_batch: Option<usize>,
    /// Mixed mode: `ServerConfig::snapshot_reads` (on/off).
    snapshot_reads: Option<bool>,
    /// Mixed mode: strict-sync durable storage in a temp dir, so
    /// `StoreStats::wal_syncs` measures real fsyncs per round.
    durable: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        sessions: 1000,
        workers: 128,
        queue: 2048,
        tasks: 2000,
        seed: 7,
        out: None,
        faults: None,
        mode: "storm".into(),
        read_sessions: 16,
        rounds: 12,
        commit_batch: None,
        snapshot_reads: None,
        durable: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| it.next().unwrap_or_else(|| panic!("{name} needs a value"));
        match flag.as_str() {
            "--sessions" => args.sessions = take("--sessions").parse().expect("--sessions"),
            "--workers" => args.workers = take("--workers").parse().expect("--workers"),
            "--queue" => args.queue = take("--queue").parse().expect("--queue"),
            "--tasks" => args.tasks = take("--tasks").parse().expect("--tasks"),
            "--seed" => args.seed = take("--seed").parse().expect("--seed"),
            "--out" => args.out = Some(take("--out")),
            "--faults" => args.faults = Some(take("--faults")),
            "--mode" => args.mode = take("--mode"),
            "--read-sessions" => {
                args.read_sessions = take("--read-sessions").parse().expect("--read-sessions")
            }
            "--rounds" => args.rounds = take("--rounds").parse().expect("--rounds"),
            "--commit-batch" => {
                args.commit_batch = Some(take("--commit-batch").parse().expect("--commit-batch"))
            }
            "--snapshot-reads" => {
                args.snapshot_reads = Some(match take("--snapshot-reads").as_str() {
                    "on" => true,
                    "off" => false,
                    other => panic!("--snapshot-reads takes on|off, got {other}"),
                })
            }
            "--durable" => args.durable = true,
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// A session that died, and whether the death is tolerable under a fault
/// storm (transient connection loss, shed, or a typed degraded refusal —
/// the resilience machinery working as designed).
struct SessionFailure {
    msg: String,
    tolerable: bool,
}

fn classify(e: ClientError, ctx: String) -> SessionFailure {
    let tolerable = e.is_transient()
        || matches!(
            &e,
            ClientError::Server(w) if w.code == itag_server::proto::ErrorCode::Degraded
        );
    SessionFailure {
        msg: format!("{ctx}: {e}"),
        tolerable,
    }
}

fn connect(addr: std::net::SocketAddr, retry: bool) -> Result<Client, ClientError> {
    if retry {
        Client::connect_retrying(
            addr,
            4 << 20,
            std::time::Duration::from_secs(30),
            itag_server::client::RetryPolicy::default(),
        )
    } else {
        Client::connect(addr)
    }
}

/// One timed request round-trip, in microseconds.
fn timed<T>(lat: &mut Vec<u64>, f: impl FnOnce() -> T) -> T {
    let t = Instant::now();
    let out = f();
    lat.push(t.elapsed().as_micros() as u64);
    out
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// A provider session: create a private simulated campaign, run it,
/// inspect it, fund it, and download the export.
fn provider_session(
    addr: std::net::SocketAddr,
    n: usize,
    seed: u64,
    retry: bool,
) -> Result<Vec<u64>, SessionFailure> {
    let mut lat = Vec::with_capacity(16);
    let mut run = || -> Result<(), ClientError> {
        let mut c = connect(addr, retry)?;
        let provider = timed(&mut lat, || c.register_provider(&format!("prov-{n}")))?;
        let project = timed(&mut lat, || {
            c.create_project(
                provider,
                ProjectSpec::demo(&format!("campaign-{n}"), 30),
                DatasetSpec {
                    resources: 20,
                    vocab: 120,
                    initial_posts: 80,
                    eval_posts: 120,
                    taggers: 8,
                    seed: seed ^ n as u64,
                },
                false,
            )
        })?;
        let summary = timed(&mut lat, || c.run_round(project, 20))?;
        if summary.issued == 0 {
            return Err(ClientError::Unexpected("a non-empty round"));
        }
        timed(&mut lat, || c.add_budget(project, 10))?;
        let snap = timed(&mut lat, || c.monitor(project))?;
        if snap.budget_total != 40 {
            return Err(ClientError::Unexpected("funded budget"));
        }
        timed(&mut lat, || c.monitor_table(project, 5))?;
        timed(&mut lat, || c.export_csv(project))?;
        timed(&mut lat, || c.stop_project(project))?;
        c.quit()?;
        Ok(())
    };
    run().map_err(|e| classify(e, format!("provider session {n}")))?;
    Ok(lat)
}

/// A tagger session against the shared audience campaign.
fn tagger_session(
    addr: std::net::SocketAddr,
    n: usize,
    shared_project: ProjectId,
    submitted: &AtomicU64,
    retry: bool,
) -> Result<Vec<u64>, SessionFailure> {
    let mut lat = Vec::with_capacity(16);
    let mut run = || -> Result<(), ClientError> {
        let mut c = connect(addr, retry)?;
        let tagger = timed(&mut lat, || c.register_tagger(&format!("tagger-{n}")))?;
        let listings = timed(&mut lat, || c.browse_projects())?;
        if listings.is_empty() {
            return Err(ClientError::Unexpected("a browsable project"));
        }
        let open = timed(&mut lat, || c.pull_tasks(shared_project, 4))?;
        for t in &open {
            // Another tagger may have claimed the task between pull and
            // submit — an Engine error response is the correct outcome.
            match timed(&mut lat, || {
                c.submit_post(
                    shared_project,
                    t.task,
                    TaggerId(tagger),
                    vec![TagId((t.task % 60) as u32), TagId((t.task % 7) as u32)],
                )
            }) {
                Ok(()) => {
                    submitted.fetch_add(1, Ordering::Relaxed);
                }
                Err(ClientError::Server(e)) if e.code == itag_server::proto::ErrorCode::Engine => {}
                Err(e) => return Err(e),
            }
        }
        timed(&mut lat, || c.reputation(tagger))?;
        c.quit()?;
        Ok(())
    };
    run().map_err(|e| classify(e, format!("tagger session {n}")))?;
    Ok(lat)
}

fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Mixed read/write mode: writer sessions run rounds on their own
/// campaigns over the wire while dashboard reader sessions hammer
/// `Monitor`/`MonitorTable`/`BrowseProjects`. The headline number is
/// mid-round Monitor tail latency — with snapshot reads on, dashboards
/// never queue behind the engine mutex a `RunRound` is holding; with
/// `--snapshot-reads off` they do, and the p99 shows it. `--durable`
/// plus `--commit-batch` additionally measures fsyncs-per-round for the
/// group-commit batching.
fn run_mixed(args: &Args) {
    const CAMPAIGNS: usize = 4;
    const TASKS_PER_ROUND: u32 = 40;

    let tmp = args.durable.then(|| {
        let dir = std::env::temp_dir().join(format!("itag-loadgen-mixed-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir durable dir");
        dir
    });
    let mut config = match &tmp {
        Some(dir) => {
            let mut c = EngineConfig::durable(args.seed, dir.clone());
            c.storage = itag_core::config::StorageConfig::Durable {
                dir: dir.clone(),
                durability: itag_store::Durability::Sync,
                sync_policy: itag_store::SyncPolicy::Always,
                checkpoint_every: 0,
            };
            c
        }
        None => EngineConfig::in_memory(args.seed),
    };
    config.commit_batch = args.commit_batch;
    let engine = ITagEngine::new(config).expect("engine");
    let store = engine.store_handle();
    let handle = serve(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            snapshot_reads: args.snapshot_reads,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    let projects: Vec<ProjectId> = {
        let mut host = Client::connect(addr).expect("host connect");
        let provider = host.register_provider("mixed-host").expect("register");
        let projects = (0..CAMPAIGNS)
            .map(|i| {
                host.create_project(
                    provider,
                    ProjectSpec::demo(&format!("mixed-{i}"), args.rounds * TASKS_PER_ROUND),
                    DatasetSpec {
                        resources: 40,
                        vocab: 200,
                        initial_posts: 200,
                        eval_posts: 200,
                        taggers: 16,
                        seed: args.seed ^ i as u64,
                    },
                    false,
                )
                .expect("campaign")
            })
            .collect();
        // Warm the server's snapshot cache while the engine is idle so
        // the first capture already knows every campaign; without this
        // the measured reads start from the pre-campaign seed snapshot.
        host.browse_projects().expect("warm-up browse");
        host.quit().expect("host quit");
        projects
    };

    println!(
        "loadgen mixed: {} writers x {} rounds, {} dashboard readers, snapshot_reads {:?}, \
         commit_batch {:?}, durable {}",
        CAMPAIGNS,
        args.rounds,
        args.read_sessions,
        args.snapshot_reads,
        args.commit_batch,
        args.durable
    );

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let syncs_before = store.stats().wal_syncs;
    let wall = Instant::now();

    let writers: Vec<_> = projects
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let rounds = args.rounds;
            std::thread::Builder::new()
                .name(format!("mixed-writer-{i}"))
                .spawn(move || {
                    let mut lat = Vec::with_capacity(rounds as usize);
                    let mut c = Client::connect(addr).expect("writer connect");
                    for _ in 0..rounds {
                        timed(&mut lat, || c.run_round(p, TASKS_PER_ROUND)).expect("writer round");
                    }
                    c.quit().expect("writer quit");
                    lat
                })
                .expect("spawn writer")
        })
        .collect();

    let readers: Vec<_> = (0..args.read_sessions)
        .map(|i| {
            let projects = projects.clone();
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name(format!("mixed-reader-{i}"))
                .stack_size(256 * 1024)
                .spawn(move || {
                    let mut monitor_lat = Vec::new();
                    let mut other = 0u64;
                    let mut c = Client::connect(addr).expect("reader connect");
                    let mut k = i;
                    while !stop.load(Ordering::Relaxed) {
                        let p = projects[k % projects.len()];
                        k += 1;
                        timed(&mut monitor_lat, || c.monitor(p)).expect("monitor");
                        if k % 8 == 0 {
                            c.browse_projects().expect("browse");
                            c.monitor_table(p, 5).expect("table");
                            other += 2;
                        }
                    }
                    c.quit().expect("reader quit");
                    (monitor_lat, other)
                })
                .expect("spawn reader")
        })
        .collect();

    let mut round_lat: Vec<u64> = Vec::new();
    for w in writers {
        round_lat.extend(w.join().expect("writer thread panicked"));
    }
    let write_wall_s = wall.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);

    let mut monitor_lat: Vec<u64> = Vec::new();
    let mut other_reads = 0u64;
    for r in readers {
        let (lat, other) = r.join().expect("reader thread panicked");
        monitor_lat.extend(lat);
        other_reads += other;
    }

    let fsyncs = store.stats().wal_syncs - syncs_before;
    let total_rounds = round_lat.len() as u64;
    let report = handle.shutdown();
    assert_eq!(report.stats.worker_panics, 0, "server threads panicked");
    if let Some(dir) = &tmp {
        let _ = std::fs::remove_dir_all(dir);
    }

    monitor_lat.sort_unstable();
    round_lat.sort_unstable();
    let m_p50 = percentile(&monitor_lat, 0.50);
    let m_p99 = percentile(&monitor_lat, 0.99);
    let monitors = monitor_lat.len() as u64;
    let fsyncs_per_round = fsyncs as f64 / total_rounds.max(1) as f64;

    println!(
        "{total_rounds} rounds (p99 {}us) while {monitors} Monitor reads flowed: \
         monitor p50 {m_p50}us, p99 {m_p99}us; {other_reads} browse/table reads; \
         {fsyncs} wal fsyncs ({fsyncs_per_round:.2}/round); \
         snapshots: {} hits, {} captures, {} stale",
        percentile(&round_lat, 0.99),
        report.stats.snapshot_hits,
        report.stats.snapshot_captures,
        report.stats.snapshot_stale,
    );

    if let Some(path) = &args.out {
        let json = format!(
            r#"{{
  "benchmark": "itag-server mixed read/write: {campaigns} writer sessions each running {rounds} rounds of {tpr} tasks while {readers} dashboard sessions continuously Monitor/browse/export; measures mid-round dashboard tail latency and group-commit fsync cadence",
  "methodology": "cargo run --release -p itag-server --bin loadgen -- --mode mixed --rounds {rounds} --read-sessions {readers} --seed {seed}{durable_flag}{batch_flag}{snap_flag}; Monitor latency measured client-side over TCP while writer rounds are in flight; fsyncs counted via StoreStats::wal_syncs on a strict-sync durable store",
  "config": {{ "snapshot_reads": {snap}, "commit_batch": {batch}, "durable": {durable} }},
  "write_wall_seconds": {write_wall_s:.3},
  "writer_rounds": {total_rounds},
  "round_latency_us": {{ "p50": {r_p50}, "p99": {r_p99} }},
  "monitor_reads": {monitors},
  "monitor_latency_us": {{ "p50": {m_p50}, "p99": {m_p99} }},
  "snapshot_counters": {{ "hits": {hits}, "captures": {captures}, "stale": {stale} }},
  "wal_fsyncs": {fsyncs},
  "fsyncs_per_round": {fsyncs_per_round:.3},
  "invariants": "every dashboard read answered while rounds were mid-flight; zero server panics; zero failed sessions"
}}
"#,
            campaigns = CAMPAIGNS,
            rounds = args.rounds,
            tpr = TASKS_PER_ROUND,
            readers = args.read_sessions,
            seed = args.seed,
            durable_flag = if args.durable { " --durable" } else { "" },
            batch_flag = args
                .commit_batch
                .map(|b| format!(" --commit-batch {b}"))
                .unwrap_or_default(),
            snap_flag = args
                .snapshot_reads
                .map(|s| format!(" --snapshot-reads {}", if s { "on" } else { "off" }))
                .unwrap_or_default(),
            snap = args
                .snapshot_reads
                .map(|s| s.to_string())
                .unwrap_or_else(|| "true".into()),
            batch = args
                .commit_batch
                .map(|b| b.to_string())
                .unwrap_or_else(|| "null".into()),
            durable = args.durable,
            write_wall_s = write_wall_s,
            total_rounds = total_rounds,
            r_p50 = percentile(&round_lat, 0.50),
            r_p99 = percentile(&round_lat, 0.99),
            monitors = monitors,
            m_p50 = m_p50,
            m_p99 = m_p99,
            hits = report.stats.snapshot_hits,
            captures = report.stats.snapshot_captures,
            stale = report.stats.snapshot_stale,
            fsyncs = fsyncs,
            fsyncs_per_round = fsyncs_per_round,
        );
        std::fs::write(path, json).expect("write bench json");
        println!("wrote {path}");
    }
}

/// Group-commit mode: engine-level `run_all` rounds on a strict-sync
/// durable store, once with per-project commits (batch 1) and once with
/// the requested batch budget. Cross-project batching only forms inside
/// `run_all` — wire `RunRound`s are single-project — so this is the mode
/// that actually measures the fsync cadence. Both legs must land on
/// bit-identical store checksums: batching changes durability cadence,
/// never state.
fn run_groupcommit(args: &Args) {
    const CAMPAIGNS: usize = 6;
    const TASKS_PER_ROUND: u32 = 30;
    let batch = args
        .commit_batch
        .unwrap_or(itag_core::config::DEFAULT_COMMIT_BATCH);

    let leg = |commit_batch: usize| -> (u64, f64, u64) {
        let dir = std::env::temp_dir().join(format!(
            "itag-loadgen-group-{}-{commit_batch}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).expect("mkdir durable dir");
        let mut config = EngineConfig::durable(args.seed, dir.clone());
        config.storage = itag_core::config::StorageConfig::Durable {
            dir: dir.clone(),
            durability: itag_store::Durability::Sync,
            sync_policy: itag_store::SyncPolicy::Always,
            checkpoint_every: 0,
        };
        config.commit_batch = Some(commit_batch);
        let mut engine = ITagEngine::new(config).expect("engine");
        let provider = engine.register_provider("group-host").expect("provider");
        for i in 0..CAMPAIGNS {
            let dataset = itag_model::delicious::DeliciousConfig {
                resources: 30,
                vocab: 150,
                initial_posts: 120,
                eval_posts: 150,
                taggers: 12,
                seed: args.seed ^ i as u64,
                ..itag_model::delicious::DeliciousConfig::default()
            }
            .generate()
            .dataset;
            engine
                .add_project(
                    provider,
                    ProjectSpec::demo(&format!("group-{i}"), args.rounds * TASKS_PER_ROUND),
                    dataset,
                )
                .expect("campaign");
        }
        let store = engine.store_handle();
        let syncs_before = store.stats().wal_syncs;
        for _ in 0..args.rounds {
            engine.run_all_with(TASKS_PER_ROUND, 1, 0).expect("round");
        }
        let fsyncs = store.stats().wal_syncs - syncs_before;
        let project_rounds = (args.rounds as usize * CAMPAIGNS) as u64;
        let checksum = engine.store_checksum();
        drop(engine);
        let _ = std::fs::remove_dir_all(&dir);
        (fsyncs, fsyncs as f64 / project_rounds as f64, checksum)
    };

    let (base_fsyncs, base_per_round, base_sum) = leg(1);
    let (batched_fsyncs, batched_per_round, batched_sum) = leg(batch);
    assert_eq!(
        base_sum, batched_sum,
        "group-commit batching changed the committed state"
    );

    println!(
        "groupcommit: {CAMPAIGNS} campaigns x {} run_all rounds, strict-sync WAL: \
         batch 1 -> {base_fsyncs} fsyncs ({base_per_round:.2}/project-round), \
         batch {batch} -> {batched_fsyncs} fsyncs ({batched_per_round:.2}/project-round); \
         checksums identical",
        args.rounds
    );

    if let Some(path) = &args.out {
        let json = format!(
            r#"{{
  "benchmark": "engine-level group-commit batching: {CAMPAIGNS} campaigns advanced together through {rounds} run_all rounds on a strict-sync durable store (SyncPolicy::Always), fsyncs counted per per-project round",
  "methodology": "cargo run --release -p itag-server --bin loadgen -- --mode groupcommit --rounds {rounds} --commit-batch {batch} --seed {seed}; both legs replay the identical workload and must produce bit-identical store checksums",
  "per_project_commits": {{ "commit_batch": 1, "wal_fsyncs": {base_fsyncs}, "fsyncs_per_project_round": {base_per_round:.3} }},
  "group_commits": {{ "commit_batch": {batch}, "wal_fsyncs": {batched_fsyncs}, "fsyncs_per_project_round": {batched_per_round:.3} }},
  "fsync_reduction": "{reduction:.2}x",
  "invariants": "final store checksums bit-identical across legs"
}}
"#,
            rounds = args.rounds,
            seed = args.seed,
            reduction = base_fsyncs as f64 / batched_fsyncs.max(1) as f64,
        );
        std::fs::write(path, json).expect("write bench json");
        println!("wrote {path}");
    }
}

fn main() {
    let args = parse_args();
    if args.mode == "mixed" {
        run_mixed(&args);
        return;
    }
    if args.mode == "groupcommit" {
        run_groupcommit(&args);
        return;
    }
    assert_eq!(args.mode, "storm", "--mode takes storm|mixed|groupcommit");

    let engine = ITagEngine::new(EngineConfig::in_memory(args.seed)).expect("engine");
    let handle = serve(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    // Host session: the shared audience campaign the taggers work on.
    let shared_project = {
        let mut host = Client::connect(addr).expect("host connect");
        let provider = host.register_provider("loadgen-host").expect("register");
        let project = host
            .create_project(
                provider,
                ProjectSpec::demo("audience-firehose", args.tasks),
                DatasetSpec {
                    resources: 200,
                    vocab: 400,
                    initial_posts: 800,
                    eval_posts: 0,
                    taggers: 32,
                    seed: args.seed,
                },
                true,
            )
            .expect("shared project");
        let published = host
            .publish_batch(project, args.tasks)
            .expect("publish firehose");
        assert!(published > 0, "no tasks published for the tagger fleet");
        host.quit().expect("host quit");
        project
    };

    println!(
        "loadgen: {} sessions ({} workers, queue {}) against {addr}",
        args.sessions, args.workers, args.queue
    );

    // Fault storm: armed only after the healthy setup above, so the
    // shared campaign always exists. With the `faults` feature off this
    // panics loudly instead of silently testing nothing.
    let fault_guard = args.faults.as_deref().map(|raw| {
        assert!(
            itag_store::faults::compiled_in(),
            "--faults requires a build with the `faults` feature"
        );
        let plan =
            itag_store::faults::FaultPlan::parse(raw).unwrap_or_else(|e| panic!("--faults: {e}"));
        println!("fault storm armed: {raw}");
        itag_store::faults::arm(&plan)
    });
    let storm = fault_guard.is_some();

    let submitted = Arc::new(AtomicU64::new(0));
    let wall = Instant::now();
    let mut joins = Vec::with_capacity(args.sessions);
    for n in 0..args.sessions {
        let submitted = Arc::clone(&submitted);
        let seed = args.seed;
        joins.push(
            std::thread::Builder::new()
                .name(format!("loadgen-{n}"))
                .stack_size(256 * 1024)
                .spawn(move || {
                    if n % 10 == 0 {
                        provider_session(addr, n, seed, storm)
                    } else {
                        tagger_session(addr, n, shared_project, &submitted, storm)
                    }
                })
                .expect("spawn session"),
        );
    }

    let mut latencies: Vec<u64> = Vec::new();
    let mut busy = 0u64;
    let mut faulted = 0u64;
    let mut failures: Vec<String> = Vec::new();
    for j in joins {
        match j.join().expect("session thread panicked") {
            Ok(lat) => latencies.extend(lat),
            // A shed session is the server keeping its bounded-queue
            // promise under overload; under a fault storm, transient
            // deaths and degraded refusals are the resilience contract
            // working. Anything else is a failure.
            Err(f) if f.msg.contains("server busy") => busy += 1,
            Err(f) if storm && f.tolerable => faulted += 1,
            Err(f) => failures.push(f.msg),
        }
    }
    let wall_s = wall.elapsed().as_secs_f64();

    // End the storm before the health check: the server must come back
    // clean the moment faults stop, or resilience is just delayed death.
    drop(fault_guard);

    // Post-run smoke: the server must still be healthy after the storm.
    {
        let mut c = connect(addr, storm).expect("post-run connect");
        c.ping().expect("post-run ping");
        c.quit().expect("post-run quit");
    }

    let was_degraded = handle.degraded();
    let report = handle.shutdown();
    assert!(
        failures.is_empty(),
        "{} failed sessions, first: {}",
        failures.len(),
        failures[0]
    );
    assert_eq!(
        report.stats.worker_panics, 0,
        "server threads died by panic during the run"
    );
    if storm {
        println!(
            "fault storm: {faulted} sessions tolerably faulted; server counters: \
             accept_faults {}, session_write_failures {}, degraded_refusals {}, degraded {was_degraded}",
            report.stats.accept_faults,
            report.stats.session_write_failures,
            report.stats.degraded_refusals,
        );
    }

    latencies.sort_unstable();
    let requests = latencies.len() as u64;
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let throughput = requests as f64 / wall_s;
    let rss = peak_rss_kb().unwrap_or(0);

    println!(
        "{} requests in {:.2}s: {:.0} req/s, p50 {}us, p99 {}us; {} posts submitted; \
         {} sessions shed busy; served {}, framing errors {}; peak RSS {} KiB",
        requests,
        wall_s,
        throughput,
        p50,
        p99,
        submitted.load(Ordering::Relaxed),
        busy,
        report.stats.served,
        report.stats.framing_errors,
        rss
    );

    if let Some(path) = args.out {
        let json = format!(
            r#"{{
  "benchmark": "itag-server loopback serving: {sessions} concurrent client sessions (1 provider : 9 taggers) against one engine behind {workers} session workers, queue capacity {queue}; providers create+run+fund+export a private simulated campaign, taggers pull/submit against a shared {tasks}-task audience campaign",
  "methodology": "cargo run --release -p itag-server --bin loadgen -- --sessions {sessions} --workers {workers} --queue {queue} --tasks {tasks} --seed {seed}; every session is its own thread and TCP connection; per-request round-trip latency measured client-side; engine-level refusals (task already taken) count as served requests, Busy-shed sessions are counted separately and are the load-shedding contract working",
  "wall_seconds": {wall_s:.3},
  "requests": {requests},
  "throughput_req_per_sec": {throughput:.0},
  "latency_us": {{ "p50": {p50}, "p99": {p99} }},
  "sessions": {{ "launched": {sessions}, "served": {served}, "shed_busy": {busy}, "failed": 0 }},
  "posts_submitted": {submitted},
  "framing_errors": {framing},
  "peak_rss_kib": {rss},
  "invariants": "zero panics across {sessions} session threads and the server pool; a post-storm ping succeeded before shutdown; the engine came back from ServerHandle::shutdown intact"
}}
"#,
            sessions = args.sessions,
            workers = args.workers,
            queue = args.queue,
            tasks = args.tasks,
            seed = args.seed,
            wall_s = wall_s,
            requests = requests,
            throughput = throughput,
            p50 = p50,
            p99 = p99,
            served = report.stats.served,
            busy = busy,
            submitted = submitted.load(Ordering::Relaxed),
            framing = report.stats.framing_errors,
            rss = rss,
        );
        std::fs::write(&path, json).expect("write bench json");
        println!("wrote {path}");
    }
}
