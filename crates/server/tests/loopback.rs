//! Loopback integration: the wire path must be a transparent veneer over
//! the engine. The headline test drives a full provider + tagger session
//! sequence over TCP and replays the identical operations in-process,
//! then compares the two engines' persisted-table digests byte for byte.

use std::time::Duration;

use itag_core::config::EngineConfig;
use itag_core::engine::ITagEngine;
use itag_core::project::ProjectSpec;
use itag_model::ids::{ProjectId, TagId, TaggerId};
use itag_server::client::{Client, ClientError};
use itag_server::proto::{DatasetSpec, Request, Response};
use itag_server::server::{apply_in_process, serve, ServerConfig};
use itag_strategy::StrategyKind;

const SEED: u64 = 0xC0FFEE;

/// The scripted session: every operation expressed as a wire request, so
/// the loopback run and the in-process twin execute the same list by
/// construction.
fn script() -> Vec<Request> {
    let mut ops = vec![
        Request::RegisterProvider {
            name: "alice".into(),
        },
        Request::CreateProject {
            provider: 0,
            spec: ProjectSpec::demo("wire-sim", 60),
            dataset: DatasetSpec::small(11),
            audience: false,
        },
        Request::RunRound {
            project: ProjectId(0),
            max_tasks: 30,
        },
        Request::AddBudget {
            project: ProjectId(0),
            extra_tasks: 10,
        },
        Request::SwitchStrategy {
            project: ProjectId(0),
            strategy: StrategyKind::MostUnstable,
        },
        Request::RunRound {
            project: ProjectId(0),
            max_tasks: 20,
        },
        Request::RegisterTagger { name: "bob".into() },
        Request::CreateProject {
            provider: 0,
            spec: ProjectSpec::demo("wire-audience", 40),
            dataset: DatasetSpec::small(12),
            audience: true,
        },
        Request::PublishBatch {
            project: ProjectId(1),
            want: 8,
        },
    ];
    // The tagger works the first six audience tasks. Task ids are
    // deterministic (fresh platform, fresh engine on both sides).
    for task in 0..6u64 {
        ops.push(Request::SubmitPost {
            project: ProjectId(1),
            task,
            tagger: TaggerId(3),
            tags: vec![TagId((task % 5) as u32), TagId((7 + task % 3) as u32)],
        });
    }
    ops.extend([
        Request::Collect {
            project: ProjectId(1),
        },
        Request::Monitor {
            project: ProjectId(0),
        },
        Request::MonitorTable {
            project: ProjectId(0),
            limit: 10,
        },
        Request::BrowseProjects,
        Request::ExportCsv {
            project: ProjectId(0),
        },
        Request::ExportDownload {
            project: ProjectId(0),
        },
        Request::Reputation { tagger: 3 },
        Request::StopProject {
            project: ProjectId(1),
        },
    ]);
    ops
}

#[test]
fn loopback_session_state_is_byte_identical_to_in_process() {
    let engine = ITagEngine::new(EngineConfig::in_memory(SEED)).expect("engine");
    let handle = serve(engine, "127.0.0.1:0", ServerConfig::default()).expect("serve");

    let mut wire_responses = Vec::new();
    let mut c = Client::connect(handle.addr()).expect("connect");
    for req in script() {
        let resp = c.call(&req).expect("wire call");
        assert!(
            !matches!(resp, Response::Error(_) | Response::Busy),
            "wire op {req:?} refused: {resp:?}"
        );
        wire_responses.push(resp);
    }
    let wire_digest = c.checksum().expect("wire checksum");
    c.quit().expect("quit");
    let report = handle.shutdown();

    // Twin engine: same seed, same ops, no network.
    let mut twin = ITagEngine::new(EngineConfig::in_memory(SEED)).expect("twin engine");
    let mut twin_responses = Vec::new();
    for req in script() {
        twin_responses.push(apply_in_process(&mut twin, req).expect("in-process op"));
    }

    // Response payloads match one for one (snapshots, tables, exports,
    // run summaries — everything the provider or tagger would see)...
    assert_eq!(wire_responses, twin_responses);
    // ...and the persisted state digests are byte-identical.
    assert_eq!(wire_digest, report.engine.store_checksum());
    assert_eq!(wire_digest, twin.store_checksum());
    assert_eq!(report.stats.served, 1);
    assert_eq!(report.stats.framing_errors, 0);
}

#[test]
fn server_survives_engine_refusals_and_session_continues() {
    let engine = ITagEngine::new(EngineConfig::in_memory(1)).expect("engine");
    let handle = serve(engine, "127.0.0.1:0", ServerConfig::default()).expect("serve");
    let mut c = Client::connect(handle.addr()).expect("connect");

    // Unknown project: a typed Engine error, not a dropped session.
    match c.monitor(ProjectId(99)) {
        Err(ClientError::Server(e)) => {
            assert_eq!(e.code, itag_server::proto::ErrorCode::Engine);
            assert!(e.message.contains("unknown project"), "{}", e.message);
        }
        other => panic!("expected engine refusal, got {other:?}"),
    }
    // The same session keeps working.
    c.ping().expect("ping after refusal");

    // A budget overflow surfaces as the named BudgetOverflow error.
    let provider = c.register_provider("edge").expect("register");
    let project = c
        .create_project(
            provider,
            ProjectSpec::demo("edge", u32::MAX - 5),
            DatasetSpec::small(2),
            false,
        )
        .expect("project");
    match c.add_budget(project, 10) {
        Err(ClientError::Server(e)) => {
            assert!(e.message.contains("overflows"), "{}", e.message);
        }
        other => panic!("expected overflow refusal, got {other:?}"),
    }
    c.quit().expect("quit");
    handle.shutdown();
}

#[test]
fn full_queue_sheds_with_busy() {
    let engine = ITagEngine::new(EngineConfig::in_memory(2)).expect("engine");
    let handle = serve(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServerConfig::default()
        },
    )
    .expect("serve");
    let addr = handle.addr();

    // Session A occupies the single worker (the completed handshake
    // proves a worker claimed it, not the queue).
    let mut a = Client::connect(addr).expect("session A");
    a.ping().expect("A live");

    // Session B fills the queue of one. It cannot complete a handshake —
    // no worker is free — so only open the socket.
    let _b = std::net::TcpStream::connect(addr).expect("session B");
    std::thread::sleep(Duration::from_millis(150));

    // Session C must be shed with Busy, not buffered.
    match Client::connect_with(addr, 1 << 20, Duration::from_secs(5)) {
        Err(ClientError::Busy) => {}
        Err(other) => panic!("expected Busy shed, got error {other:?}"),
        Ok(_) => panic!("expected Busy shed, got a served session"),
    }

    a.quit().expect("A quit");
    let report = handle.shutdown();
    assert!(report.stats.shed >= 1, "shed counter records the refusal");
}
