//! The lock-free-dashboard contract: snapshot-read verbs (`Monitor`,
//! `MonitorTable`, `BrowseProjects`, `ExportCsv`, `ExportDownload`) are
//! served from the epoch-keyed MVCC snapshot cache and never touch the
//! engine mutex. Three legs:
//!
//! * the headline acceptance test parks the engine mutex through
//!   [`ServerHandle::engine_guard`] and proves a full dashboard session
//!   still completes — with answers identical to the unlocked ones;
//! * a liveness/coherence test monitors continuously while another
//!   session runs rounds: every read answers, spent budget is monotonic
//!   (epoch-ordered snapshots), and the final read equals the quiesced
//!   engine;
//! * an A/B test serves the same engine with snapshot reads on and then
//!   off and requires bit-identical answers — the routing split must be
//!   invisible in the payloads.

use std::time::Duration;

use itag_core::config::EngineConfig;
use itag_core::engine::ITagEngine;
use itag_core::project::ProjectSpec;
use itag_model::ids::ProjectId;
use itag_server::client::Client;
use itag_server::proto::DatasetSpec;
use itag_server::server::{serve, ServerConfig};

fn engine(seed: u64) -> ITagEngine {
    ITagEngine::new(EngineConfig::in_memory(seed)).unwrap()
}

/// These tests are *about* the snapshot path, so they pin it on
/// explicitly — the CI matrix also runs this suite under
/// `ITAG_SNAPSHOT_READS=0`, which must only flip servers built on the
/// `None` default.
fn snapshot_cfg() -> ServerConfig {
    ServerConfig {
        snapshot_reads: Some(true),
        ..ServerConfig::default()
    }
}

#[test]
fn dashboards_answer_while_the_engine_lock_is_held() {
    let handle = serve(engine(0x51A9), "127.0.0.1:0", snapshot_cfg()).unwrap();
    assert!(handle.snapshot_reads());

    let mut c = Client::connect(handle.addr()).unwrap();
    let provider = c.register_provider("alice").unwrap();
    let project = c
        .create_project(
            provider,
            ProjectSpec::demo("locked", 60),
            DatasetSpec::small(5),
            false,
        )
        .unwrap();
    c.run_round(project, 40).unwrap();

    // One unlocked read first: it refreshes the cache to the current
    // epoch and records the expected answers.
    let before = c.monitor(project).unwrap();
    let browse_before = c.browse_projects().unwrap();

    // Park the engine mutex — the moral equivalent of a long RunRound —
    // and drive a whole dashboard session to completion under it.
    let guard = handle.engine_guard();
    let hits_before = handle.stats().snapshot_hits;
    let mut dash = Client::connect(handle.addr()).unwrap();
    let snap = dash.monitor(project).unwrap();
    let table = dash.monitor_table(project, 10).unwrap();
    let listings = dash.browse_projects().unwrap();
    let csv = dash.export_csv(project).unwrap();
    let bytes = dash.export_download(project).unwrap();
    dash.quit().unwrap();
    drop(guard);

    // Same epoch, same answers — and every one of them was a cache hit,
    // proving the engine mutex was never needed.
    assert_eq!(snap, before);
    assert_eq!(listings, browse_before);
    assert_eq!(table, before.render_table(10));
    assert!(csv.starts_with("uri,kind,posts,quality,tags"));
    assert!(!bytes.is_empty());
    let stats = handle.stats();
    assert!(
        stats.snapshot_hits >= hits_before + 5,
        "all five locked reads must hit the cache: {stats:?}"
    );

    c.quit().unwrap();
    handle.shutdown();
}

#[test]
fn monitors_stay_live_and_coherent_during_rounds() {
    let handle = serve(engine(0x51AA), "127.0.0.1:0", snapshot_cfg()).unwrap();

    let mut c = Client::connect(handle.addr()).unwrap();
    let provider = c.register_provider("bob").unwrap();
    let project = c
        .create_project(
            provider,
            ProjectSpec::demo("live", 200),
            DatasetSpec::small(6),
            false,
        )
        .unwrap();

    let addr = handle.addr();
    let writer = std::thread::spawn(move || {
        let mut w = Client::connect(addr).unwrap();
        for _ in 0..8 {
            w.run_round(project, 25).unwrap();
        }
        w.quit().unwrap();
    });

    // Monitor continuously while the rounds run. Every read must answer
    // (no deadlock, no error), and spent budget must be non-decreasing:
    // the cache only ever moves to newer epochs.
    let mut reads = 0u32;
    let mut last_spent = 0u32;
    while !writer.is_finished() {
        let snap = c.monitor(project).unwrap();
        assert!(
            snap.budget_spent >= last_spent,
            "snapshot went backwards: {} -> {}",
            last_spent,
            snap.budget_spent
        );
        last_spent = snap.budget_spent;
        reads += 1;
        std::thread::sleep(Duration::from_millis(2));
    }
    writer.join().unwrap();
    assert!(reads > 0);

    // Quiesced: the next read captures the final epoch and must agree
    // with the engine itself.
    let final_snap = c.monitor(project).unwrap();
    assert_eq!(final_snap.budget_spent, 200);
    c.quit().unwrap();

    let stats = handle.stats();
    assert!(
        stats.snapshot_captures >= 1,
        "epoch advances must have forced fresh captures: {stats:?}"
    );
    let report = handle.shutdown();
    let engine = report.engine;
    assert_eq!(engine.monitor(project).unwrap(), final_snap);
}

#[test]
fn snapshot_and_engine_dispatch_serve_identical_answers() {
    // Build state through the snapshot-serving server...
    let handle = serve(engine(0x51AB), "127.0.0.1:0", snapshot_cfg()).unwrap();
    let mut c = Client::connect(handle.addr()).unwrap();
    let provider = c.register_provider("carol").unwrap();
    let p0 = c
        .create_project(
            provider,
            ProjectSpec::demo("ab-0", 80),
            DatasetSpec::small(7),
            false,
        )
        .unwrap();
    let p1 = c
        .create_project(
            provider,
            ProjectSpec::demo("ab-1", 60),
            DatasetSpec::small(8),
            false,
        )
        .unwrap();
    c.run_round(p0, 50).unwrap();
    c.run_round(p1, 30).unwrap();

    let reads_on = dashboard_reads(&mut c, &[p0, p1]);
    c.quit().unwrap();
    let report = handle.shutdown();
    assert!(report.stats.snapshot_hits + report.stats.snapshot_captures > 0);

    // ...then re-serve the very same engine with snapshot reads off and
    // require byte-identical answers from engine dispatch.
    let cfg = ServerConfig {
        snapshot_reads: Some(false),
        ..ServerConfig::default()
    };
    let handle = serve(report.engine, "127.0.0.1:0", cfg).unwrap();
    assert!(!handle.snapshot_reads());
    let mut c = Client::connect(handle.addr()).unwrap();
    let reads_off = dashboard_reads(&mut c, &[p0, p1]);
    c.quit().unwrap();
    let report = handle.shutdown();
    assert_eq!(report.stats.snapshot_hits, 0);
    assert_eq!(report.stats.snapshot_captures, 0);

    assert_eq!(reads_on.0, reads_off.0);
    assert_eq!(reads_on.1, reads_off.1);
    assert_eq!(reads_on.2, reads_off.2);
    assert_eq!(reads_on.3, reads_off.3);
}

type Dashboard = (
    Vec<itag_core::MonitorSnapshot>,
    Vec<String>,
    Vec<itag_core::monitor::ProjectListing>,
    Vec<Vec<u8>>,
);

fn dashboard_reads(c: &mut Client, projects: &[ProjectId]) -> Dashboard {
    let mut monitors = Vec::new();
    let mut tables = Vec::new();
    let mut downloads = Vec::new();
    for &p in projects {
        monitors.push(c.monitor(p).unwrap());
        tables.push(c.monitor_table(p, 12).unwrap());
        tables.push(c.export_csv(p).unwrap());
        downloads.push(c.export_download(p).unwrap());
    }
    let listings = c.browse_projects().unwrap();
    (monitors, tables, listings, downloads)
}
