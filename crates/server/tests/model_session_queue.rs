//! Schedule-explorer model of the accept-to-worker handoff
//! (`itag_server::queue::SessionQueue`): a bounded queue where the
//! acceptor sheds when full, workers block on a condvar, and close()
//! must wake and release every worker after the drain.
//!
//! The model is shape-faithful to `queue.rs`: same lock, same wait
//! predicate (`pop` waits while the queue is empty and open), same
//! notify points (`try_push` → notify_one, `close` → notify_all). The
//! invariants: every accepted session is served exactly once, shed +
//! served accounts for every arrival, and every thread terminates under
//! every schedule. The `should_panic` twin removes the close() wakeup
//! and lets the explorer find the wedged-worker schedule — proof the
//! notify_all in `close` is load-bearing.

use itag_crowd::model::{explore, Config, Env};

fn cfg(preemption_bound: usize) -> Config {
    Config {
        preemption_bound,
        ..Config::default()
    }
}

struct QueueState {
    items: Vec<usize>,
    closed: bool,
    served: Vec<usize>,
    shed: Vec<usize>,
}

/// Builds the handoff model: one acceptor pushing `arrivals` sessions
/// through a capacity-`cap` queue, `workers` workers serving until the
/// queue closes. `notify_on_close` mirrors the notify_all in
/// `SessionQueue::close`; turning it off is the broken twin.
fn run_handoff_model(
    env: &Env,
    arrivals: usize,
    cap: usize,
    workers: usize,
    notify_on_close: bool,
) {
    let state = env.mutex(QueueState {
        items: Vec::new(),
        closed: false,
        served: Vec::new(),
        shed: Vec::new(),
    });
    let cv = env.condvar();

    let mut joins = Vec::new();

    // Workers: the pop() loop of worker_loop — wait while empty and
    // open, serve, exit once closed and drained. (FIFO via remove(0),
    // matching the VecDeque pop_front.)
    for _ in 0..workers {
        let state = state.clone();
        let cv = cv.clone();
        joins.push(env.spawn(move || loop {
            let mut g = state.lock();
            loop {
                if !g.items.is_empty() {
                    let item = g.items.remove(0);
                    g.served.push(item);
                    break;
                }
                if g.closed {
                    return;
                }
                cv.wait(&mut g);
            }
            // The real worker serves the session outside the lock; the
            // model's "service" is the recording above.
            drop(g);
        }));
    }

    // Acceptor: try_push with shedding, then close.
    {
        let state = state.clone();
        let cv = cv.clone();
        joins.push(env.spawn(move || {
            for session in 0..arrivals {
                let mut g = state.lock();
                if g.items.len() >= cap {
                    g.shed.push(session);
                } else {
                    g.items.push(session);
                    drop(g);
                    cv.notify_one();
                }
            }
            state.lock().closed = true;
            if notify_on_close {
                cv.notify_all();
            }
        }));
    }

    for j in joins {
        j.join();
    }

    let s = state.lock();
    let mut all: Vec<usize> = s.served.iter().chain(s.shed.iter()).copied().collect();
    all.sort_unstable();
    assert_eq!(
        all,
        (0..arrivals).collect::<Vec<_>>(),
        "every session is served or shed exactly once"
    );
    assert!(s.items.is_empty(), "no session stranded in a closed queue");
    if cap > arrivals {
        // With headroom for every arrival the shedding path must never
        // trigger, under any schedule.
        assert!(s.shed.is_empty(), "spurious shed with spare capacity");
    }
}

#[test]
fn handoff_serves_or_sheds_every_session_under_every_schedule() {
    // 3 arrivals through a capacity-1 queue with 2 workers: shedding,
    // the contended pop, and the close-time drain all engage.
    let r = explore(cfg(2), |env| run_handoff_model(env, 3, 1, 2, true));
    assert!(r.complete, "schedule space not exhausted: {r:?}");
    assert!(r.executions > 10, "model too small to mean anything: {r:?}");
}

#[test]
fn handoff_with_spare_capacity_never_sheds() {
    let r = explore(cfg(2), |env| run_handoff_model(env, 2, 4, 1, true));
    assert!(r.complete, "schedule space not exhausted: {r:?}");
}

/// The broken twin: close() without its notify_all. A worker parked on
/// the condvar after the last push never wakes — the explorer must find
/// that schedule and report the deadlock.
#[test]
#[should_panic(expected = "deadlock")]
fn close_without_notify_wedges_a_parked_worker() {
    explore(cfg(2), |env| run_handoff_model(env, 1, 1, 2, false));
}
