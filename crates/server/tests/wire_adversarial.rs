//! Adversarial framing: whatever bytes a client sends, the server
//! answers with a typed protocol error or drops the session — it never
//! panics, never over-allocates, and never wedges the pool. Each test
//! finishes by completing a clean session, proving the server survived.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use itag_core::config::EngineConfig;
use itag_core::engine::ITagEngine;
use itag_server::client::Client;
use itag_server::frame::{decode_payload, write_frame, FrameReader, ReadOutcome};
use itag_server::proto::{ErrorCode, Request, Response, PROTOCOL_VERSION};
use itag_server::server::{serve, ServerConfig, ServerHandle};

/// A single-worker server: if any hostile session wedged or killed its
/// worker, the follow-up health check could never complete.
fn single_worker_server() -> ServerHandle {
    let engine = ITagEngine::new(EngineConfig::in_memory(3)).expect("engine");
    serve(
        engine,
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            queue_capacity: 16,
            max_frame: 1 << 20,
            ..ServerConfig::default()
        },
    )
    .expect("serve")
}

/// Proves the server is still serving. Retries a bounded number of Busy
/// sheds: under a connection storm the queue may legitimately be full,
/// and a shed is the contract working — only a persistent failure to
/// serve (or any panic) fails the check.
fn health_check(handle: &ServerHandle) {
    let mut last = None;
    for _ in 0..50 {
        match Client::connect(handle.addr()) {
            Ok(mut c) => {
                c.ping().expect("health ping");
                c.quit().expect("health quit");
                return;
            }
            Err(itag_server::client::ClientError::Busy) => {
                last = Some("busy");
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(e) => panic!("health connect: {e}"),
        }
    }
    panic!("server never recovered: last outcome {last:?}");
}

fn raw_connect(handle: &ServerHandle) -> TcpStream {
    let s = TcpStream::connect(handle.addr()).expect("raw connect");
    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    s
}

/// Reads one response frame off a raw stream.
fn read_response(s: &mut TcpStream) -> Option<Response> {
    let mut fr = FrameReader::new(1 << 20);
    loop {
        match fr.read(s) {
            Ok(ReadOutcome::Frame(p)) => {
                return Some(decode_payload(&p).expect("response decodes"))
            }
            Ok(ReadOutcome::TimedOut) => continue,
            Ok(ReadOutcome::Eof) => return None,
            Err(e) => panic!("client-side framing error: {e}"),
        }
    }
}

fn hello_frame() -> Vec<u8> {
    let mut out = Vec::new();
    write_frame(
        &mut out,
        &Request::Hello {
            version: PROTOCOL_VERSION,
        },
        1 << 20,
    )
    .unwrap();
    out
}

#[test]
fn oversized_length_prefix_is_refused_without_allocation() {
    let handle = single_worker_server();
    let mut s = raw_connect(&handle);
    // Declares a 1 TiB frame. The server must refuse at the prefix —
    // were it to allocate first, a handful of these would OOM the box.
    let mut prefix = Vec::new();
    itag_store::codec::write_uvarint(&mut prefix, 1 << 40);
    s.write_all(&prefix).unwrap();
    match read_response(&mut s) {
        Some(Response::Error(e)) => assert_eq!(e.code, ErrorCode::Malformed),
        None => {} // dropped without a reply is also within contract
        other => panic!("unexpected {other:?}"),
    }
    health_check(&handle);
    handle.shutdown();
}

#[test]
fn garbage_varint_prefix_is_refused() {
    let handle = single_worker_server();
    let mut s = raw_connect(&handle);
    // Eleven continuation bytes: not a u64 varint under any decoding.
    s.write_all(&[0xff; 11]).unwrap();
    match read_response(&mut s) {
        Some(Response::Error(e)) => assert_eq!(e.code, ErrorCode::Malformed),
        None => {}
        other => panic!("unexpected {other:?}"),
    }
    health_check(&handle);
    handle.shutdown();
}

#[test]
fn mid_frame_disconnect_is_survived() {
    let handle = single_worker_server();
    // Declared 100-byte payload, deliver 10, vanish.
    {
        let mut s = raw_connect(&handle);
        let mut bytes = Vec::new();
        itag_store::codec::write_uvarint(&mut bytes, 100);
        bytes.extend_from_slice(&[0xab; 10]);
        s.write_all(&bytes).unwrap();
    }
    // Disconnect mid-varint (continuation bit left dangling).
    {
        let mut s = raw_connect(&handle);
        s.write_all(&[0x80, 0x80]).unwrap();
    }
    health_check(&handle);
    let report = handle.shutdown();
    assert!(report.stats.framing_errors >= 2);
}

/// The serbin torn-input idiom lifted to the socket: every proper prefix
/// of a valid Hello frame, then EOF. No cut may harm the server.
#[test]
fn cut_sweep_of_a_valid_hello_never_harms_the_server() {
    let handle = single_worker_server();
    let frame = hello_frame();
    for cut in 0..frame.len() {
        let mut s = raw_connect(&handle);
        s.write_all(&frame[..cut]).unwrap();
        drop(s);
    }
    health_check(&handle);
    handle.shutdown();
}

#[test]
fn valid_frame_with_garbage_payload_answers_malformed_and_session_continues() {
    let handle = single_worker_server();
    let mut s = raw_connect(&handle);
    // A well-framed payload that decodes to no known request.
    let garbage = [0xde, 0xad, 0xbe, 0xef, 0x99];
    let mut bytes = Vec::new();
    itag_store::codec::write_uvarint(&mut bytes, garbage.len() as u64);
    bytes.extend_from_slice(&garbage);
    s.write_all(&bytes).unwrap();
    match read_response(&mut s) {
        Some(Response::Error(e)) => assert_eq!(e.code, ErrorCode::Malformed),
        other => panic!("expected Malformed, got {other:?}"),
    }
    // Frame alignment is intact: the same socket can still handshake.
    s.write_all(&hello_frame()).unwrap();
    match read_response(&mut s) {
        Some(Response::HelloOk { version }) => assert_eq!(version, PROTOCOL_VERSION),
        other => panic!("expected HelloOk after recovery, got {other:?}"),
    }
    drop(s);
    health_check(&handle);
    handle.shutdown();
}

#[test]
fn unknown_protocol_version_is_refused_and_closed() {
    let handle = single_worker_server();
    let mut s = raw_connect(&handle);
    let mut out = Vec::new();
    write_frame(&mut out, &Request::Hello { version: 99 }, 1 << 20).unwrap();
    s.write_all(&out).unwrap();
    match read_response(&mut s) {
        Some(Response::Error(e)) => {
            assert_eq!(e.code, ErrorCode::Version);
            assert!(e.message.contains("99"), "{}", e.message);
        }
        other => panic!("expected version refusal, got {other:?}"),
    }
    // The server closes after a version refusal.
    let mut rest = Vec::new();
    assert_eq!(s.read_to_end(&mut rest).unwrap_or(0), 0);
    health_check(&handle);
    handle.shutdown();
}

#[test]
fn requests_before_hello_are_refused() {
    let handle = single_worker_server();
    let mut s = raw_connect(&handle);
    let mut out = Vec::new();
    write_frame(&mut out, &Request::Ping, 1 << 20).unwrap();
    s.write_all(&out).unwrap();
    match read_response(&mut s) {
        Some(Response::Error(e)) => assert_eq!(e.code, ErrorCode::Version),
        other => panic!("expected pre-hello refusal, got {other:?}"),
    }
    health_check(&handle);
    handle.shutdown();
}

#[test]
fn random_byte_storms_never_take_the_server_down() {
    let handle = single_worker_server();
    // Deterministic xorshift junk — no external RNG needed.
    let mut state = 0x9e3779b97f4a7c15u64;
    for round in 0..20 {
        let mut junk = Vec::with_capacity(64 + round * 16);
        for _ in 0..junk.capacity() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            junk.push(state as u8);
        }
        let mut s = raw_connect(&handle);
        let _ = s.write_all(&junk);
        drop(s);
    }
    health_check(&handle);
    handle.shutdown();
}
