//! Schedule-explorer model of the graceful-drain protocol in
//! `itag_server::server::serve_session`: after shutdown is requested a
//! session may finish in-flight frames, but once the drain deadline
//! passes it must be cut.
//!
//! Shape-faithful to the serving loop: one critical section takes a
//! frame and serves it (the model's "serve" is a counter bump), the
//! blocked read is a condvar wait woken by new frames / EOF / the
//! shutdown tick, an idle wake with `stop` set exits, and — the fix
//! under test — a post-frame check exits once `stop` is set and the
//! deadline has passed. The invariant: under every schedule, at most
//! one frame is served after the deadline (the one already in flight).
//! The `should_panic` twin removes the post-frame check, and the
//! explorer finds the drain-forever schedule where a streaming client
//! keeps a stopped worker serving past the deadline — the exact latent
//! bug the drain deadline was added to kill (the old loop only noticed
//! `stop` on read *timeouts*, which a busy session never hits).

use itag_crowd::model::{explore, Config, Env};

fn cfg(preemption_bound: usize) -> Config {
    Config {
        preemption_bound,
        ..Config::default()
    }
}

#[derive(Default)]
struct DrainState {
    frames_pending: usize,
    served_total: usize,
    /// Frames served in a critical section that already saw
    /// `deadline_passed` — the quantity the drain contract bounds.
    served_after_deadline: usize,
    stop: bool,
    deadline_passed: bool,
    eof: bool,
    session_done: bool,
    cut: bool,
}

/// `frames` is how many the client will stream; `close_after` makes the
/// client send EOF when done (a polite client); `shutdown` runs the
/// stop + deadline-tick thread; `check_drain` is the post-frame deadline
/// check — the fix. Invariants are asserted after all threads join, so a
/// violation panics inside `explore` and is pinned to a schedule.
fn run_drain_model(env: &Env, frames: usize, close_after: bool, shutdown: bool, check_drain: bool) {
    let state = env.mutex(DrainState::default());
    let cv = env.condvar();
    let mut joins = Vec::new();

    // The session worker: serve frames until EOF, an idle wake under
    // `stop`, or (with the fix) the post-frame drain check.
    {
        let state = state.clone();
        let cv = cv.clone();
        joins.push(env.spawn(move || loop {
            let mut g = state.lock();
            loop {
                if g.frames_pending > 0 {
                    g.frames_pending -= 1;
                    g.served_total += 1;
                    if g.deadline_passed {
                        g.served_after_deadline += 1;
                    }
                    break;
                }
                if g.eof || g.stop {
                    // EOF, or a read timeout with shutdown requested: an
                    // idle session has nothing to drain.
                    g.session_done = true;
                    return;
                }
                cv.wait(&mut g);
            }
            // Post-frame drain check — the line under test.
            if check_drain && g.stop && g.deadline_passed {
                g.cut = true;
                g.session_done = true;
                return;
            }
            drop(g);
        }));
    }

    // The client: streams frames as fast as the schedule allows, bailing
    // out if the server already ended the session.
    {
        let state = state.clone();
        let cv = cv.clone();
        joins.push(env.spawn(move || {
            for _ in 0..frames {
                let mut g = state.lock();
                if g.session_done {
                    return;
                }
                g.frames_pending += 1;
                drop(g);
                cv.notify_all();
            }
            if close_after {
                state.lock().eof = true;
                cv.notify_all();
            }
        }));
    }

    // Shutdown: request stop, then (separately interleavable) the drain
    // deadline expires. Both wake the worker, mirroring how the real
    // loop observes them on its next read wake.
    if shutdown {
        let state = state.clone();
        let cv = cv.clone();
        joins.push(env.spawn(move || {
            state.lock().stop = true;
            cv.notify_all();
            state.lock().deadline_passed = true;
            cv.notify_all();
        }));
    }

    for j in joins {
        j.join();
    }

    let s = state.lock();
    assert!(s.session_done, "worker exited the loop without finishing");
    assert!(
        s.served_after_deadline <= 1,
        "drain-forever: {} frames served after the drain deadline",
        s.served_after_deadline
    );
    if !shutdown {
        assert_eq!(
            s.served_total, frames,
            "without shutdown every streamed frame is served"
        );
        assert!(!s.cut, "nothing to cut without a shutdown");
    }
}

/// The fixed protocol: a streaming client that never closes cannot keep
/// the session alive past the deadline, under any interleaving of
/// frames, stop, and the deadline tick.
#[test]
fn drain_is_bounded_under_every_schedule() {
    let r = explore(cfg(2), |env| run_drain_model(env, 3, false, true, true));
    assert!(r.complete, "schedule space not exhausted: {r:?}");
    assert!(r.executions > 10, "model too small to mean anything: {r:?}");
}

/// No shutdown: a polite client's frames are all served and the session
/// ends at EOF — the drain machinery must not eat normal traffic.
#[test]
fn without_shutdown_every_frame_is_served() {
    let r = explore(cfg(2), |env| run_drain_model(env, 3, true, false, true));
    assert!(r.complete, "schedule space not exhausted: {r:?}");
}

/// The broken twin: no post-frame deadline check (the pre-fix serving
/// loop, which only noticed `stop` on read timeouts). The explorer must
/// find a schedule where the streaming client keeps the stopped worker
/// serving past the deadline.
#[test]
#[should_panic(expected = "drain-forever")]
fn missing_deadline_check_serves_forever_past_the_deadline() {
    explore(cfg(2), |env| run_drain_model(env, 3, false, true, false));
}
