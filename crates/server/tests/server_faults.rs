//! Serving-layer fault injection: the `server.accept` and
//! `server.session_write` sites, and read-only degradation when the
//! engine reports a storage fault on the write path.
//!
//! Every test in this binary arms the process-global fault plan (the
//! `ArmedFaults` guard serializes them); no fault-free test may live
//! here. See `crates/store/tests/fault_torture.rs` for the rule.

#![cfg(feature = "faults")]

use std::time::Duration;

use itag_core::config::EngineConfig;
use itag_core::engine::ITagEngine;
use itag_server::client::{Client, ClientError, RetryPolicy};
use itag_server::proto::ErrorCode;
use itag_server::server::{serve, ServerConfig};
use itag_store::faults::{self, FaultKind, FaultPlan, FaultSpec, Trigger};
use itag_store::testutil::TestDir;

fn arm_one(site: &'static str, kind: FaultKind, trigger: Trigger) -> faults::ArmedFaults {
    faults::arm(&FaultPlan::new().site(site, FaultSpec::new(kind, trigger)))
}

fn quick_cfg() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(20),
        ..ServerConfig::default()
    }
}

/// An injected accept fault drops the connection on the floor; the
/// typed client's retry policy rides straight through it.
#[test]
fn accept_fault_drops_connection_and_retry_rides_through() {
    let engine = ITagEngine::new(EngineConfig::in_memory(1)).expect("engine");
    let handle = serve(engine, ("127.0.0.1", 0), quick_cfg()).expect("serve");
    let guard = arm_one(faults::SERVER_ACCEPT, FaultKind::Eio, Trigger::Once);

    let policy = RetryPolicy {
        max_attempts: 10,
        base: Duration::from_millis(10),
        cap: Duration::from_millis(100),
        seed: 3,
    };
    let mut client =
        Client::connect_retrying(handle.addr(), 4 << 20, Duration::from_secs(2), policy)
            .expect("retry should get past the dropped accept");
    client.ping().expect("ping");
    assert_eq!(
        guard.fired(faults::SERVER_ACCEPT),
        1,
        "accept fault never fired"
    );
    drop(guard);

    let report = handle.shutdown();
    assert_eq!(report.stats.accept_faults, 1);
    assert_eq!(report.stats.worker_panics, 0);
}

/// An injected session-write fault cuts the session mid-response; the
/// client sees a transient connection error (not a hang, not garbage)
/// and the failure is counted.
#[test]
fn session_write_fault_cuts_session_and_is_counted() {
    let engine = ITagEngine::new(EngineConfig::in_memory(2)).expect("engine");
    let handle = serve(engine, ("127.0.0.1", 0), quick_cfg()).expect("serve");

    // Nth(2): the HelloOk write passes, the first Pong write dies.
    let guard = arm_one(
        faults::SERVER_SESSION_WRITE,
        FaultKind::Eio,
        Trigger::Nth(2),
    );
    let mut client = Client::connect(handle.addr()).expect("handshake passes");
    let err = client.ping().expect_err("pong write should be cut");
    assert!(
        err.is_transient(),
        "cut session should look transient, got {err}"
    );
    assert_eq!(guard.fired(faults::SERVER_SESSION_WRITE), 1);
    drop(guard);

    // The server itself is healthy: fresh sessions serve normally.
    let mut again = Client::connect(handle.addr()).expect("reconnect");
    again.ping().expect("ping after fault cleared");

    let report = handle.shutdown();
    assert_eq!(report.stats.session_write_failures, 1);
    assert_eq!(report.stats.worker_panics, 0);
}

/// The degradation contract end to end: a storage fault on a write
/// request flips the server read-only. Reads keep serving, writes get
/// the typed `Degraded` code (and are counted), and the latch is visible
/// on the handle.
#[test]
fn storage_fault_degrades_server_to_read_only() {
    let dir = TestDir::new("server-degraded");
    let engine =
        ITagEngine::new(EngineConfig::durable(3, dir.path().to_path_buf())).expect("engine");
    let handle = serve(engine, ("127.0.0.1", 0), quick_cfg()).expect("serve");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Healthy first: a write lands, a read answers.
    let provider = client.register_provider("alice").expect("healthy write");
    client.ping().expect("healthy read");
    assert!(!handle.degraded());

    // Break the WAL under the engine. After(0) fires on every poll, so
    // the store stays broken for as long as the guard lives.
    let guard = arm_one(faults::WAL_APPEND, FaultKind::Eio, Trigger::After(0));
    let err = client
        .register_provider("bob")
        .expect_err("write over a broken WAL must fail");
    match err {
        ClientError::Server(w) => assert_eq!(
            w.code,
            ErrorCode::Engine,
            "first failure carries the engine error: {w}"
        ),
        other => panic!("expected a typed server error, got {other}"),
    }
    assert!(handle.degraded(), "storage fault did not latch degradation");

    // Writes are now refused up front with the dedicated code — the
    // engine (and its broken store) is not even consulted.
    let fired_before = guard.fired(faults::WAL_APPEND);
    for _ in 0..3 {
        match client.register_provider("carol") {
            Err(ClientError::Server(w)) => assert_eq!(w.code, ErrorCode::Degraded, "{w}"),
            other => panic!("expected Degraded refusal, got {other:?}"),
        }
    }
    assert_eq!(
        guard.fired(faults::WAL_APPEND),
        fired_before,
        "degraded refusals must not touch the store"
    );

    // Reads keep serving the applied state.
    client.ping().expect("read while degraded");
    let _ = provider; // the registered id remains visible via reads
    client.checksum().expect("checksum while degraded");
    drop(guard);

    // Still latched after the fault clears — degradation is an operator
    // decision to undo, not something the server un-decides silently.
    assert!(handle.degraded());
    handle.set_degraded(false);
    assert!(!handle.degraded());

    let report = handle.shutdown();
    assert_eq!(report.stats.degraded_refusals, 3);
    assert_eq!(report.stats.worker_panics, 0);
}
