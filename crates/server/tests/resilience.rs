//! Serving-layer resilience without fault injection: graceful drain
//! under a streaming client, idle-session reaping, shed-failure
//! accounting, and client retry against a genuinely busy server.
//!
//! Nothing in this binary arms the fault layer, so these tests run
//! concurrently like any other integration tests.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use itag_core::config::EngineConfig;
use itag_core::engine::ITagEngine;
use itag_server::client::{Client, RetryPolicy};
use itag_server::frame::write_frame;
use itag_server::proto::{Request, PROTOCOL_VERSION};
use itag_server::server::{serve, ServerConfig};

fn engine(seed: u64) -> ITagEngine {
    ITagEngine::new(EngineConfig::in_memory(seed)).expect("engine")
}

fn quick_cfg() -> ServerConfig {
    ServerConfig {
        read_timeout: Duration::from_millis(20),
        ..ServerConfig::default()
    }
}

/// The drain contract: a client that streams requests forever must not
/// stall shutdown past the drain deadline. Before the deadline existed
/// this test hung — the stop flag was only polled on read *timeouts*,
/// which a busy session never hits.
#[test]
fn shutdown_is_bounded_against_a_streaming_client() {
    // Long read timeout relative to the drain deadline: once shutdown is
    // requested, the only way out of a continuously-fed session is the
    // deadline cut, not an incidental read timeout.
    let cfg = ServerConfig {
        drain_deadline: Duration::from_millis(150),
        read_timeout: Duration::from_millis(400),
        ..ServerConfig::default()
    };
    let handle = serve(engine(1), ("127.0.0.1", 0), cfg).expect("serve");
    let addr = handle.addr();

    // A raw session that pumps Ping frames flat out; a second thread
    // drains responses so backpressure never blocks the server's writes.
    let streamer = std::thread::spawn(move || {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut w = stream.try_clone().expect("clone");
        let mut r = stream;
        let drainer = std::thread::spawn(move || {
            let mut scratch = [0u8; 4096];
            loop {
                match r.read(&mut scratch) {
                    Ok(0) | Err(_) => return,
                    Ok(_) => {}
                }
            }
        });
        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
        };
        write_frame(&mut w, &hello, 1 << 20).expect("hello");
        w.flush().expect("flush");
        while write_frame(&mut w, &Request::Ping, 1 << 20).is_ok() && w.flush().is_ok() {}
        drainer.join().expect("drainer");
    });

    // Let the streamer get going, then demand shutdown and time it.
    std::thread::sleep(Duration::from_millis(100));
    let started = Instant::now();
    let report = handle.shutdown();
    let took = started.elapsed();
    assert!(
        took < Duration::from_secs(5),
        "shutdown took {took:?} against a streaming client — drain deadline is not working"
    );
    assert_eq!(
        report.stats.drain_cut, 1,
        "the streaming session should have been cut at the deadline"
    );
    assert_eq!(report.stats.worker_panics, 0);
    streamer.join().expect("streamer thread");
}

/// A client that stops sending but never times out is still drained
/// promptly on shutdown, and is *not* counted as drain-cut (nothing was
/// in flight).
#[test]
fn idle_sessions_end_on_shutdown_without_drain_cut() {
    let handle = serve(engine(2), ("127.0.0.1", 0), quick_cfg()).expect("serve");
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.ping().expect("ping");
    // Session now sits idle in its read loop.
    std::thread::sleep(Duration::from_millis(60));
    let report = handle.shutdown();
    assert_eq!(report.stats.drain_cut, 0);
    assert_eq!(report.stats.worker_panics, 0);
}

/// Idle reaping: with `idle_timeout` set, a session that goes quiet is
/// cut and counted; activity resets the clock.
#[test]
fn idle_sessions_are_reaped_after_the_timeout() {
    let cfg = ServerConfig {
        idle_timeout: Some(Duration::from_millis(120)),
        ..quick_cfg()
    };
    let handle = serve(engine(3), ("127.0.0.1", 0), cfg).expect("serve");
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Stay just under the limit twice: activity must reset the clock.
    for _ in 0..2 {
        std::thread::sleep(Duration::from_millis(70));
        client.ping().expect("active session must not be reaped");
    }

    // Now go quiet past the limit; the server should cut us.
    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().reaped_idle == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(handle.stats().reaped_idle, 1, "idle session never reaped");
    assert!(client.ping().is_err(), "reaped session still answers");
    handle.shutdown();
}

/// Satellite regression: shed()'s best-effort Busy frame can itself fail
/// to write, and that failure must be counted, not dropped. A 1-byte
/// frame cap makes the encoded Busy response overflow `write_frame`
/// deterministically, and zero workers + zero queue capacity makes every
/// connection shed.
#[test]
fn failed_busy_writes_are_counted_not_swallowed() {
    let cfg = ServerConfig {
        workers: 0,
        queue_capacity: 0,
        max_frame: 0,
        ..quick_cfg()
    };
    let handle = serve(engine(4), ("127.0.0.1", 0), cfg).expect("serve");

    for _ in 0..3 {
        // Raw connect: the server sheds before reading anything, so no
        // handshake is needed (and a typed Client would refuse the
        // zero frame cap anyway).
        let mut s = TcpStream::connect(handle.addr()).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(2)))
            .expect("timeout");
        let mut buf = Vec::new();
        let _ = s.read_to_end(&mut buf);
        assert!(buf.is_empty(), "no Busy frame fits in a zero-byte cap");
    }

    let deadline = Instant::now() + Duration::from_secs(5);
    while handle.stats().shed_write_failures < 3 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let stats = handle.stats();
    assert_eq!(stats.shed, 3);
    assert_eq!(
        stats.shed_write_failures, 3,
        "failed Busy writes were silently dropped"
    );
    handle.shutdown();
}

/// Client retry end-to-end: a server with no capacity sheds the first
/// connections; once capacity exists, `connect_retrying` gets through
/// where a single-shot connect already failed.
#[test]
fn connect_retrying_rides_out_busy() {
    // One worker, one queue slot: with the worker pinned and the slot
    // full, every further connection sheds with Busy.
    let cfg = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..quick_cfg()
    };
    let handle = serve(engine(5), ("127.0.0.1", 0), cfg).expect("serve");
    let addr = handle.addr();

    // Pin the single worker with a live session.
    let mut pin = Client::connect(addr).expect("first connect");
    pin.ping().expect("ping");

    // Fill the queue slot with a connection that is already closed by
    // the time a worker reaches it (instant EOF, no worker time wasted).
    let filler = TcpStream::connect(addr).expect("filler connect");
    std::thread::sleep(Duration::from_millis(50));
    drop(filler);

    // Single-shot connects are shed now.
    assert!(
        matches!(Client::connect(addr), Err(itag_server::ClientError::Busy)),
        "expected Busy while the only worker is pinned"
    );

    // Release the worker shortly; the retrying connect should get in.
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        pin.quit().expect("quit");
    });
    let policy = RetryPolicy {
        max_attempts: 20,
        base: Duration::from_millis(25),
        cap: Duration::from_millis(200),
        seed: 9,
    };
    let mut client = Client::connect_retrying(addr, 4 << 20, Duration::from_secs(5), policy)
        .expect("retrying connect should eventually get through");
    client.ping().expect("ping after retry");
    releaser.join().expect("releaser");

    let report = handle.shutdown();
    assert!(
        report.stats.shed >= 1,
        "the scenario never exercised shedding"
    );
}
