//! Strongly-typed identifiers.
//!
//! Every subsystem keys its maps and tables with these newtypes; the
//! [`itag_store::KeyCodec`] impls make them directly usable as big-endian
//! order-preserving storage keys.

use itag_store::error::{Result, StoreError};
use itag_store::table::{FixedWidthKey, KeyCodec};
use serde::{Deserialize, Serialize};

macro_rules! id_u32 {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw index value.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name), self.0)
            }
        }

        impl KeyCodec for $name {
            fn encode_into(&self, out: &mut Vec<u8>) {
                self.0.encode_into(out);
            }

            fn decode(bytes: &[u8]) -> Result<Self> {
                Ok($name(u32::decode(bytes)?))
            }
        }

        impl FixedWidthKey for $name {
            const WIDTH: usize = 4;
        }
    };
}

id_u32!(
    /// A taggable resource (`r_i` in the paper): a Web URL, image, video,
    /// sound clip or scientific paper.
    ResourceId
);
id_u32!(
    /// A tag (`t_j` in the paper), interned through
    /// [`crate::tag::TagDictionary`].
    TagId
);
id_u32!(
    /// A tagger — a crowdsourcing worker or demo-audience participant.
    TaggerId
);
id_u32!(
    /// A resource provider (website administrator / dataset owner).
    ProviderId
);
id_u32!(
    /// A provider's tagging project (budget + resources + strategy).
    ProjectId
);

/// A post: one tagging operation on one resource. 64-bit because a busy
/// deployment accumulates posts far faster than any other entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PostId(pub u64);

impl From<u64> for PostId {
    fn from(v: u64) -> Self {
        PostId(v)
    }
}

impl std::fmt::Display for PostId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PostId{}", self.0)
    }
}

impl KeyCodec for PostId {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.0.encode_into(out);
    }

    fn decode(bytes: &[u8]) -> Result<Self> {
        Ok(PostId(u64::decode(bytes)?))
    }

    fn encoded(&self) -> Vec<u8> {
        self.0.to_be_bytes().to_vec()
    }
}

impl FixedWidthKey for PostId {
    const WIDTH: usize = 8;
}

/// Guard against accidentally widening an id type: these are embedded in
/// millions of posts.
const _: () = {
    assert!(std::mem::size_of::<ResourceId>() == 4);
    assert!(std::mem::size_of::<PostId>() == 8);
};

#[allow(unused_imports)]
use itag_store as _; // silence unused-dep lint in case of cfg churn

#[allow(dead_code)]
fn _key_codec_error_is_reachable() -> StoreError {
    StoreError::Codec(String::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_as_keys() {
        let r = ResourceId(0xDEAD_BEEF);
        assert_eq!(ResourceId::decode(&r.encoded()).unwrap(), r);
        let p = PostId(u64::MAX - 1);
        assert_eq!(PostId::decode(&p.encoded()).unwrap(), p);
    }

    #[test]
    fn id_key_order_matches_numeric_order() {
        let ids = [0u32, 1, 100, 65_536, u32::MAX];
        let mut encoded: Vec<Vec<u8>> = ids.iter().map(|v| ResourceId(*v).encoded()).collect();
        let sorted = encoded.clone();
        encoded.sort();
        assert_eq!(encoded, sorted);
    }

    #[test]
    fn display_is_debuggable() {
        assert_eq!(ResourceId(3).to_string(), "ResourceId3");
        assert_eq!(PostId(9).to_string(), "PostId9");
    }

    #[test]
    fn wrong_width_key_decode_fails() {
        assert!(ResourceId::decode(&[1, 2, 3]).is_err());
        assert!(PostId::decode(&[0; 4]).is_err());
    }
}
