//! Tag interning.
//!
//! Tags are short free-text strings ("rust", "database", …). All internal
//! processing uses dense [`TagId`]s; the dictionary is the only place that
//! stores the text, so posts stay small (a handful of `u32`s).

use crate::ids::TagId;
use itag_store::codec::FxHashMap;
use serde::{Deserialize, Serialize};

/// Bidirectional `text ↔ TagId` mapping.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct TagDictionary {
    texts: Vec<String>,
    #[serde(skip)]
    index: FxHashMap<String, TagId>,
}

impl TagDictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        TagDictionary::default()
    }

    /// Pre-populates `n` synthetic tags named `tag-0000…`, the vocabulary
    /// used by the generated Delicious workload.
    pub fn synthetic(n: usize) -> Self {
        let mut d = TagDictionary::new();
        for i in 0..n {
            d.intern(&format!("tag-{i:05}"));
        }
        d
    }

    /// Returns the id for `text`, interning it if new. Tag text is
    /// normalized the way tagging sites do: trimmed and lower-cased.
    pub fn intern(&mut self, text: &str) -> TagId {
        let norm = Self::normalize(text);
        if let Some(&id) = self.index.get(&norm) {
            return id;
        }
        let id = TagId(self.texts.len() as u32);
        self.index.insert(norm.clone(), id);
        self.texts.push(norm);
        id
    }

    /// Looks up an existing tag without interning.
    pub fn lookup(&self, text: &str) -> Option<TagId> {
        self.index.get(&Self::normalize(text)).copied()
    }

    /// The text of `id`, if it exists.
    pub fn text(&self, id: TagId) -> Option<&str> {
        self.texts.get(id.index()).map(String::as_str)
    }

    /// Number of distinct tags.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// True when no tags are interned.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Rebuilds the text→id index after deserialization (the map is
    /// `#[serde(skip)]`; only the text table is persisted).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .texts
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), TagId(i as u32)))
            .collect();
    }

    fn normalize(text: &str) -> String {
        text.trim().to_lowercase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = TagDictionary::new();
        let a = d.intern("rust");
        let b = d.intern("rust");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn normalization_merges_case_and_whitespace() {
        let mut d = TagDictionary::new();
        let a = d.intern("Rust ");
        let b = d.intern("  rUsT");
        assert_eq!(a, b);
        assert_eq!(d.text(a), Some("rust"));
    }

    #[test]
    fn lookup_does_not_intern() {
        let d = TagDictionary::new();
        assert!(d.lookup("nope").is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut d = TagDictionary::new();
        for i in 0..100 {
            assert_eq!(d.intern(&format!("t{i}")), TagId(i));
        }
    }

    #[test]
    fn synthetic_vocab_has_requested_size() {
        let d = TagDictionary::synthetic(500);
        assert_eq!(d.len(), 500);
        assert_eq!(d.lookup("tag-00499"), Some(TagId(499)));
    }

    #[test]
    fn serde_roundtrip_with_index_rebuild() {
        let mut d = TagDictionary::new();
        d.intern("alpha");
        d.intern("beta");
        let bytes = itag_store::serbin::to_bytes(&d).unwrap();
        let mut back: TagDictionary = itag_store::serbin::from_bytes(&bytes).unwrap();
        back.rebuild_index();
        assert_eq!(back.lookup("beta"), Some(TagId(1)));
        assert_eq!(back.text(TagId(0)), Some("alpha"));
    }
}
