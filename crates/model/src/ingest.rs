//! Ingesting a *real* tagging trace into a [`Dataset`].
//!
//! The synthetic generator substitutes for the Delicious 2010 corpus, but
//! a downstream user who owns an actual trace (Delicious dumps, a Flickr
//! export, …) should not need the simulator at all. This module builds a
//! campaign-ready [`Dataset`] from recorded events:
//!
//! * resources and the tag dictionary are inferred from the events;
//! * the events become the pre-campaign posts;
//! * popularity weights are the observed post shares;
//! * the latent distribution of each resource is **estimated** from its
//!   final rfd with add-one smoothing — an estimate, not ground truth, so
//!   oracle-metric results on ingested data measure convergence *to the
//!   trace consensus*, which is the only truth available outside a
//!   simulator. This caveat is documented in DESIGN.md §4.

use crate::dataset::{Dataset, PostFactory};
use crate::ids::{ResourceId, TagId};
use crate::resource::{Resource, ResourceKind};
use crate::tag::TagDictionary;
use crate::trace::Trace;
use crate::vocab::TagDistribution;
use itag_store::codec::FxHashMap;

/// A raw tagging event from an external source (pre-interning).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawEvent {
    /// Timestamp (any monotone unit).
    pub at: u64,
    /// External resource key (URL, photo id, …).
    pub resource: String,
    /// External tagger key.
    pub tagger: String,
    /// Tag texts as entered by the tagger.
    pub tags: Vec<String>,
}

/// Result of an ingestion run.
#[derive(Debug)]
pub struct Ingested {
    pub dataset: Dataset,
    /// External key of each [`ResourceId`] (aligned by index).
    pub resource_keys: Vec<String>,
    /// Number of events dropped because they carried no usable tag.
    pub dropped_events: usize,
}

/// Builds a [`Dataset`] from raw events (see module docs for semantics).
///
/// Events are processed in the given order; they need not be sorted.
/// Resources and taggers are assigned dense ids in order of first
/// appearance. Returns `None` when no event carries a usable tag.
pub fn ingest(events: &[RawEvent], kind: ResourceKind) -> Option<Ingested> {
    let mut dictionary = TagDictionary::new();
    let mut resource_ids: FxHashMap<String, ResourceId> = FxHashMap::default();
    let mut tagger_ids: FxHashMap<String, u32> = FxHashMap::default();
    let mut resource_keys: Vec<String> = Vec::new();
    let mut per_resource_events: Vec<Vec<(u64, u32, Vec<TagId>)>> = Vec::new();
    let mut dropped = 0usize;

    for event in events {
        let tags: Vec<TagId> = event
            .tags
            .iter()
            .filter(|t| !t.trim().is_empty())
            .map(|t| dictionary.intern(t))
            .collect();
        if tags.is_empty() {
            dropped += 1;
            continue;
        }
        let next_id = resource_ids.len() as u32;
        let rid = *resource_ids
            .entry(event.resource.clone())
            .or_insert_with(|| {
                resource_keys.push(event.resource.clone());
                per_resource_events.push(Vec::new());
                ResourceId(next_id)
            });
        let next_tagger = tagger_ids.len() as u32;
        let tid = *tagger_ids
            .entry(event.tagger.clone())
            .or_insert(next_tagger);
        per_resource_events[rid.index()].push((event.at, tid, tags));
    }

    if resource_keys.is_empty() {
        return None;
    }

    let n = resource_keys.len();
    let mut resources = Vec::with_capacity(n);
    let mut latent = Vec::with_capacity(n);
    let mut popularity = Vec::with_capacity(n);
    let total_posts: usize = per_resource_events.iter().map(Vec::len).sum();

    for (i, key) in resource_keys.iter().enumerate() {
        resources.push(Resource {
            id: ResourceId(i as u32),
            kind,
            uri: key.clone(),
            description: String::new(),
        });
        // Latent estimate: the resource's final tag counts, add-one
        // smoothed over its observed support.
        let mut counts: FxHashMap<TagId, f64> = FxHashMap::default();
        for (_, _, tags) in &per_resource_events[i] {
            for &t in tags {
                *counts.entry(t).or_insert(0.0) += 1.0;
            }
        }
        let pairs: Vec<(TagId, f64)> = counts.into_iter().map(|(t, c)| (t, c + 1.0)).collect();
        latent.push(TagDistribution::new(pairs));
        popularity.push(per_resource_events[i].len() as f64 / total_posts.max(1) as f64);
    }

    // Replay events in global time order so post sequence numbers match
    // the trace.
    let mut flat: Vec<(u64, ResourceId, u32, Vec<TagId>)> = per_resource_events
        .iter()
        .enumerate()
        .flat_map(|(i, evs)| {
            evs.iter()
                .map(move |(at, tid, tags)| (*at, ResourceId(i as u32), *tid, tags.clone()))
        })
        .collect();
    flat.sort_by_key(|(at, r, _, _)| (*at, r.0));

    let mut factory = PostFactory::new(n);
    let mut initial_posts = Vec::with_capacity(flat.len());
    for (_, r, tagger, tags) in flat {
        initial_posts.push(factory.make(r, crate::ids::TaggerId(tagger), tags));
    }

    Some(Ingested {
        dataset: Dataset {
            resources,
            latent,
            popularity,
            initial_posts,
            dictionary,
        },
        resource_keys,
        dropped_events: dropped,
    })
}

/// Convenience: ingest an internal [`Trace`] (already interned ids), using
/// the trace's own tag ids with a supplied dictionary.
pub fn ingest_trace(
    trace: &Trace,
    dictionary: TagDictionary,
    kind: ResourceKind,
) -> Option<Ingested> {
    let events: Vec<RawEvent> = trace
        .events()
        .iter()
        .map(|e| RawEvent {
            at: e.at,
            resource: format!("resource-{}", e.resource.0),
            tagger: format!("tagger-{}", e.tagger.0),
            tags: e
                .tags
                .iter()
                .filter_map(|t| dictionary.text(*t).map(str::to_string))
                .collect(),
        })
        .collect();
    ingest(&events, kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, resource: &str, tagger: &str, tags: &[&str]) -> RawEvent {
        RawEvent {
            at,
            resource: resource.into(),
            tagger: tagger.into(),
            tags: tags.iter().map(|t| t.to_string()).collect(),
        }
    }

    #[test]
    fn ingestion_builds_a_consistent_dataset() {
        let events = vec![
            ev(0, "https://a", "u1", &["rust", "db"]),
            ev(1, "https://b", "u2", &["photo"]),
            ev(2, "https://a", "u2", &["rust"]),
            ev(3, "https://a", "u3", &["rust", "wal"]),
        ];
        let ingested = ingest(&events, ResourceKind::WebUrl).expect("non-empty");
        let d = &ingested.dataset;
        assert_eq!(d.len(), 2);
        assert_eq!(ingested.resource_keys, vec!["https://a", "https://b"]);
        assert_eq!(d.initial_counts(), vec![3, 1]);
        assert_eq!(ingested.dropped_events, 0);

        // Popularity reflects observed shares.
        assert!((d.popularity[0] - 0.75).abs() < 1e-12);
        // Latent estimate puts "rust" on top for resource a.
        let rust = d.dictionary.lookup("rust").unwrap();
        assert_eq!(d.latent[0].top_k(1), &[rust]);
        // Post sequence numbers follow per-resource order.
        assert_eq!(d.initial_posts[0].seq, 1);
        assert_eq!(d.initial_posts[2].seq, 2);
        assert_eq!(d.initial_posts[3].seq, 3);
    }

    #[test]
    fn empty_tag_events_are_dropped_not_fatal() {
        let events = vec![ev(0, "r", "u", &["  ", ""]), ev(1, "r", "u", &["good"])];
        let ingested = ingest(&events, ResourceKind::Image).unwrap();
        assert_eq!(ingested.dropped_events, 1);
        assert_eq!(ingested.dataset.initial_counts(), vec![1]);
    }

    #[test]
    fn all_empty_yields_none() {
        assert!(ingest(&[], ResourceKind::WebUrl).is_none());
        let only_blank = vec![ev(0, "r", "u", &[""])];
        assert!(ingest(&only_blank, ResourceKind::WebUrl).is_none());
    }

    #[test]
    fn ingested_dataset_supports_a_campaign() {
        // End-to-end smoke: the ingested dataset can drive sampling.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let events: Vec<RawEvent> = (0..50)
            .map(|i| {
                ev(
                    i,
                    &format!("r{}", i % 5),
                    &format!("u{}", i % 7),
                    ["alpha", "beta", "gamma"][..1 + (i % 3) as usize]
                        .to_vec()
                        .as_slice(),
                )
            })
            .collect();
        let ingested = ingest(&events, ResourceKind::WebUrl).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let tags = ingested.dataset.sample_honest_tags(
            ResourceId(0),
            crate::vocab::TagsPerPost::new(1, 3),
            &mut rng,
        );
        assert!(!tags.is_empty());
    }

    #[test]
    fn trace_roundtrip_through_ingest() {
        use crate::delicious::DeliciousConfig;
        let corpus = DeliciousConfig::tiny(9).generate();
        let ingested = ingest_trace(
            &corpus.eval_trace,
            corpus.dataset.dictionary.clone(),
            ResourceKind::WebUrl,
        )
        .expect("trace has events");
        assert_eq!(
            ingested.dataset.initial_posts.len(),
            corpus.eval_trace.len()
        );
        assert_eq!(ingested.dropped_events, 0);
    }
}
