//! Datasets: resources, their latent tag distributions, initial posts, and
//! summary statistics.

use crate::ids::{PostId, ResourceId, TagId, TaggerId};
use crate::post::Post;
use crate::resource::Resource;
use crate::tag::TagDictionary;
use crate::vocab::{TagDistribution, TagsPerPost};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A complete tagging corpus handed to iTag by a provider: resources, their
/// (simulation-only) latent distributions, the posts accumulated before the
/// incentive campaign starts, and the shared tag dictionary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    pub resources: Vec<Resource>,
    /// Latent distribution of `resources[i]` at the same index. This is the
    /// simulator's ground truth; strategies never read it (only the OPT
    /// oracle and the evaluation harness do).
    pub latent: Vec<TagDistribution>,
    /// Static popularity weights driving the FC strategy's tagger choice,
    /// aligned with `resources`.
    pub popularity: Vec<f64>,
    /// Posts from the pre-campaign era ("data before February 1st 2007" in
    /// the demo's Delicious protocol), ordered by `at`.
    pub initial_posts: Vec<Post>,
    pub dictionary: TagDictionary,
}

impl Dataset {
    /// Number of resources.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// True when the dataset has no resources.
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Initial post count per resource (the `c⃗` of the problem statement).
    pub fn initial_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.resources.len()];
        for p in &self.initial_posts {
            counts[p.resource.index()] += 1;
        }
        counts
    }

    /// Draws an honest post for `resource`: `n ~ TagsPerPost` distinct tags
    /// sampled from the latent distribution (the generator's noiseless
    /// tagger; noisy taggers live in `itag-crowd`).
    pub fn sample_honest_tags<R: Rng + ?Sized>(
        &self,
        resource: ResourceId,
        tpp: TagsPerPost,
        rng: &mut R,
    ) -> Vec<TagId> {
        let latent = &self.latent[resource.index()];
        let want = tpp.sample(rng).min(latent.support_len());
        let mut tags: Vec<TagId> = Vec::with_capacity(want);
        // Rejection-sample distinct tags; supports are small so a bounded
        // number of retries suffices, with a deterministic fill as backstop.
        let mut attempts = 0;
        while tags.len() < want && attempts < 16 * want {
            let t = latent.sample_tag(rng);
            if !tags.contains(&t) {
                tags.push(t);
            }
            attempts += 1;
        }
        if tags.is_empty() {
            tags.push(latent.tags()[0]);
        }
        tags
    }

    /// Summary statistics (drives the popularity figure and DESIGN claims).
    pub fn stats(&self) -> DatasetStats {
        DatasetStats::compute(&self.initial_counts())
    }
}

/// Distributional statistics of per-resource post counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    pub resources: usize,
    pub total_posts: u64,
    pub min_posts: u32,
    pub max_posts: u32,
    pub mean_posts: f64,
    pub median_posts: u32,
    /// Fraction of resources with zero posts (the "unpopular tail").
    pub zero_fraction: f64,
    /// Fraction of all posts held by the top 10% most-posted resources
    /// (the "popular head" of the paper's motivation).
    pub head_share: f64,
    /// Gini coefficient of the post-count distribution (0 = equal,
    /// →1 = concentrated).
    pub gini: f64,
}

impl DatasetStats {
    /// Computes statistics from raw per-resource post counts.
    pub fn compute(counts: &[u32]) -> Self {
        if counts.is_empty() {
            return DatasetStats {
                resources: 0,
                total_posts: 0,
                min_posts: 0,
                max_posts: 0,
                mean_posts: 0.0,
                median_posts: 0,
                zero_fraction: 0.0,
                head_share: 0.0,
                gini: 0.0,
            };
        }
        let mut sorted: Vec<u32> = counts.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let total: u64 = sorted.iter().map(|&c| c as u64).sum();
        let zero = sorted.iter().filter(|&&c| c == 0).count();
        let head_n = (n as f64 * 0.1).ceil() as usize;
        let head: u64 = sorted[n - head_n..].iter().map(|&c| c as u64).sum();

        // Gini via the sorted-rank formula:
        // G = (2 Σ_i i·x_i) / (n Σ x_i) − (n+1)/n  with i = 1..n ascending.
        let gini = if total == 0 {
            0.0
        } else {
            let weighted: f64 = sorted
                .iter()
                .enumerate()
                .map(|(i, &x)| (i as f64 + 1.0) * x as f64)
                .sum();
            (2.0 * weighted) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
        };

        DatasetStats {
            resources: n,
            total_posts: total,
            min_posts: sorted[0],
            max_posts: sorted[n - 1],
            mean_posts: total as f64 / n as f64,
            median_posts: sorted[n / 2],
            zero_fraction: zero as f64 / n as f64,
            head_share: if total == 0 {
                0.0
            } else {
                head as f64 / total as f64
            },
            gini,
        }
    }
}

/// Incrementally assigns post ids/sequence numbers while building datasets
/// and traces.
#[derive(Debug, Default, Clone)]
pub struct PostFactory {
    next_id: u64,
    seq: Vec<u32>,
    clock: u64,
}

impl PostFactory {
    /// A factory for `n` resources starting at time 0.
    pub fn new(n: usize) -> Self {
        PostFactory {
            next_id: 0,
            seq: vec![0; n],
            clock: 0,
        }
    }

    /// Resumes sequence numbering from existing counts (used when a
    /// campaign starts on top of pre-existing posts).
    pub fn resume(counts: &[u32], next_id: u64, clock: u64) -> Self {
        PostFactory {
            next_id,
            seq: counts.to_vec(),
            clock,
        }
    }

    /// Mints the next post for `resource`.
    pub fn make(&mut self, resource: ResourceId, tagger: TaggerId, tags: Vec<TagId>) -> Post {
        let idx = resource.index();
        self.seq[idx] += 1;
        self.clock += 1;
        let post = Post::new(
            PostId(self.next_id),
            resource,
            tagger,
            tags,
            self.seq[idx],
            self.clock,
        );
        self.next_id += 1;
        post
    }

    /// Current post count of `resource`.
    pub fn count(&self, resource: ResourceId) -> u32 {
        self.seq[resource.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_dataset() -> Dataset {
        let resources = vec![
            Resource::synthetic(ResourceId(0), ResourceKind::WebUrl),
            Resource::synthetic(ResourceId(1), ResourceKind::Image),
        ];
        let latent = vec![
            TagDistribution::new(vec![(TagId(0), 0.7), (TagId(1), 0.3)]),
            TagDistribution::new(vec![(TagId(2), 1.0)]),
        ];
        let mut f = PostFactory::new(2);
        let posts = vec![
            f.make(ResourceId(0), TaggerId(0), vec![TagId(0)]),
            f.make(ResourceId(0), TaggerId(1), vec![TagId(0), TagId(1)]),
        ];
        Dataset {
            resources,
            latent,
            popularity: vec![0.9, 0.1],
            initial_posts: posts,
            dictionary: TagDictionary::synthetic(3),
        }
    }

    #[test]
    fn initial_counts_match_posts() {
        let d = tiny_dataset();
        assert_eq!(d.initial_counts(), vec![2, 0]);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn honest_tags_come_from_support_and_are_distinct() {
        let d = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let tags = d.sample_honest_tags(ResourceId(0), TagsPerPost::new(1, 5), &mut rng);
            assert!(!tags.is_empty());
            let mut dedup = tags.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), tags.len(), "duplicate tags in a post");
            for t in &tags {
                assert!(d.latent[0].tags().contains(t));
            }
        }
    }

    #[test]
    fn honest_tags_on_singleton_support_never_loop() {
        let d = tiny_dataset();
        let mut rng = StdRng::seed_from_u64(2);
        let tags = d.sample_honest_tags(ResourceId(1), TagsPerPost::new(3, 5), &mut rng);
        assert_eq!(tags, vec![TagId(2)]);
    }

    #[test]
    fn post_factory_sequences_per_resource() {
        let mut f = PostFactory::new(2);
        let a = f.make(ResourceId(0), TaggerId(0), vec![TagId(0)]);
        let b = f.make(ResourceId(1), TaggerId(0), vec![TagId(0)]);
        let c = f.make(ResourceId(0), TaggerId(0), vec![TagId(0)]);
        assert_eq!((a.seq, b.seq, c.seq), (1, 1, 2));
        assert!(a.id < b.id && b.id < c.id);
        assert!(a.at < b.at && b.at < c.at);
        assert_eq!(f.count(ResourceId(0)), 2);
    }

    #[test]
    fn stats_on_uniform_counts() {
        let s = DatasetStats::compute(&[5, 5, 5, 5]);
        assert_eq!(s.total_posts, 20);
        assert!(
            (s.gini).abs() < 1e-9,
            "uniform gini should be 0: {}",
            s.gini
        );
        assert_eq!(s.zero_fraction, 0.0);
    }

    #[test]
    fn stats_on_concentrated_counts() {
        let mut counts = vec![0u32; 99];
        counts.push(1000);
        let s = DatasetStats::compute(&counts);
        assert!(s.gini > 0.95, "gini {}", s.gini);
        assert!((s.head_share - 1.0).abs() < 1e-9);
        assert!((s.zero_fraction - 0.99).abs() < 1e-9);
        assert_eq!(s.median_posts, 0);
    }

    #[test]
    fn stats_on_empty_input() {
        let s = DatasetStats::compute(&[]);
        assert_eq!(s.resources, 0);
        assert_eq!(s.gini, 0.0);
    }
}
