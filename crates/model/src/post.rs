//! Posts: single tagging operations.
//!
//! Section II: "A post is a nonempty set of tags assigned to a resource by
//! a tagger in one tagging operation. The post sequence of a resource r_i
//! is the sequence (p_i(1), p_i(2), …)".

use crate::ids::{PostId, ResourceId, TagId, TaggerId};
use serde::{Deserialize, Serialize};

/// One tagging operation. `seq` is the post's 1-based position in its
/// resource's post sequence (the `k` of `p_i(k)`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Post {
    pub id: PostId,
    pub resource: ResourceId,
    pub tagger: TaggerId,
    /// Distinct tags of this post. Invariant: non-empty, no duplicates.
    pub tags: Vec<TagId>,
    /// 1-based index in the resource's post sequence.
    pub seq: u32,
    /// Logical timestamp (task-ticks in simulation; epoch ms in a
    /// deployment).
    pub at: u64,
}

impl Post {
    /// Creates a post, enforcing the paper's invariants: the tag set is
    /// non-empty and duplicate-free (duplicates are merged, order of first
    /// occurrence preserved).
    ///
    /// # Panics
    /// Panics if `tags` is empty — an empty post is not a post.
    pub fn new(
        id: PostId,
        resource: ResourceId,
        tagger: TaggerId,
        mut tags: Vec<TagId>,
        seq: u32,
        at: u64,
    ) -> Self {
        assert!(!tags.is_empty(), "a post must contain at least one tag");
        let mut seen = std::collections::HashSet::with_capacity(tags.len());
        tags.retain(|t| seen.insert(*t));
        Post {
            id,
            resource,
            tagger,
            tags,
            seq,
            at,
        }
    }

    /// Number of distinct tags.
    pub fn arity(&self) -> usize {
        self.tags.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_merged_keeping_first_occurrence() {
        let p = Post::new(
            PostId(1),
            ResourceId(1),
            TaggerId(1),
            vec![TagId(5), TagId(3), TagId(5), TagId(3), TagId(9)],
            1,
            0,
        );
        assert_eq!(p.tags, vec![TagId(5), TagId(3), TagId(9)]);
        assert_eq!(p.arity(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one tag")]
    fn empty_posts_are_rejected() {
        let _ = Post::new(PostId(1), ResourceId(1), TaggerId(1), vec![], 1, 0);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Post::new(
            PostId(9),
            ResourceId(2),
            TaggerId(3),
            vec![TagId(1), TagId(2)],
            4,
            1234,
        );
        let bytes = itag_store::serbin::to_bytes(&p).unwrap();
        let back: Post = itag_store::serbin::from_bytes(&bytes).unwrap();
        assert_eq!(back, p);
    }
}
