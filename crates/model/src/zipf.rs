//! Zipf-distributed sampling.
//!
//! Collaborative-tagging popularity is famously heavy-tailed (Golder &
//! Huberman, reference 5 of the paper: "most tags are directed to a small
//! number of highly popular resources"). The generator and the FC strategy
//! both sample from Zipf laws; `rand` ships no Zipf distribution in the
//! sanctioned version, so this module implements one via a precomputed
//! cumulative table + binary search — exact, O(log n) per draw, and
//! deterministic under a seeded RNG.

use rand::Rng;

/// Samples ranks `0..n` with `P(rank = i) ∝ 1/(i+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative probabilities; `cumulative[i]` = P(rank ≤ i).
    cumulative: Vec<f64>,
    weights: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s ≥ 0`
    /// (`s = 0` is uniform; Delicious-like skew is `s ≈ 1`).
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/non-finite — both are
    /// configuration errors, not runtime conditions.
    // lint: allow(panic-path)
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "Zipf exponent must be ≥ 0");
        let mut weights = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            let w = 1.0 / ((i + 1) as f64).powf(s);
            weights.push(w);
            total += w;
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for w in &mut weights {
            *w /= total;
            acc += *w;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall at the top end.
        *cumulative.last_mut().expect("n > 0") = 1.0;
        ZipfSampler {
            cumulative,
            weights,
        }
    }

    /// Draws a rank in `0..n` (rank 0 is the most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u)
    }

    /// Normalized probability of each rank.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when there are no ranks (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

/// Samples an index from explicit non-negative weights (cumulative table +
/// binary search). Used for latent tag distributions and FC popularity.
#[derive(Debug, Clone)]
pub struct WeightedSampler {
    cumulative: Vec<f64>,
}

impl WeightedSampler {
    /// Builds from raw weights; they need not be normalized.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains a negative/non-finite value,
    /// or sums to zero.
    // lint: allow(panic-path)
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "WeightedSampler needs weights");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be ≥ 0, got {w}");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        for c in &mut cumulative {
            *c /= acc;
        }
        *cumulative.last_mut().expect("non-empty") = 1.0;
        WeightedSampler { cumulative }
    }

    /// Draws an index in `0..weights.len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cumulative.partition_point(|&c| c < u)
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True when empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zipf_probabilities_decrease_with_rank() {
        let z = ZipfSampler::new(100, 1.0);
        for w in z.weights().windows(2) {
            assert!(w[0] > w[1]);
        }
        let sum: f64 = z.weights().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for &w in z.weights() {
            assert!((w - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_empirical_skew_matches_theory() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0u32; 1000];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should receive ≈ w[0] of the mass (within 10% relative).
        let expected = z.weights()[0] * draws as f64;
        let got = counts[0] as f64;
        assert!(
            (got - expected).abs() / expected < 0.1,
            "rank0: got {got}, expected {expected}"
        );
        // Head (top 10%) should dominate the tail: the paper's motivation.
        let head: u32 = counts[..100].iter().sum();
        assert!(head as f64 > 0.6 * draws as f64);
    }

    #[test]
    fn samples_are_always_in_range() {
        let z = ZipfSampler::new(7, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn weighted_sampler_respects_zero_weights() {
        let w = WeightedSampler::new(&[0.0, 1.0, 0.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 4];
        for _ in 0..20_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[2], 0);
        // index 3 should get ≈ 3× the draws of index 1.
        let ratio = counts[3] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_empty_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn weighted_all_zero_panics() {
        let _ = WeightedSampler::new(&[0.0, 0.0]);
    }

    #[test]
    fn deterministic_under_seed() {
        let z = ZipfSampler::new(50, 1.2);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(99);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
