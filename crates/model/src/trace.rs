//! Replayable tagging traces.
//!
//! The demo evaluates strategies against the post-split portion of the
//! Delicious trace; [`Trace`] is that stream — consumed by the FC strategy
//! (taggers choosing freely) and by dataset warm-up.

use crate::ids::{ResourceId, TagId, TaggerId};
use serde::{Deserialize, Serialize};

/// One arrival in a tagging trace: at time `at`, `tagger` posted `tags`
/// on `resource`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub at: u64,
    pub resource: ResourceId,
    pub tagger: TaggerId,
    pub tags: Vec<TagId>,
}

/// An ordered stream of tagging events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Wraps events, enforcing time order.
    ///
    /// # Panics
    /// Panics if events are not sorted by `at` — traces are generated or
    /// ingested sorted; unsorted input indicates a bug upstream.
    pub fn new(events: Vec<TraceEvent>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].at <= w[1].at),
            "trace events must be time-ordered"
        );
        Trace { events }
    }

    /// The events, in time order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Splits at time `t`: events strictly before `t`, and the rest. This
    /// is the demo's "before February 1st 2007" provider/evaluation split.
    pub fn split_at_time(&self, t: u64) -> (Trace, Trace) {
        let idx = self.events.partition_point(|e| e.at < t);
        (
            Trace {
                events: self.events[..idx].to_vec(),
            },
            Trace {
                events: self.events[idx..].to_vec(),
            },
        )
    }

    /// Iterates events touching `resource`.
    pub fn for_resource(&self, resource: ResourceId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.resource == resource)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at: u64, r: u32) -> TraceEvent {
        TraceEvent {
            at,
            resource: ResourceId(r),
            tagger: TaggerId(0),
            tags: vec![TagId(0)],
        }
    }

    #[test]
    fn split_respects_boundary() {
        let t = Trace::new(vec![ev(0, 1), ev(5, 2), ev(5, 3), ev(9, 1)]);
        let (before, after) = t.split_at_time(5);
        assert_eq!(before.len(), 1);
        assert_eq!(after.len(), 3);
        assert_eq!(after.events()[0].resource, ResourceId(2));
    }

    #[test]
    fn split_at_extremes() {
        let t = Trace::new(vec![ev(1, 1), ev(2, 2)]);
        let (b, a) = t.split_at_time(0);
        assert!(b.is_empty());
        assert_eq!(a.len(), 2);
        let (b, a) = t.split_at_time(100);
        assert_eq!(b.len(), 2);
        assert!(a.is_empty());
    }

    #[test]
    fn for_resource_filters() {
        let t = Trace::new(vec![ev(0, 1), ev(1, 2), ev(2, 1)]);
        assert_eq!(t.for_resource(ResourceId(1)).count(), 2);
        assert_eq!(t.for_resource(ResourceId(9)).count(), 0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn unsorted_traces_rejected() {
        let _ = Trace::new(vec![ev(5, 1), ev(0, 2)]);
    }
}
