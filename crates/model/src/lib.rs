//! # itag-model — the iTag data model and workloads
//!
//! Types from Section II of the paper: resources `R`, tags `T`, posts and
//! post sequences, plus the synthetic **Delicious 2010** workload generator
//! that substitutes for the real trace used in the demonstration
//! (Section IV). The substitution rationale lives in `DESIGN.md` §4.

pub mod dataset;
pub mod delicious;
pub mod ids;
pub mod ingest;
pub mod post;
pub mod resource;
pub mod tag;
pub mod trace;
pub mod vocab;
pub mod zipf;

pub use dataset::{Dataset, DatasetStats};
pub use delicious::{DeliciousConfig, DeliciousDataset};
pub use ids::{PostId, ProjectId, ProviderId, ResourceId, TagId, TaggerId};
pub use post::Post;
pub use resource::{Resource, ResourceKind};
pub use tag::TagDictionary;
pub use vocab::TagDistribution;
