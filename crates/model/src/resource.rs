//! Resources: the things being tagged.

use crate::ids::ResourceId;
use serde::{Deserialize, Serialize};

/// The resource types iTag supports (Fig. 1 / Section III-A of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    WebUrl,
    Image,
    Video,
    SoundClip,
    ScientificPaper,
}

impl ResourceKind {
    /// All kinds, for UI pickers and round-robin test data.
    pub const ALL: [ResourceKind; 5] = [
        ResourceKind::WebUrl,
        ResourceKind::Image,
        ResourceKind::Video,
        ResourceKind::SoundClip,
        ResourceKind::ScientificPaper,
    ];

    /// Human-readable label (matches the Add-Project screen's type field).
    pub fn label(self) -> &'static str {
        match self {
            ResourceKind::WebUrl => "Web URL",
            ResourceKind::Image => "Image",
            ResourceKind::Video => "Video",
            ResourceKind::SoundClip => "Sound Clip",
            ResourceKind::ScientificPaper => "Scientific Paper",
        }
    }
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A taggable resource uploaded by a provider.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Resource {
    pub id: ResourceId,
    pub kind: ResourceKind,
    /// Locator shown to taggers (URL, image path, DOI, …).
    pub uri: String,
    /// Optional provider-supplied description shown on the tagging screen.
    pub description: String,
}

impl Resource {
    /// Builds a synthetic resource for generated workloads.
    pub fn synthetic(id: ResourceId, kind: ResourceKind) -> Self {
        Resource {
            id,
            kind,
            uri: format!("https://example.org/r/{}", id.0),
            description: format!("synthetic {} #{}", kind.label(), id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<&str> = ResourceKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
    }

    #[test]
    fn synthetic_resources_embed_their_id() {
        let r = Resource::synthetic(ResourceId(42), ResourceKind::Image);
        assert!(r.uri.ends_with("/42"));
        assert_eq!(r.kind, ResourceKind::Image);
    }

    #[test]
    fn serde_roundtrip() {
        let r = Resource::synthetic(ResourceId(7), ResourceKind::ScientificPaper);
        let bytes = itag_store::serbin::to_bytes(&r).unwrap();
        let back: Resource = itag_store::serbin::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
    }
}
