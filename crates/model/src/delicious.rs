//! Synthetic Delicious-2010 workload generator.
//!
//! The demonstration (Section IV) uses "all tagging data for Web URLs from
//! Delicious in the year 2010", treating data "before February 1st 2007"
//! as the providers' pre-existing posts and the rest as the evaluation
//! stream. That trace is not redistributable, so this module generates a
//! statistically equivalent corpus (see DESIGN.md §4):
//!
//! * resource popularity follows a Zipf law (exponent ≈ 1, per Golder &
//!   Huberman), so the pre-campaign posts concentrate on a small head and
//!   leave a long zero/low-post tail — the exact pathology iTag targets;
//! * each resource has a latent tag multinomial over a support drawn from
//!   a global Zipf-weighted vocabulary (popular tags are shared between
//!   resources, as on Delicious);
//! * the "pre-2007" era is simulated by dealing `initial_posts` posts to
//!   resources popularity-proportionally, and the evaluation stream by
//!   dealing `eval_posts` more the same way.

use crate::dataset::{Dataset, PostFactory};
use crate::ids::{ResourceId, TagId, TaggerId};
use crate::resource::{Resource, ResourceKind};
use crate::tag::TagDictionary;
use crate::trace::{Trace, TraceEvent};
use crate::vocab::{TagDistribution, TagsPerPost};
use crate::zipf::ZipfSampler;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic Delicious corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliciousConfig {
    /// Number of resources `n`.
    pub resources: usize,
    /// Global tag vocabulary size `m`.
    pub vocab: usize,
    /// Zipf exponent of resource popularity (≈1.0 on Delicious).
    pub popularity_exponent: f64,
    /// Zipf exponent of global tag popularity.
    pub tag_exponent: f64,
    /// Latent support size range per resource (inclusive).
    pub support: (usize, usize),
    /// Zipf exponent of within-resource tag probabilities: how strongly a
    /// resource's community agrees on its top tags.
    pub within_resource_exponent: f64,
    /// Posts dealt in the pre-campaign era ("before Feb 1st 2007").
    pub initial_posts: usize,
    /// Posts available in the evaluation stream (drives FC replays).
    pub eval_posts: usize,
    /// Tags per post.
    pub tags_per_post: TagsPerPost,
    /// Number of distinct pre-campaign taggers.
    pub taggers: usize,
    /// RNG seed: everything downstream is deterministic in this.
    pub seed: u64,
}

impl Default for DeliciousConfig {
    fn default() -> Self {
        DeliciousConfig {
            resources: 2_000,
            vocab: 5_000,
            popularity_exponent: 1.0,
            tag_exponent: 1.0,
            support: (8, 40),
            within_resource_exponent: 1.0,
            initial_posts: 20_000,
            eval_posts: 40_000,
            tags_per_post: TagsPerPost::default(),
            taggers: 500,
            seed: 0x1746,
        }
    }
}

impl DeliciousConfig {
    /// A small configuration for unit tests (fast, still skewed).
    pub fn tiny(seed: u64) -> Self {
        DeliciousConfig {
            resources: 50,
            vocab: 200,
            initial_posts: 300,
            eval_posts: 600,
            taggers: 20,
            seed,
            ..DeliciousConfig::default()
        }
    }

    /// Generates the corpus.
    pub fn generate(&self) -> DeliciousDataset {
        assert!(self.resources > 0, "need at least one resource");
        assert!(self.vocab >= self.support.1, "vocab smaller than support");
        assert!(
            self.support.0 >= 1 && self.support.0 <= self.support.1,
            "bad support range"
        );
        let mut rng = StdRng::seed_from_u64(self.seed);

        let dictionary = TagDictionary::synthetic(self.vocab);
        let global_tags = ZipfSampler::new(self.vocab, self.tag_exponent);

        // Resources + latent distributions.
        let mut resources = Vec::with_capacity(self.resources);
        let mut latent = Vec::with_capacity(self.resources);
        for i in 0..self.resources {
            let kind = ResourceKind::ALL[i % ResourceKind::ALL.len()];
            resources.push(Resource::synthetic(ResourceId(i as u32), kind));

            let support_size = if self.support.0 == self.support.1 {
                self.support.0
            } else {
                rng.gen_range(self.support.0..=self.support.1)
            };
            // Draw a distinct support from the global Zipf so popular tags
            // recur across resources.
            let mut support: Vec<TagId> = Vec::with_capacity(support_size);
            let mut guard = 0;
            while support.len() < support_size && guard < 64 * support_size {
                let t = TagId(global_tags.sample(&mut rng) as u32);
                if !support.contains(&t) {
                    support.push(t);
                }
                guard += 1;
            }
            // Backstop: fill sequentially if the Zipf head keeps colliding.
            let mut next = 0u32;
            while support.len() < support_size {
                let t = TagId(next);
                if !support.contains(&t) {
                    support.push(t);
                }
                next += 1;
            }

            let pairs: Vec<(TagId, f64)> = support
                .iter()
                .enumerate()
                .map(|(rank, &t)| {
                    let w = 1.0 / ((rank + 1) as f64).powf(self.within_resource_exponent);
                    (t, w)
                })
                .collect();
            latent.push(TagDistribution::new(pairs));
        }

        // Popularity weights (static Zipf over a random rank permutation so
        // resource id does not encode popularity).
        let zipf = ZipfSampler::new(self.resources, self.popularity_exponent);
        let mut ranks: Vec<usize> = (0..self.resources).collect();
        // Fisher–Yates with the seeded RNG.
        for i in (1..ranks.len()).rev() {
            let j = rng.gen_range(0..=i);
            ranks.swap(i, j);
        }
        let mut popularity = vec![0.0f64; self.resources];
        for (rank, &res) in ranks.iter().enumerate() {
            popularity[res] = zipf.weights()[rank];
        }

        let mut dataset = Dataset {
            resources,
            latent,
            popularity,
            initial_posts: Vec::with_capacity(self.initial_posts),
            dictionary,
        };

        // Pre-campaign era: posts dealt popularity-proportionally.
        let pop_sampler = crate::zipf::WeightedSampler::new(&dataset.popularity);
        let mut factory = PostFactory::new(self.resources);
        for _ in 0..self.initial_posts {
            let r = ResourceId(pop_sampler.sample(&mut rng) as u32);
            let tagger = TaggerId(rng.gen_range(0..self.taggers.max(1)) as u32);
            let tags = dataset.sample_honest_tags(r, self.tags_per_post, &mut rng);
            let post = factory.make(r, tagger, tags);
            dataset.initial_posts.push(post);
        }

        // Evaluation stream: the "post-2007" arrivals a free-choice crowd
        // would produce, replayable by the FC strategy.
        let mut events = Vec::with_capacity(self.eval_posts);
        for _ in 0..self.eval_posts {
            let r = ResourceId(pop_sampler.sample(&mut rng) as u32);
            let tagger = TaggerId(rng.gen_range(0..self.taggers.max(1)) as u32);
            let tags = dataset.sample_honest_tags(r, self.tags_per_post, &mut rng);
            events.push(TraceEvent {
                at: events.len() as u64,
                resource: r,
                tagger,
                tags,
            });
        }

        DeliciousDataset {
            config: self.clone(),
            dataset,
            eval_trace: Trace::new(events),
        }
    }
}

/// A generated corpus: the provider-era dataset plus the evaluation stream.
#[derive(Debug, Clone)]
pub struct DeliciousDataset {
    pub config: DeliciousConfig,
    pub dataset: Dataset,
    pub eval_trace: Trace,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = DeliciousConfig::tiny(9).generate();
        let b = DeliciousConfig::tiny(9).generate();
        assert_eq!(a.dataset.initial_counts(), b.dataset.initial_counts());
        assert_eq!(a.eval_trace.len(), b.eval_trace.len());
        assert_eq!(a.eval_trace.events()[0].tags, b.eval_trace.events()[0].tags);
        let c = DeliciousConfig::tiny(10).generate();
        assert_ne!(
            a.dataset.initial_counts(),
            c.dataset.initial_counts(),
            "different seeds should differ"
        );
    }

    #[test]
    fn popularity_skew_shows_in_initial_posts() {
        let d = DeliciousConfig {
            resources: 1_000,
            initial_posts: 5_000,
            ..DeliciousConfig::default()
        }
        .generate();
        let stats = d.dataset.stats();
        assert!(
            stats.head_share > 0.5,
            "top 10% should hold most posts, got {}",
            stats.head_share
        );
        assert!(
            stats.zero_fraction > 0.05,
            "a long tail of untagged resources should exist, got {}",
            stats.zero_fraction
        );
        assert!(stats.gini > 0.5, "gini {}", stats.gini);
    }

    #[test]
    fn latent_supports_are_within_config() {
        let cfg = DeliciousConfig::tiny(3);
        let d = cfg.generate();
        for latent in &d.dataset.latent {
            let s = latent.support_len();
            assert!(s >= cfg.support.0 && s <= cfg.support.1, "support {s}");
        }
    }

    #[test]
    fn every_post_tags_within_vocab() {
        let cfg = DeliciousConfig::tiny(4);
        let d = cfg.generate();
        for p in &d.dataset.initial_posts {
            for t in &p.tags {
                assert!((t.0 as usize) < cfg.vocab);
            }
        }
        for e in d.eval_trace.events() {
            for t in &e.tags {
                assert!((t.0 as usize) < cfg.vocab);
            }
        }
    }

    #[test]
    fn trace_timestamps_are_monotone() {
        let d = DeliciousConfig::tiny(5).generate();
        let events = d.eval_trace.events();
        for w in events.windows(2) {
            assert!(w[0].at < w[1].at);
        }
    }

    #[test]
    #[should_panic(expected = "vocab smaller than support")]
    fn vocab_must_cover_support() {
        let _ = DeliciousConfig {
            vocab: 10,
            support: (5, 40),
            ..DeliciousConfig::tiny(1)
        }
        .generate();
    }
}
