//! Latent per-resource tag distributions.
//!
//! The quality metric of the paper rests on the empirical observation
//! (from the companion work it cites) that a resource's relative frequency
//! distribution of tags **converges** as posts accumulate: the community
//! "agrees" on how to describe the resource. The simulator realizes that
//! premise by giving every resource a latent multinomial `p_i` over a small
//! tag support; honest posts are draws from `p_i`, so rfds converge to
//! `p_i` at the multinomial concentration rate O(1/√k).

use crate::ids::TagId;
use crate::zipf::WeightedSampler;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A normalized multinomial over a resource's tag support.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TagDistribution {
    /// Support tags, most probable first.
    tags: Vec<TagId>,
    /// Probabilities aligned with `tags`; sums to 1.
    probs: Vec<f64>,
    #[serde(skip)]
    sampler: Option<WeightedSampler>,
}

impl PartialEq for TagDistribution {
    fn eq(&self, other: &Self) -> bool {
        self.tags == other.tags && self.probs == other.probs
    }
}

impl TagDistribution {
    /// Builds a distribution from `(tag, weight)` pairs; weights are
    /// normalized and sorted descending.
    ///
    /// # Panics
    /// Panics on an empty support or non-positive total weight.
    // lint: allow(panic-path)
    pub fn new(mut pairs: Vec<(TagId, f64)>) -> Self {
        assert!(!pairs.is_empty(), "a tag distribution needs support");
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite weights"));
        let total: f64 = pairs.iter().map(|(_, w)| w).sum();
        assert!(total > 0.0, "total weight must be positive");
        let tags: Vec<TagId> = pairs.iter().map(|(t, _)| *t).collect();
        let probs: Vec<f64> = pairs.iter().map(|(_, w)| w / total).collect();
        let sampler = Some(WeightedSampler::new(&probs));
        TagDistribution {
            tags,
            probs,
            sampler,
        }
    }

    /// Support size.
    pub fn support_len(&self) -> usize {
        self.tags.len()
    }

    /// Tags of the support, most probable first.
    pub fn tags(&self) -> &[TagId] {
        &self.tags
    }

    /// Probability of `tag` (0 if outside the support).
    pub fn prob(&self, tag: TagId) -> f64 {
        self.tags
            .iter()
            .position(|&t| t == tag)
            .map(|i| self.probs[i])
            .unwrap_or(0.0)
    }

    /// `(tag, probability)` pairs, most probable first.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, f64)> + '_ {
        self.tags.iter().copied().zip(self.probs.iter().copied())
    }

    /// The `k` most probable tags.
    pub fn top_k(&self, k: usize) -> &[TagId] {
        &self.tags[..k.min(self.tags.len())]
    }

    /// Draws one tag from the distribution.
    // lint: allow(panic-path)
    pub fn sample_tag<R: Rng + ?Sized>(&self, rng: &mut R) -> TagId {
        match &self.sampler {
            Some(s) => self.tags[s.sample(rng)],
            None => {
                // Deserialized distribution without a rebuilt sampler:
                // fall back to inverse-CDF on the fly.
                let u: f64 = rng.gen();
                let mut acc = 0.0;
                for (t, p) in self.iter() {
                    acc += p;
                    if u <= acc {
                        return t;
                    }
                }
                *self.tags.last().expect("non-empty support")
            }
        }
    }

    /// Rebuilds the sampling table after deserialization.
    pub fn rebuild_sampler(&mut self) {
        self.sampler = Some(WeightedSampler::new(&self.probs));
    }

    /// Analytic instability coefficient `κ` such that the expected total
    /// variation between the empirical rfd after `k` posts and this latent
    /// distribution is ≈ `κ/√k`:
    ///
    /// `E[TV] ≈ ½ Σ_t √(2 p_t (1 − p_t) / (π k)) = κ/√k`.
    ///
    /// The OPT allocator uses this as its oracle quality curve
    /// (`q̂(k) = 1 − κ/√k`), which is concave in `k`, making the greedy
    /// unit-by-unit allocation optimal.
    pub fn kappa(&self) -> f64 {
        let c = (2.0 / std::f64::consts::PI).sqrt() / 2.0;
        self.probs.iter().map(|&p| c * (p * (1.0 - p)).sqrt()).sum()
    }
}

/// Per-post tag-count sampler shared by the dataset generator and the
/// tagger behaviour models: uniform in `[min, max]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagsPerPost {
    pub min: u8,
    pub max: u8,
}

impl TagsPerPost {
    /// # Panics
    /// Panics when `min == 0` (posts are non-empty) or `min > max`.
    pub fn new(min: u8, max: u8) -> Self {
        assert!(min >= 1, "posts must contain at least one tag");
        assert!(min <= max, "min must not exceed max");
        TagsPerPost { min, max }
    }

    /// Draws a post size.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        if self.min == self.max {
            self.min as usize
        } else {
            rng.gen_range(self.min..=self.max) as usize
        }
    }
}

impl Default for TagsPerPost {
    /// Delicious posts typically carry a handful of tags.
    fn default() -> Self {
        TagsPerPost::new(1, 5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dist() -> TagDistribution {
        TagDistribution::new(vec![(TagId(10), 5.0), (TagId(20), 3.0), (TagId(30), 2.0)])
    }

    #[test]
    fn probabilities_normalize_and_sort() {
        let d = dist();
        assert_eq!(d.tags(), &[TagId(10), TagId(20), TagId(30)]);
        assert!((d.prob(TagId(10)) - 0.5).abs() < 1e-12);
        assert!((d.prob(TagId(30)) - 0.2).abs() < 1e-12);
        assert_eq!(d.prob(TagId(99)), 0.0);
        let total: f64 = d.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_probabilities() {
        let d = dist();
        let mut rng = StdRng::seed_from_u64(11);
        let mut hits = std::collections::HashMap::new();
        let n = 60_000;
        for _ in 0..n {
            *hits.entry(d.sample_tag(&mut rng)).or_insert(0u32) += 1;
        }
        let f10 = hits[&TagId(10)] as f64 / n as f64;
        assert!((f10 - 0.5).abs() < 0.02, "f10 = {f10}");
    }

    #[test]
    fn top_k_clamps() {
        let d = dist();
        assert_eq!(d.top_k(2), &[TagId(10), TagId(20)]);
        assert_eq!(d.top_k(10).len(), 3);
    }

    #[test]
    fn kappa_is_larger_for_flatter_distributions() {
        let peaked = TagDistribution::new(vec![(TagId(1), 97.0), (TagId(2), 2.0), (TagId(3), 1.0)]);
        let flat = TagDistribution::new(vec![(TagId(1), 1.0), (TagId(2), 1.0), (TagId(3), 1.0)]);
        assert!(
            flat.kappa() > peaked.kappa(),
            "flat {} vs peaked {}",
            flat.kappa(),
            peaked.kappa()
        );
    }

    #[test]
    fn kappa_of_point_mass_is_zero() {
        let point = TagDistribution::new(vec![(TagId(1), 1.0)]);
        assert!(point.kappa().abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip_then_sampling_still_works() {
        let d = dist();
        let bytes = itag_store::serbin::to_bytes(&d).unwrap();
        let mut back: TagDistribution = itag_store::serbin::from_bytes(&bytes).unwrap();
        assert_eq!(back, d);
        // Works without rebuild (fallback path)…
        let mut rng = StdRng::seed_from_u64(5);
        let _ = back.sample_tag(&mut rng);
        // …and with the rebuilt fast path.
        back.rebuild_sampler();
        let t = back.sample_tag(&mut rng);
        assert!(back.tags().contains(&t));
    }

    #[test]
    fn tags_per_post_bounds() {
        let tpp = TagsPerPost::new(2, 4);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let n = tpp.sample(&mut rng);
            assert!((2..=4).contains(&n));
        }
        assert_eq!(TagsPerPost::new(3, 3).sample(&mut rng), 3);
    }

    #[test]
    #[should_panic(expected = "at least one tag")]
    fn zero_min_tags_rejected() {
        let _ = TagsPerPost::new(0, 3);
    }
}
