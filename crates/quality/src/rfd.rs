//! Relative frequency distributions (rfds).
//!
//! The rfd of a resource after `k` posts assigns each tag the fraction of
//! tag occurrences it received: `f(t) = count(t) / Σ_t count(t)`. Quality
//! metrics compare rfds at different points of the post sequence (and, in
//! simulation, against the latent truth).

use itag_model::ids::TagId;
use itag_model::vocab::TagDistribution;
use itag_store::codec::FxHashMap;
use serde::{Deserialize, Serialize};

/// A tag-count multiset with O(1) frequency queries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Rfd {
    counts: FxHashMap<TagId, u32>,
    total: u64,
}

impl Rfd {
    /// An empty rfd (no posts yet).
    pub fn new() -> Self {
        Rfd::default()
    }

    /// Folds one post's tags in.
    pub fn add_tags(&mut self, tags: &[TagId]) {
        for &t in tags {
            *self.counts.entry(t).or_insert(0) += 1;
            self.total += 1;
        }
    }

    /// Removes one post's tags (used to reconstruct a lagged rfd).
    ///
    /// # Panics
    /// Panics if a tag was never added — that means the caller's post log
    /// and this rfd have diverged, which is a logic error.
    // lint: allow(panic-path)
    pub fn remove_tags(&mut self, tags: &[TagId]) {
        for &t in tags {
            let c = self
                .counts
                .get_mut(&t)
                .unwrap_or_else(|| panic!("removing tag {t} that was never added"));
            *c -= 1;
            if *c == 0 {
                self.counts.remove(&t);
            }
            self.total -= 1;
        }
    }

    /// Occurrences of `tag`.
    pub fn count(&self, tag: TagId) -> u32 {
        self.counts.get(&tag).copied().unwrap_or(0)
    }

    /// Relative frequency of `tag` (0 when the rfd is empty).
    pub fn freq(&self, tag: TagId) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.count(tag) as f64 / self.total as f64
        }
    }

    /// Total tag occurrences.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct tags.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// True when no tags have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// `(tag, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, u32)> + '_ {
        self.counts.iter().map(|(&t, &c)| (t, c))
    }

    /// The `k` most frequent tags (count desc, id asc for determinism).
    pub fn top_k(&self, k: usize) -> Vec<TagId> {
        let mut pairs: Vec<(TagId, u32)> = self.iter().collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs.into_iter().map(|(t, _)| t).collect()
    }

    /// Cosine similarity of the two frequency vectors, in `[0, 1]`.
    /// Zero if either rfd is empty.
    pub fn cosine(&self, other: &Rfd) -> f64 {
        if self.total == 0 || other.total == 0 {
            return 0.0;
        }
        let mut dot = 0.0;
        for (t, c) in self.iter() {
            let f1 = c as f64 / self.total as f64;
            let f2 = other.freq(t);
            dot += f1 * f2;
        }
        let n1: f64 = self
            .iter()
            .map(|(_, c)| {
                let f = c as f64 / self.total as f64;
                f * f
            })
            .sum::<f64>()
            .sqrt();
        let n2: f64 = other
            .iter()
            .map(|(_, c)| {
                let f = c as f64 / other.total as f64;
                f * f
            })
            .sum::<f64>()
            .sqrt();
        (dot / (n1 * n2)).clamp(0.0, 1.0)
    }

    /// Total-variation distance `½ Σ_t |f₁(t) − f₂(t)|`, in `[0, 1]`.
    /// Defined as 1 when exactly one side is empty, 0 when both are.
    pub fn tv(&self, other: &Rfd) -> f64 {
        match (self.total, other.total) {
            (0, 0) => return 0.0,
            (0, _) | (_, 0) => return 1.0,
            _ => {}
        }
        let mut acc = 0.0;
        for (t, c) in self.iter() {
            let f1 = c as f64 / self.total as f64;
            acc += (f1 - other.freq(t)).abs();
        }
        // Tags present only in `other`.
        for (t, c) in other.iter() {
            if self.count(t) == 0 {
                acc += c as f64 / other.total as f64;
            }
        }
        (acc / 2.0).clamp(0.0, 1.0)
    }

    /// Total-variation distance to a latent [`TagDistribution`]
    /// (simulation oracle). 1 when the rfd is empty.
    pub fn tv_to_latent(&self, latent: &TagDistribution) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let mut acc = 0.0;
        for (t, p) in latent.iter() {
            acc += (self.freq(t) - p).abs();
        }
        // Observed tags outside the latent support (noise).
        for (t, c) in self.iter() {
            if latent.prob(t) == 0.0 {
                acc += c as f64 / self.total as f64;
            }
        }
        (acc / 2.0).clamp(0.0, 1.0)
    }

    /// Jaccard similarity of the two top-`k` tag sets, in `[0, 1]`.
    pub fn jaccard_top_k(&self, other: &Rfd, k: usize) -> f64 {
        let a = self.top_k(k);
        let b = other.top_k(k);
        if a.is_empty() && b.is_empty() {
            return 0.0;
        }
        let inter = a.iter().filter(|t| b.contains(t)).count();
        let union = a.len() + b.len() - inter;
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rfd_of(tags: &[u32]) -> Rfd {
        let mut r = Rfd::new();
        r.add_tags(&tags.iter().map(|&t| TagId(t)).collect::<Vec<_>>());
        r
    }

    #[test]
    fn counts_and_freqs() {
        let r = rfd_of(&[1, 1, 2, 3]);
        assert_eq!(r.count(TagId(1)), 2);
        assert_eq!(r.total(), 4);
        assert_eq!(r.distinct(), 3);
        assert!((r.freq(TagId(1)) - 0.5).abs() < 1e-12);
        assert_eq!(r.freq(TagId(9)), 0.0);
    }

    #[test]
    fn remove_undoes_add_exactly() {
        let mut r = rfd_of(&[1, 1, 2]);
        r.remove_tags(&[TagId(1), TagId(2)]);
        assert_eq!(r.count(TagId(1)), 1);
        assert_eq!(r.count(TagId(2)), 0);
        assert_eq!(r.total(), 1);
        assert_eq!(r.distinct(), 1);
    }

    #[test]
    #[should_panic(expected = "never added")]
    fn removing_unknown_tag_panics() {
        let mut r = rfd_of(&[1]);
        r.remove_tags(&[TagId(7)]);
    }

    #[test]
    fn cosine_of_identical_is_one() {
        let r = rfd_of(&[1, 1, 2]);
        assert!((r.cosine(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_disjoint_is_zero() {
        let a = rfd_of(&[1, 2]);
        let b = rfd_of(&[3, 4]);
        assert_eq!(a.cosine(&b), 0.0);
        assert_eq!(a.cosine(&Rfd::new()), 0.0);
    }

    #[test]
    fn tv_known_value() {
        // f1 = {1: .5, 2: .5}, f2 = {1: 1.0} → TV = ½(|.5−1| + .5) = .5
        let a = rfd_of(&[1, 2]);
        let b = rfd_of(&[1]);
        assert!((a.tv(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tv_empty_conventions() {
        let e = Rfd::new();
        let r = rfd_of(&[1]);
        assert_eq!(e.tv(&e), 0.0);
        assert_eq!(e.tv(&r), 1.0);
        assert_eq!(r.tv(&e), 1.0);
    }

    #[test]
    fn tv_to_latent_decreases_with_matching_counts() {
        let latent = TagDistribution::new(vec![(TagId(1), 0.5), (TagId(2), 0.5)]);
        let close = rfd_of(&[1, 2, 1, 2]);
        let far = rfd_of(&[1, 1, 1, 1]);
        assert!(close.tv_to_latent(&latent) < far.tv_to_latent(&latent));
        assert_eq!(Rfd::new().tv_to_latent(&latent), 1.0);
    }

    #[test]
    fn tv_to_latent_counts_noise_outside_support() {
        let latent = TagDistribution::new(vec![(TagId(1), 1.0)]);
        let noisy = rfd_of(&[1, 99]);
        // f = {1: .5, 99: .5}; TV = ½(|.5−1| + .5) = .5
        assert!((noisy.tv_to_latent(&latent) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn top_k_is_deterministic_under_ties() {
        let r = rfd_of(&[5, 3, 5, 3, 1]);
        assert_eq!(r.top_k(2), vec![TagId(3), TagId(5)]);
        assert_eq!(r.top_k(0), Vec::<TagId>::new());
    }

    #[test]
    fn jaccard_top_k_cases() {
        let a = rfd_of(&[1, 2, 3]);
        let b = rfd_of(&[2, 3, 4]);
        // top-3 sets {1,2,3} vs {2,3,4}: |∩| = 2, |∪| = 4.
        assert!((a.jaccard_top_k(&b, 3) - 0.5).abs() < 1e-12);
        assert_eq!(Rfd::new().jaccard_top_k(&Rfd::new(), 3), 0.0);
        assert!((a.jaccard_top_k(&a, 3) - 1.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn tv_is_a_bounded_symmetric_metric(
            xs in proptest::collection::vec(0u32..20, 1..40),
            ys in proptest::collection::vec(0u32..20, 1..40),
        ) {
            let a = rfd_of(&xs);
            let b = rfd_of(&ys);
            let d = a.tv(&b);
            prop_assert!((0.0..=1.0).contains(&d));
            prop_assert!((a.tv(&b) - b.tv(&a)).abs() < 1e-12);
            prop_assert!(a.tv(&a) < 1e-12);
        }

        #[test]
        fn cosine_is_bounded_and_symmetric(
            xs in proptest::collection::vec(0u32..20, 1..40),
            ys in proptest::collection::vec(0u32..20, 1..40),
        ) {
            let a = rfd_of(&xs);
            let b = rfd_of(&ys);
            let c = a.cosine(&b);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!((a.cosine(&b) - b.cosine(&a)).abs() < 1e-9);
        }

        #[test]
        fn add_then_remove_is_identity(
            base in proptest::collection::vec(0u32..10, 1..30),
            extra in proptest::collection::vec(0u32..10, 1..10),
        ) {
            let before = rfd_of(&base);
            let mut after = before.clone();
            let extra_tags: Vec<TagId> = extra.iter().map(|&t| TagId(t)).collect();
            after.add_tags(&extra_tags);
            after.remove_tags(&extra_tags);
            prop_assert_eq!(before, after);
        }
    }
}
