//! # itag-quality — tagging-quality metrics
//!
//! Implements Section II of the paper: the quality `q_i(k_i)` of a resource
//! with `k_i` posts, "based on the stability of relative frequency
//! distributions (rfds) of the tags", and the dataset quality
//! `q(R, k⃗) = (1/n) Σ q_i(k_i)`.
//!
//! Three layers:
//!
//! * [`rfd`] — relative frequency distributions and distance kernels;
//! * [`history`] + [`metric`] — per-resource quality state and the metric
//!   family (windowed stability — the paper's metric — plus a simulation
//!   oracle that measures true convergence to the latent distribution);
//! * [`curve`] + [`gain`] — learning curves `q̂(k) ≈ q∞ − a/√(k+b)` used to
//!   project marginal quality gains for the OPT allocator and the provider
//!   feedback screens.
//!
//! ```
//! use itag_model::ids::TagId;
//! use itag_quality::{QualityMetric, ResourceQuality};
//!
//! let metric = QualityMetric::default();
//! let mut state = ResourceQuality::new(5);
//! assert_eq!(metric.eval(&state, None), 0.0); // no posts: lowest quality
//! for _ in 0..10 {
//!     state.push_post(&[TagId(1), TagId(2)]); // perfectly agreeing crowd
//! }
//! assert!(metric.eval(&state, None) > 0.99); // stable rfd: high quality
//! ```

pub mod aggregate;
pub mod curve;
pub mod gain;
pub mod history;
pub mod metric;
pub mod rfd;

pub use aggregate::{QualityHistogram, QualitySummary};
pub use curve::LearningCurve;
pub use gain::GainEstimator;
pub use history::ResourceQuality;
pub use metric::{QualityMetric, StabilityKernel};
pub use rfd::Rfd;

/// Dataset-level quality: the mean of per-resource qualities
/// (`q(R, k⃗)` in the paper).
pub fn mean_quality(qualities: &[f64]) -> f64 {
    if qualities.is_empty() {
        return 0.0;
    }
    qualities.iter().sum::<f64>() / qualities.len() as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn mean_quality_handles_empty_and_values() {
        assert_eq!(super::mean_quality(&[]), 0.0);
        assert!((super::mean_quality(&[0.0, 1.0]) - 0.5).abs() < 1e-12);
    }
}
