//! Distribution summaries of per-resource qualities.
//!
//! The provider screens show more than the mean: "resources can be sorted
//! according to some rules (e.g., tagging quality)" implies the provider
//! reasons about the *distribution* — how many resources are still bad,
//! how compressed the corpus is. These summaries also back the
//! `satisfied-vs-budget` figure and the monitor's percentile readouts.

use serde::{Deserialize, Serialize};

/// Percentile/shape summary of a quality vector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualitySummary {
    pub count: usize,
    pub mean: f64,
    pub min: f64,
    pub p10: f64,
    pub median: f64,
    pub p90: f64,
    pub max: f64,
    /// Population standard deviation.
    pub stddev: f64,
}

impl QualitySummary {
    /// Summarizes `values` (all expected in `[0, 1]`; empty input yields
    /// an all-zero summary).
    pub fn compute(values: &[f64]) -> Self {
        if values.is_empty() {
            return QualitySummary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                p10: 0.0,
                median: 0.0,
                p90: 0.0,
                max: 0.0,
                stddev: 0.0,
            };
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let n = sorted.len();
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        let pct = |p: f64| -> f64 {
            // Nearest-rank percentile on the sorted vector.
            let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
            sorted[rank - 1]
        };
        QualitySummary {
            count: n,
            mean,
            min: sorted[0],
            p10: pct(0.10),
            median: pct(0.50),
            p90: pct(0.90),
            max: sorted[n - 1],
            stddev: var.sqrt(),
        }
    }

    /// Interquantile spread `p90 − p10`: how *unevenly* quality is
    /// distributed. MU-style equalization drives this down; FC drives it
    /// up (head improves, tail starves).
    pub fn spread(&self) -> f64 {
        self.p90 - self.p10
    }
}

/// Fixed-width histogram over `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityHistogram {
    /// Bin counts; bin `i` covers `[i/bins, (i+1)/bins)`, the last bin is
    /// closed at 1.0.
    pub bins: Vec<usize>,
}

impl QualityHistogram {
    /// Histograms `values` into `bins` buckets.
    ///
    /// # Panics
    /// Panics when `bins == 0`.
    pub fn compute(values: &[f64], bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        let mut counts = vec![0usize; bins];
        for &v in values {
            let clamped = v.clamp(0.0, 1.0);
            let idx = ((clamped * bins as f64) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        QualityHistogram { bins: counts }
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.bins.iter().sum()
    }

    /// ASCII sparkline-ish rendering for console monitors.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let bar = "#".repeat(c * width / max);
                format!(
                    "[{:>4.2}) {:>6} {}",
                    i as f64 / self.bins.len() as f64,
                    c,
                    bar
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_known_vector() {
        let values: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
        let s = QualitySummary::compute(&values);
        assert_eq!(s.count, 10);
        assert!((s.mean - 0.55).abs() < 1e-12);
        assert_eq!(s.min, 0.1);
        assert_eq!(s.max, 1.0);
        assert_eq!(s.p10, 0.1);
        assert_eq!(s.median, 0.5);
        assert_eq!(s.p90, 0.9);
        assert!((s.spread() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = QualitySummary::compute(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn equalized_corpus_has_smaller_spread() {
        let compressed = vec![0.7; 100];
        let spread_out: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        assert!(
            QualitySummary::compute(&compressed).spread()
                < QualitySummary::compute(&spread_out).spread()
        );
    }

    #[test]
    fn histogram_bins_cover_the_unit_interval() {
        let h = QualityHistogram::compute(&[0.0, 0.05, 0.5, 0.95, 1.0], 10);
        assert_eq!(h.total(), 5);
        assert_eq!(h.bins[0], 2); // 0.0, 0.05
        assert_eq!(h.bins[5], 1); // 0.5
        assert_eq!(h.bins[9], 2); // 0.95, 1.0 (closed top bin)
    }

    #[test]
    fn histogram_render_has_one_line_per_bin() {
        let h = QualityHistogram::compute(&[0.1, 0.9], 4);
        assert_eq!(h.render(20).lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = QualityHistogram::compute(&[0.5], 0);
    }

    proptest! {
        #[test]
        fn summary_stats_are_ordered(values in proptest::collection::vec(0.0f64..=1.0, 1..200)) {
            let s = QualitySummary::compute(&values);
            prop_assert!(s.min <= s.p10);
            prop_assert!(s.p10 <= s.median);
            prop_assert!(s.median <= s.p90);
            prop_assert!(s.p90 <= s.max);
            prop_assert!(s.min <= s.mean && s.mean <= s.max);
            prop_assert!(s.stddev >= 0.0);
        }

        #[test]
        fn histogram_conserves_mass(
            values in proptest::collection::vec(0.0f64..=1.0, 0..200),
            bins in 1usize..20,
        ) {
            let h = QualityHistogram::compute(&values, bins);
            prop_assert_eq!(h.total(), values.len());
        }
    }
}
