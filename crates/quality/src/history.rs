//! Per-resource quality state: the live rfd, a short post ring for lagged
//! rfd reconstruction, and the recorded quality series.
//!
//! Windowed stability needs `rfd` at post count `k − w`. Rather than
//! snapshotting whole rfds per post, the state keeps the last `max_lag`
//! posts' tag lists and *subtracts* them from the live rfd on demand —
//! O(w · tags-per-post) per evaluation, O(w) memory.

use crate::rfd::Rfd;
use itag_model::ids::TagId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A `(post count, quality)` sample of a resource's quality evolution —
/// the series behind the project-details chart (Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityPoint {
    pub k: u32,
    pub quality: f64,
}

/// Live quality state of one resource.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceQuality {
    rfd: Rfd,
    /// Tag lists of the most recent posts, newest at the back.
    recent: VecDeque<Vec<TagId>>,
    max_lag: usize,
    posts: u32,
    series: Vec<QualityPoint>,
}

impl ResourceQuality {
    /// State able to reconstruct rfds up to `max_lag` posts back.
    ///
    /// # Panics
    /// Panics if `max_lag == 0`; stability needs at least lag 1.
    pub fn new(max_lag: usize) -> Self {
        assert!(max_lag >= 1, "max_lag must be at least 1");
        ResourceQuality {
            rfd: Rfd::new(),
            recent: VecDeque::with_capacity(max_lag + 1),
            max_lag,
            posts: 0,
            series: Vec::new(),
        }
    }

    /// Folds in one post.
    pub fn push_post(&mut self, tags: &[TagId]) {
        self.rfd.add_tags(tags);
        self.posts += 1;
        self.recent.push_back(tags.to_vec());
        if self.recent.len() > self.max_lag {
            self.recent.pop_front();
        }
    }

    /// Convenience: replay a whole post sequence.
    pub fn seed_from_posts<'a, I: IntoIterator<Item = &'a [TagId]>>(&mut self, posts: I) {
        for tags in posts {
            self.push_post(tags);
        }
    }

    /// Number of posts folded in (`k_i`).
    pub fn posts(&self) -> u32 {
        self.posts
    }

    /// The live rfd.
    pub fn rfd(&self) -> &Rfd {
        &self.rfd
    }

    /// Largest reconstructible lag right now.
    pub fn available_lag(&self) -> usize {
        self.recent.len()
    }

    /// The rfd as it was `lag` posts ago (clamped to the available lag).
    pub fn rfd_at_lag(&self, lag: usize) -> Rfd {
        let lag = lag.min(self.recent.len());
        let mut past = self.rfd.clone();
        for tags in self.recent.iter().rev().take(lag) {
            past.remove_tags(tags);
        }
        past
    }

    /// Records a quality sample at the current post count.
    pub fn record(&mut self, quality: f64) {
        self.series.push(QualityPoint {
            k: self.posts,
            quality,
        });
    }

    /// The recorded quality series (chronological).
    pub fn series(&self) -> &[QualityPoint] {
        &self.series
    }

    /// Most recently recorded quality, if any.
    pub fn last_recorded(&self) -> Option<f64> {
        self.series.last().map(|p| p.quality)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tags(xs: &[u32]) -> Vec<TagId> {
        xs.iter().map(|&x| TagId(x)).collect()
    }

    #[test]
    fn lag_reconstruction_matches_replay_from_scratch() {
        let posts = vec![
            tags(&[1, 2]),
            tags(&[1]),
            tags(&[3, 4, 1]),
            tags(&[2, 2]), // Post::new would dedupe; Rfd counts raw adds
            tags(&[5]),
        ];
        let mut state = ResourceQuality::new(3);
        for p in &posts {
            state.push_post(p);
        }
        for lag in 0..=3usize {
            let lagged = state.rfd_at_lag(lag);
            let mut expect = Rfd::new();
            for p in &posts[..posts.len() - lag] {
                expect.add_tags(p);
            }
            assert_eq!(lagged, expect, "lag {lag}");
        }
    }

    #[test]
    fn lag_clamps_to_available_history() {
        let mut state = ResourceQuality::new(5);
        state.push_post(&tags(&[1]));
        let past = state.rfd_at_lag(10);
        assert!(past.is_empty(), "only one post exists; lag 10 clamps to 1");
    }

    #[test]
    fn ring_is_bounded_by_max_lag() {
        let mut state = ResourceQuality::new(2);
        for i in 0..100u32 {
            state.push_post(&tags(&[i % 5]));
        }
        assert_eq!(state.available_lag(), 2);
        assert_eq!(state.posts(), 100);
        assert_eq!(state.rfd().total(), 100);
    }

    #[test]
    fn series_records_in_order() {
        let mut state = ResourceQuality::new(1);
        state.push_post(&tags(&[1]));
        state.record(0.2);
        state.push_post(&tags(&[1]));
        state.record(0.5);
        assert_eq!(state.series().len(), 2);
        assert_eq!(state.series()[0].k, 1);
        assert_eq!(state.last_recorded(), Some(0.5));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_lag_state_rejected() {
        let _ = ResourceQuality::new(0);
    }

    proptest! {
        #[test]
        fn reconstruction_invariant_holds_for_arbitrary_posts(
            post_tags in proptest::collection::vec(
                proptest::collection::vec(0u32..8, 1..4), 1..20),
            max_lag in 1usize..6,
        ) {
            let mut state = ResourceQuality::new(max_lag);
            let posts: Vec<Vec<TagId>> = post_tags.iter().map(|p| tags(p)).collect();
            for p in &posts {
                state.push_post(p);
            }
            let lag = max_lag.min(posts.len());
            let lagged = state.rfd_at_lag(lag);
            let mut expect = Rfd::new();
            for p in &posts[..posts.len() - lag] {
                expect.add_tags(p);
            }
            prop_assert_eq!(lagged, expect);
        }
    }
}
