//! Learning curves: projected quality as a function of post count.
//!
//! Multinomial concentration gives `E[TV(rfd_k, p)] ≈ κ/√k`, so quality
//! follows `q(k) ≈ q∞ − a/√(k+b)`. The OPT allocator plans with these
//! curves; the Quality Manager fits them to observed series to project
//! "quality gains" on the provider screens (Fig. 3/5).

use crate::history::QualityPoint;
use serde::{Deserialize, Serialize};

/// `q̂(k) = clamp(q∞ − a/√(k+b), 0, 1)`, with `a ≥ 0` so the curve is
/// non-decreasing and concave — which makes greedy unit-by-unit budget
/// allocation optimal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearningCurve {
    pub q_inf: f64,
    pub a: f64,
    pub b: f64,
}

impl LearningCurve {
    /// Oracle curve from the analytic instability coefficient
    /// [`itag_model::vocab::TagDistribution::kappa`]:
    /// `q̂(k) = 1 − κ/√(k + κ²)`.
    ///
    /// The `b = κ²` offset makes `q̂(0) = 0` exactly, so the curve is
    /// smooth, increasing and concave over its whole domain — no clamped
    /// region where marginals would spuriously vanish (which would break
    /// the optimality of greedy allocation).
    pub fn from_kappa(kappa: f64) -> Self {
        let a = kappa.max(0.0);
        LearningCurve {
            q_inf: 1.0,
            a,
            b: a * a,
        }
    }

    /// A flat zero-gain curve (used for resources where nothing is known
    /// and no prior applies).
    pub fn flat(q: f64) -> Self {
        LearningCurve {
            q_inf: q.clamp(0.0, 1.0),
            a: 0.0,
            b: 0.0,
        }
    }

    /// A generic prior for unseen resources: pessimistic start, moderate
    /// convergence pace (κ ≈ 2 matches a ~20-tag Zipf support).
    pub fn default_prior() -> Self {
        LearningCurve {
            q_inf: 1.0,
            a: 2.0,
            b: 1.0,
        }
    }

    /// Projected quality after `k` posts.
    pub fn predict(&self, k: u32) -> f64 {
        if self.a == 0.0 {
            return self.q_inf.clamp(0.0, 1.0);
        }
        let kk = k as f64 + self.b;
        if kk <= 0.0 {
            return 0.0;
        }
        (self.q_inf - self.a / kk.sqrt()).clamp(0.0, 1.0)
    }

    /// Projected gain of one more post at count `k`: `q̂(k+1) − q̂(k)`.
    /// Non-negative by construction.
    pub fn marginal(&self, k: u32) -> f64 {
        (self.predict(k + 1) - self.predict(k)).max(0.0)
    }

    /// Projected gain of `extra` more posts at count `k`.
    pub fn gain(&self, k: u32, extra: u32) -> f64 {
        (self.predict(k + extra) - self.predict(k)).max(0.0)
    }

    /// Marginal of the **unclamped** curve `q∞ − a/√(k+b)`: strictly
    /// decreasing in `k`, so greedy allocation planned with it is optimal
    /// even where the clamped curve sits flat at 0 or 1 (fitted curves can
    /// have such regions; the oracle curve never does).
    pub fn planning_marginal(&self, k: u32) -> f64 {
        if self.a == 0.0 {
            return 0.0;
        }
        let kk = k as f64 + self.b;
        if kk <= 0.0 {
            // Degenerate caller-constructed curve; fall back to the
            // clamped marginal rather than dividing by zero.
            return self.marginal(k);
        }
        self.a * (1.0 / kk.sqrt() - 1.0 / (kk + 1.0).sqrt())
    }

    /// Least-squares fit of `q∞` and `a` on `q = q∞ − a·x`, `x = 1/√(k+b)`
    /// with `b = 1` fixed. Needs at least two samples at distinct `k`;
    /// returns `None` otherwise. A negative fitted `a` (quality *falling*
    /// with posts — noise) is clamped to the flat curve at the series mean.
    pub fn fit(points: &[QualityPoint]) -> Option<LearningCurve> {
        const B: f64 = 1.0;
        if points.len() < 2 {
            return None;
        }
        let n = points.len() as f64;
        let xs: Vec<f64> = points
            .iter()
            .map(|p| 1.0 / (p.k as f64 + B).sqrt())
            .collect();
        let ys: Vec<f64> = points.iter().map(|p| p.quality).collect();
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
        if sxx < 1e-12 {
            return None; // all samples at the same k
        }
        let sxy: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mean_x) * (y - mean_y))
            .sum();
        let slope = sxy / sxx; // = −a
        let a = (-slope).max(0.0);
        if a == 0.0 {
            return Some(LearningCurve::flat(mean_y));
        }
        let q_inf = (mean_y + a * mean_x).clamp(0.0, 1.5);
        Some(LearningCurve { q_inf, a, b: B })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn predict_is_monotone_and_bounded() {
        let c = LearningCurve::from_kappa(1.5);
        let mut prev = c.predict(0);
        for k in 1..200 {
            let q = c.predict(k);
            assert!(q >= prev, "monotone at k={k}");
            assert!((0.0..=1.0).contains(&q));
            prev = q;
        }
        assert!(c.predict(10_000) > 0.98);
    }

    #[test]
    fn marginals_decrease_once_unclamped() {
        // Concavity: after the 0-clamp region ends, marginal gains shrink.
        let c = LearningCurve::from_kappa(1.0);
        let start = (1..500)
            .find(|&k| c.predict(k) > 0.0)
            .expect("curve rises eventually");
        let mut prev = c.marginal(start);
        for k in start + 1..start + 100 {
            let m = c.marginal(k);
            assert!(
                m <= prev + 1e-12,
                "marginal must not grow: k={k}, {m} > {prev}"
            );
            prev = m;
        }
    }

    #[test]
    fn gain_equals_sum_of_marginals() {
        let c = LearningCurve::default_prior();
        let direct = c.gain(10, 5);
        let summed: f64 = (10..15).map(|k| c.marginal(k)).sum();
        assert!((direct - summed).abs() < 1e-12);
    }

    #[test]
    fn flat_curve_has_zero_gain() {
        let c = LearningCurve::flat(0.7);
        assert_eq!(c.predict(0), 0.7);
        assert_eq!(c.marginal(100), 0.0);
    }

    #[test]
    fn fit_recovers_synthetic_parameters() {
        let truth = LearningCurve {
            q_inf: 0.95,
            a: 1.8,
            b: 1.0,
        };
        let points: Vec<QualityPoint> = (1..60)
            .map(|k| QualityPoint {
                k,
                quality: truth.q_inf - truth.a / ((k as f64 + 1.0).sqrt()),
            })
            .collect();
        let fitted = LearningCurve::fit(&points).expect("fit");
        assert!((fitted.q_inf - truth.q_inf).abs() < 0.02, "{fitted:?}");
        assert!((fitted.a - truth.a).abs() < 0.05, "{fitted:?}");
    }

    #[test]
    fn fit_requires_two_distinct_ks() {
        assert!(LearningCurve::fit(&[]).is_none());
        assert!(LearningCurve::fit(&[QualityPoint { k: 3, quality: 0.5 }]).is_none());
        let same_k = vec![
            QualityPoint { k: 3, quality: 0.5 },
            QualityPoint { k: 3, quality: 0.6 },
        ];
        assert!(LearningCurve::fit(&same_k).is_none());
    }

    #[test]
    fn fit_clamps_declining_series_to_flat() {
        // Quality falling with k would imply negative marginal gains; the
        // fit must degrade to a flat curve instead.
        let points: Vec<QualityPoint> = (1..20)
            .map(|k| QualityPoint {
                k,
                quality: 0.9 - 0.01 * k as f64,
            })
            .collect();
        let fitted = LearningCurve::fit(&points).expect("fit");
        assert_eq!(fitted.a, 0.0);
        assert!(fitted.marginal(5) == 0.0);
    }

    proptest! {
        #[test]
        fn predict_always_in_unit_interval(
            kappa in 0.0f64..10.0,
            k in 0u32..10_000,
        ) {
            let c = LearningCurve::from_kappa(kappa);
            let q = c.predict(k);
            prop_assert!((0.0..=1.0).contains(&q));
        }

        #[test]
        fn marginal_never_negative(
            q_inf in 0.0f64..1.0,
            a in 0.0f64..5.0,
            b in 0.0f64..4.0,
            k in 0u32..1000,
        ) {
            let c = LearningCurve { q_inf, a, b };
            prop_assert!(c.marginal(k) >= 0.0);
        }
    }
}
