//! Per-resource projected-gain models for budget allocation.
//!
//! The OPT allocator needs `Δ_i(x) = q̂_i(c_i + x) − q̂_i(c_i)` for every
//! resource. Two sources exist:
//!
//! * **Oracle** — curves derived analytically from the latent distributions
//!   (`κ/√k` concentration). This is the "optimal allocation strategy" the
//!   demo compares against: it knows what no real strategy can know.
//! * **Fitted** — curves fitted to each resource's observed quality series,
//!   falling back to a shared prior when the series is too short. This is
//!   what a deployed iTag can actually compute, and what the Quality
//!   Manager shows providers as "projected quality gains".

use crate::curve::LearningCurve;
use crate::history::ResourceQuality;
use itag_model::vocab::TagDistribution;

/// A bank of per-resource learning curves.
#[derive(Debug, Clone)]
pub struct GainEstimator {
    curves: Vec<LearningCurve>,
}

impl GainEstimator {
    /// Oracle curves from latent distributions (one per resource).
    pub fn oracle(latents: &[TagDistribution]) -> Self {
        GainEstimator {
            curves: latents
                .iter()
                .map(|l| LearningCurve::from_kappa(l.kappa()))
                .collect(),
        }
    }

    /// `n` copies of the shared prior; call [`GainEstimator::refit`] as
    /// series accumulate.
    pub fn with_prior(n: usize, prior: LearningCurve) -> Self {
        GainEstimator {
            curves: vec![prior; n],
        }
    }

    /// Number of resources covered.
    pub fn len(&self) -> usize {
        self.curves.len()
    }

    /// True when covering no resources.
    pub fn is_empty(&self) -> bool {
        self.curves.is_empty()
    }

    /// Re-fits resource `i`'s curve from its recorded quality series;
    /// keeps the previous curve when the series cannot be fitted yet.
    pub fn refit(&mut self, i: usize, state: &ResourceQuality) {
        if let Some(c) = LearningCurve::fit(state.series()) {
            self.curves[i] = c;
        }
    }

    /// The curve of resource `i`.
    pub fn curve(&self, i: usize) -> &LearningCurve {
        &self.curves[i]
    }

    /// Projected quality of resource `i` after `k` posts.
    pub fn predict(&self, i: usize, k: u32) -> f64 {
        self.curves[i].predict(k)
    }

    /// Projected gain of one more post for resource `i` at count `k`.
    pub fn marginal(&self, i: usize, k: u32) -> f64 {
        self.curves[i].marginal(k)
    }

    /// Planning marginal (unclamped; see
    /// [`LearningCurve::planning_marginal`]).
    pub fn planning_marginal(&self, i: usize, k: u32) -> f64 {
        self.curves[i].planning_marginal(k)
    }

    /// Projected total gain of spending `budget` optimally (greedy over
    /// marginals) starting from `counts`; returns `(gain, allocation)`.
    /// This is the planning core of OPT, exposed here so the Quality
    /// Manager can show providers the projected effect of added budget.
    pub fn plan_greedy(&self, counts: &[u32], budget: u32) -> (f64, Vec<u32>) {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;

        #[derive(PartialEq)]
        struct Cand {
            gain: f64,
            i: usize,
            k: u32,
        }
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, other: &Self) -> Ordering {
                // Max-heap by gain; deterministic tie-break by index.
                self.gain
                    .partial_cmp(&other.gain)
                    .unwrap_or(Ordering::Equal)
                    .then_with(|| other.i.cmp(&self.i))
            }
        }

        assert_eq!(counts.len(), self.curves.len(), "counts/curves mismatch");
        let mut alloc = vec![0u32; counts.len()];
        let mut heap: BinaryHeap<Cand> = (0..counts.len())
            .map(|i| Cand {
                gain: self.planning_marginal(i, counts[i]),
                i,
                k: counts[i],
            })
            .collect();
        let mut total = 0.0;
        for _ in 0..budget {
            let Some(top) = heap.pop() else { break };
            if top.gain <= 0.0 {
                break; // nothing left to gain anywhere
            }
            // Account the *clamped* (truthful) gain of this unit.
            total += self.marginal(top.i, top.k);
            alloc[top.i] += 1;
            heap.push(Cand {
                gain: self.planning_marginal(top.i, top.k + 1),
                i: top.i,
                k: top.k + 1,
            });
        }
        (total, alloc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itag_model::ids::TagId;

    fn latents() -> Vec<TagDistribution> {
        vec![
            // Peaked: converges fast, low κ.
            TagDistribution::new(vec![(TagId(0), 0.9), (TagId(1), 0.1)]),
            // Flat over 10 tags: converges slowly, high κ.
            TagDistribution::new((0..10).map(|i| (TagId(i), 0.1)).collect()),
        ]
    }

    #[test]
    fn oracle_orders_resources_by_convergence_difficulty() {
        let g = GainEstimator::oracle(&latents());
        // The flat resource needs more posts to reach the same quality.
        assert!(g.predict(1, 50) < g.predict(0, 50));
        assert!(g.curve(1).a > g.curve(0).a);
    }

    #[test]
    fn greedy_plan_spends_whole_budget_when_gains_exist() {
        let g = GainEstimator::oracle(&latents());
        let (gain, alloc) = g.plan_greedy(&[0, 0], 50);
        assert_eq!(alloc.iter().sum::<u32>(), 50);
        assert!(gain > 0.0);
        // The hard (flat) resource must receive the larger share.
        assert!(
            alloc[1] > alloc[0],
            "flat resource should get more: {alloc:?}"
        );
    }

    #[test]
    fn greedy_plan_stops_when_no_gain_remains() {
        let g = GainEstimator::with_prior(3, LearningCurve::flat(0.9));
        let (gain, alloc) = g.plan_greedy(&[0, 5, 10], 100);
        assert_eq!(gain, 0.0);
        assert_eq!(alloc, vec![0, 0, 0]);
    }

    #[test]
    fn greedy_matches_exhaustive_on_tiny_instance() {
        let g = GainEstimator::oracle(&latents());
        let counts = [2u32, 2];
        let budget = 6u32;
        let (greedy_gain, _) = g.plan_greedy(&counts, budget);
        // Exhaustive search over all splits of 6 tasks between 2 resources.
        let mut best = f64::MIN;
        for x0 in 0..=budget {
            let x1 = budget - x0;
            let gain = g.curve(0).gain(counts[0], x0) + g.curve(1).gain(counts[1], x1);
            best = best.max(gain);
        }
        assert!(
            (greedy_gain - best).abs() < 1e-9,
            "greedy {greedy_gain} vs exhaustive {best}"
        );
    }

    #[test]
    fn refit_updates_curve_from_series() {
        let mut g = GainEstimator::with_prior(1, LearningCurve::default_prior());
        let mut state = ResourceQuality::new(3);
        // Build a series that saturates immediately: quality 0.9 at all k.
        for k in 1..10u32 {
            state.push_post(&[TagId(0)]);
            let _ = k;
            state.record(0.9);
        }
        g.refit(0, &state);
        assert!(g.marginal(0, 20) < LearningCurve::default_prior().marginal(20));
    }

    #[test]
    #[should_panic(expected = "counts/curves mismatch")]
    fn plan_validates_input_shape() {
        let g = GainEstimator::with_prior(2, LearningCurve::default_prior());
        let _ = g.plan_greedy(&[0], 1);
    }
}
