//! The quality metric family.
//!
//! **Stability** (the paper's metric): how little the rfd moved over the
//! last `window` posts, measured by a similarity kernel, scaled by a
//! confidence ramp `min(1, (k−1)/window)` so that a resource cannot look
//! "stable" before it has at least `window+1` posts. Resources with 0 or 1
//! posts score 0 — they are exactly the "low tagging quality" resources the
//! paper's motivation describes.
//!
//! **Oracle** (simulation-only): `1 − TV(rfd, latent)`, the true
//! convergence to the latent distribution. Benchmarks report it alongside
//! stability to show the stability signal tracks real convergence
//! (`figures -- convergence`).

use crate::history::ResourceQuality;
use crate::rfd::Rfd;
use itag_model::vocab::TagDistribution;
use serde::{Deserialize, Serialize};

/// Similarity kernel comparing the current rfd to a lagged one.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StabilityKernel {
    /// Cosine similarity of the frequency vectors.
    Cosine,
    /// `1 − total variation distance`.
    OneMinusTv,
    /// Jaccard similarity of the top-`k` tag sets (coarse but cheap; the
    /// set of "agreed" tags matters more than exact frequencies).
    TopKJaccard { k: usize },
}

impl StabilityKernel {
    /// Similarity between `now` and `past`, in `[0, 1]`.
    pub fn similarity(&self, now: &Rfd, past: &Rfd) -> f64 {
        match self {
            StabilityKernel::Cosine => now.cosine(past),
            StabilityKernel::OneMinusTv => 1.0 - now.tv(past),
            StabilityKernel::TopKJaccard { k } => now.jaccard_top_k(past, *k),
        }
    }

    /// Short label used in figures and ablation tables.
    pub fn label(&self) -> String {
        match self {
            StabilityKernel::Cosine => "cosine".to_string(),
            StabilityKernel::OneMinusTv => "1-tv".to_string(),
            StabilityKernel::TopKJaccard { k } => format!("jaccard@{k}"),
        }
    }
}

/// A quality metric `q_i(k_i) ∈ [0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QualityMetric {
    /// The paper's rfd-stability metric.
    Stability {
        /// Lag (in posts) between the compared rfds.
        window: u32,
        kernel: StabilityKernel,
    },
    /// Stability with exponential smoothing over the recorded series:
    /// `q = α·raw + (1−α)·previous`. Damps the post-to-post jitter of the
    /// raw signal so MU's ranking churns less (the DESIGN.md §2 option).
    SmoothedStability {
        window: u32,
        kernel: StabilityKernel,
        /// Smoothing weight of the *new* observation, in `(0, 1]`.
        alpha: f64,
    },
    /// Ground-truth convergence (needs the latent distribution; simulation
    /// only).
    Oracle,
}

impl Default for QualityMetric {
    /// `Stability { window: 5, Cosine }` — the configuration used by every
    /// experiment unless stated otherwise.
    fn default() -> Self {
        QualityMetric::Stability {
            window: 5,
            kernel: StabilityKernel::Cosine,
        }
    }
}

impl QualityMetric {
    /// Evaluates the metric on `state`. `latent` is required by
    /// [`QualityMetric::Oracle`] and ignored by stability.
    ///
    /// # Panics
    /// Panics when `Oracle` is evaluated without a latent distribution —
    /// that combination is a harness bug, not a runtime condition.
    // lint: allow(panic-path)
    pub fn eval(&self, state: &ResourceQuality, latent: Option<&TagDistribution>) -> f64 {
        match self {
            QualityMetric::Stability { window, kernel } => raw_stability(state, *window, *kernel),
            QualityMetric::SmoothedStability {
                window,
                kernel,
                alpha,
            } => {
                assert!(
                    (0.0..=1.0).contains(alpha) && *alpha > 0.0,
                    "alpha must be in (0, 1]"
                );
                let raw = raw_stability(state, *window, *kernel);
                match state.last_recorded() {
                    Some(prev) => (alpha * raw + (1.0 - alpha) * prev).clamp(0.0, 1.0),
                    None => raw,
                }
            }
            QualityMetric::Oracle => {
                let latent = latent.expect("Oracle metric requires the latent distribution");
                if state.posts() == 0 {
                    return 0.0;
                }
                (1.0 - state.rfd().tv_to_latent(latent)).clamp(0.0, 1.0)
            }
        }
    }

    /// Instability `1 − q`, the MU strategy's ranking signal.
    pub fn instability(&self, state: &ResourceQuality, latent: Option<&TagDistribution>) -> f64 {
        1.0 - self.eval(state, latent)
    }

    /// Label used in figures and ablation tables.
    pub fn label(&self) -> String {
        match self {
            QualityMetric::Stability { window, kernel } => {
                format!("stability(w={window},{})", kernel.label())
            }
            QualityMetric::SmoothedStability {
                window,
                kernel,
                alpha,
            } => format!("stability(w={window},{},ewma={alpha})", kernel.label()),
            QualityMetric::Oracle => "oracle".to_string(),
        }
    }
}

/// Windowed stability with the confidence ramp (the raw paper metric).
fn raw_stability(state: &ResourceQuality, window: u32, kernel: StabilityKernel) -> f64 {
    let k = state.posts();
    if k < 2 {
        return 0.0;
    }
    let lag = (window as usize).min(k as usize - 1);
    let past = state.rfd_at_lag(lag);
    let sim = kernel.similarity(state.rfd(), &past);
    // Confidence ramp: with fewer than window+1 posts the comparison spans
    // fewer than `window` new posts, so similarity is discounted
    // proportionally.
    let confidence = ((k - 1) as f64 / window as f64).min(1.0);
    (sim * confidence).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use itag_model::ids::TagId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tags(xs: &[u32]) -> Vec<TagId> {
        xs.iter().map(|&x| TagId(x)).collect()
    }

    fn metric() -> QualityMetric {
        QualityMetric::Stability {
            window: 3,
            kernel: StabilityKernel::Cosine,
        }
    }

    #[test]
    fn zero_and_one_post_score_zero() {
        let mut state = ResourceQuality::new(3);
        assert_eq!(metric().eval(&state, None), 0.0);
        state.push_post(&tags(&[1]));
        assert_eq!(metric().eval(&state, None), 0.0);
    }

    #[test]
    fn identical_posts_converge_to_one_after_window_fills() {
        let mut state = ResourceQuality::new(3);
        for _ in 0..10 {
            state.push_post(&tags(&[1, 2]));
        }
        let q = metric().eval(&state, None);
        assert!((q - 1.0).abs() < 1e-9, "q = {q}");
    }

    #[test]
    fn confidence_ramp_discounts_early_posts() {
        let m = metric();
        let mut state = ResourceQuality::new(3);
        state.push_post(&tags(&[1]));
        state.push_post(&tags(&[1]));
        // Perfect similarity but only 1 comparison post: q = 1 × (1/3).
        let q = m.eval(&state, None);
        assert!((q - 1.0 / 3.0).abs() < 1e-9, "q = {q}");
    }

    #[test]
    fn churn_scores_lower_than_agreement() {
        let m = metric();
        let mut stable = ResourceQuality::new(3);
        let mut churn = ResourceQuality::new(3);
        for i in 0..12u32 {
            stable.push_post(&tags(&[1, 2]));
            churn.push_post(&tags(&[i * 2, i * 2 + 1])); // all-new tags each post
        }
        assert!(m.eval(&stable, None) > m.eval(&churn, None) + 0.1);
    }

    #[test]
    fn oracle_tracks_true_convergence() {
        let latent = TagDistribution::new(vec![(TagId(0), 0.5), (TagId(1), 0.3), (TagId(2), 0.2)]);
        let mut rng = StdRng::seed_from_u64(42);
        let mut state = ResourceQuality::new(3);
        let m = QualityMetric::Oracle;
        let q_at = |state: &ResourceQuality| m.eval(state, Some(&latent));

        assert_eq!(q_at(&state), 0.0);
        let mut q5 = 0.0;
        let mut q500 = 0.0;
        for k in 1..=500 {
            state.push_post(&[latent.sample_tag(&mut rng)]);
            if k == 5 {
                q5 = q_at(&state);
            }
            if k == 500 {
                q500 = q_at(&state);
            }
        }
        assert!(
            q500 > q5,
            "oracle quality must grow with posts: q5={q5}, q500={q500}"
        );
        assert!(q500 > 0.9, "after 500 honest posts: {q500}");
    }

    #[test]
    fn stability_correlates_with_oracle_under_honest_tagging() {
        // The load-bearing claim behind MU: the observable stability signal
        // moves with the unobservable true convergence.
        let latent =
            TagDistribution::new((0..20).map(|i| (TagId(i), 1.0 / (i + 1) as f64)).collect());
        let stab = QualityMetric::default();
        let oracle = QualityMetric::Oracle;
        let mut rng = StdRng::seed_from_u64(7);
        let mut state = ResourceQuality::new(5);
        let mut pairs = Vec::new();
        for _ in 0..300 {
            let n = 1 + (rng.gen_range(0..3u32) as usize);
            let mut post = Vec::new();
            for _ in 0..n {
                post.push(latent.sample_tag(&mut rng));
            }
            state.push_post(&post);
            pairs.push((stab.eval(&state, None), oracle.eval(&state, Some(&latent))));
        }
        // Compare mean stability early vs late; both must rise.
        let early: f64 = pairs[..50].iter().map(|p| p.0).sum::<f64>() / 50.0;
        let late: f64 = pairs[250..].iter().map(|p| p.0).sum::<f64>() / 50.0;
        assert!(late > early, "stability should rise: {early} → {late}");
        let o_early: f64 = pairs[..50].iter().map(|p| p.1).sum::<f64>() / 50.0;
        let o_late: f64 = pairs[250..].iter().map(|p| p.1).sum::<f64>() / 50.0;
        assert!(o_late > o_early);
    }

    #[test]
    fn all_kernels_stay_in_unit_interval() {
        let kernels = [
            StabilityKernel::Cosine,
            StabilityKernel::OneMinusTv,
            StabilityKernel::TopKJaccard { k: 5 },
        ];
        let mut state = ResourceQuality::new(4);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            state.push_post(&tags(&[rng.gen_range(0..10u32)]));
            for kernel in kernels {
                let m = QualityMetric::Stability { window: 4, kernel };
                let q = m.eval(&state, None);
                assert!((0.0..=1.0).contains(&q), "{} gave {q}", m.label());
            }
        }
    }

    #[test]
    fn instability_is_complement() {
        let mut state = ResourceQuality::new(3);
        for _ in 0..8 {
            state.push_post(&tags(&[1]));
        }
        let m = metric();
        assert!((m.eval(&state, None) + m.instability(&state, None) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smoothed_stability_damps_jitter() {
        let latent =
            TagDistribution::new((0..15).map(|i| (TagId(i), 1.0 / (i + 1) as f64)).collect());
        let raw_metric = QualityMetric::Stability {
            window: 3,
            kernel: StabilityKernel::Cosine,
        };
        let smooth_metric = QualityMetric::SmoothedStability {
            window: 3,
            kernel: StabilityKernel::Cosine,
            alpha: 0.3,
        };
        let mut rng = StdRng::seed_from_u64(17);
        // Two identical states fed the same posts; one records raw, one
        // records smoothed — then compare the step-to-step variance.
        let mut raw_state = ResourceQuality::new(3);
        let mut smooth_state = ResourceQuality::new(3);
        let mut raw_series = Vec::new();
        let mut smooth_series = Vec::new();
        for _ in 0..80 {
            let post = vec![latent.sample_tag(&mut rng), latent.sample_tag(&mut rng)];
            raw_state.push_post(&post);
            smooth_state.push_post(&post);
            let rq = raw_metric.eval(&raw_state, None);
            raw_state.record(rq);
            raw_series.push(rq);
            let sq = smooth_metric.eval(&smooth_state, None);
            smooth_state.record(sq);
            smooth_series.push(sq);
        }
        let jitter = |xs: &[f64]| -> f64 {
            xs.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (xs.len() - 1) as f64
        };
        assert!(
            jitter(&smooth_series) < jitter(&raw_series),
            "smoothed jitter {} must be below raw {}",
            jitter(&smooth_series),
            jitter(&raw_series)
        );
        // Both must still converge upward.
        assert!(smooth_series.last().unwrap() > &0.5);
    }

    #[test]
    fn smoothed_equals_raw_on_first_evaluation() {
        let raw = QualityMetric::Stability {
            window: 3,
            kernel: StabilityKernel::Cosine,
        };
        let smooth = QualityMetric::SmoothedStability {
            window: 3,
            kernel: StabilityKernel::Cosine,
            alpha: 0.5,
        };
        let mut state = ResourceQuality::new(3);
        state.push_post(&tags(&[1]));
        state.push_post(&tags(&[1]));
        // No recorded history: the smoothed value falls back to raw.
        assert_eq!(raw.eval(&state, None), smooth.eval(&state, None));
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn smoothed_rejects_bad_alpha() {
        let m = QualityMetric::SmoothedStability {
            window: 3,
            kernel: StabilityKernel::Cosine,
            alpha: 0.0,
        };
        let state = ResourceQuality::new(3);
        let _ = m.eval(&state, None);
    }

    #[test]
    #[should_panic(expected = "requires the latent")]
    fn oracle_without_latent_panics() {
        let state = ResourceQuality::new(2);
        let _ = QualityMetric::Oracle.eval(&state, None);
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(QualityMetric::default().label(), "stability(w=5,cosine)");
        assert_eq!(QualityMetric::Oracle.label(), "oracle");
        assert_eq!(
            QualityMetric::Stability {
                window: 2,
                kernel: StabilityKernel::TopKJaccard { k: 7 }
            }
            .label(),
            "stability(w=2,jaccard@7)"
        );
    }

    use rand::Rng;
}
