//! Static table-id assignments (the engine's schema).
//!
//! Ids are fixed so snapshots written by one build stay readable by the
//! next; add new tables at the end, never renumber.

use itag_store::TableId;

/// Resource records, keyed `(project, resource)`.
pub const RESOURCES: TableId = TableId(1);
/// Tag dictionary, keyed by tag id.
pub const TAGS: TableId = TableId(2);
/// Posts, keyed by global post id.
pub const POSTS: TableId = TableId(3);
/// Provider/tagger profiles, keyed `(role, id)`.
pub const USERS: TableId = TableId(4);
/// Projects, keyed by project id.
pub const PROJECTS: TableId = TableId(5);
/// Retired: per-resource quality snapshots lived here until the quality
/// column was folded into [`RESOURCES`] rows (one staged record per
/// resource per round instead of two). The id stays reserved — never
/// renumber or reuse.
pub const QUALITY_RETIRED: TableId = TableId(6);
/// Secondary index: posts by `(project, resource)`.
pub const IDX_POSTS_BY_RESOURCE: TableId = TableId(7);
/// Secondary index: resources by `(project, post count)` — FP's scan.
pub const IDX_RESOURCE_BY_POSTCOUNT: TableId = TableId(8);
/// Persisted datasets (latents/popularity), keyed by project id.
pub const DATASETS: TableId = TableId(9);
/// Secondary index: posts by `(project, tagger)` — tagger history.
pub const IDX_POSTS_BY_TAGGER: TableId = TableId(10);
/// Engine metadata: the schema-version row lives here. serbin is not
/// self-describing, so record-layout changes bump
/// [`crate::engine::SCHEMA_VERSION`] and this row turns a silent
/// mis-decode of an old database into a clean error at open.
pub const META: TableId = TableId(11);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ids_are_distinct() {
        let all = [
            RESOURCES,
            TAGS,
            POSTS,
            USERS,
            PROJECTS,
            QUALITY_RETIRED,
            IDX_POSTS_BY_RESOURCE,
            IDX_RESOURCE_BY_POSTCOUNT,
            DATASETS,
            IDX_POSTS_BY_TAGGER,
            META,
        ];
        let mut ids: Vec<u16> = all.iter().map(|t| t.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }
}
