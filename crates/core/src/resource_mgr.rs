//! Resource Manager — "in charge of controlling the operations on
//! resources and their related tags, and … responsible for storing
//! resource and tagging information" (Section III-A).

use crate::records::{ResourceRecord, IDX_RESOURCE_BY_POSTCOUNT};
use crate::{EngineError, Result};
use itag_model::ids::{ProjectId, ResourceId};
use itag_model::resource::Resource;
use itag_store::{Store, TypedTable, WriteBatch};
use std::sync::Arc;

/// CRUD + post-count index over project resources.
pub struct ResourceManager {
    table: TypedTable<ResourceRecord>,
    store: Arc<Store>,
}

impl ResourceManager {
    pub fn new(store: Arc<Store>) -> Self {
        ResourceManager {
            table: TypedTable::new(Arc::clone(&store)),
            store,
        }
    }

    /// Uploads a project's resources (all start with the given post
    /// counts and quality snapshots; counts come from the provider's
    /// pre-existing posts, qualities from the initial metric evaluation).
    pub fn upload(
        &self,
        project: ProjectId,
        resources: &[Resource],
        initial_counts: &[u32],
        initial_qualities: &[f64],
    ) -> Result<()> {
        let mut batch = WriteBatch::with_capacity(resources.len() * 2);
        for (i, r) in resources.iter().enumerate() {
            let record = ResourceRecord {
                project,
                resource: r.clone(),
                posts: initial_counts.get(i).copied().unwrap_or(0),
                quality: initial_qualities.get(i).copied().unwrap_or(0.0),
                stopped: false,
            };
            // Write-through: the first tick's reads hit the entity cache.
            self.table.stage_upsert_cached(&mut batch, &record)?;
            IDX_RESOURCE_BY_POSTCOUNT.stage_update(&mut batch, None, Some(&record));
        }
        self.store.commit(batch)?;
        Ok(())
    }

    /// Fetches one resource record.
    pub fn get(&self, project: ProjectId, r: ResourceId) -> Result<ResourceRecord> {
        self.table
            .get(&(project, r))?
            .ok_or(EngineError::UnknownResource(r))
    }

    /// Zero-copy fetch of one resource record: a cache hit hands back the
    /// shared decoded record, so concurrent staging threads never clone
    /// (or decode) a row just to read it. Clone-on-write call sites keep
    /// the `Arc` and clone only if they end up mutating.
    pub fn get_arc(&self, project: ProjectId, r: ResourceId) -> Result<Arc<ResourceRecord>> {
        self.table
            .get_arc(&(project, r))?
            .ok_or(EngineError::UnknownResource(r))
    }

    /// All records of a project, in resource-id order.
    pub fn list(&self, project: ProjectId) -> Result<Vec<ResourceRecord>> {
        let from = (project, ResourceId(0));
        let to = (ProjectId(project.0 + 1), ResourceId(0));
        Ok(self.table.scan_range(&from, Some(&to))?)
    }

    /// Stages a post-count bump (keeps the count index consistent); set
    /// `record.quality` first and the fresh snapshot rides along.
    /// Returns the updated record.
    pub fn stage_increment_posts(
        &self,
        batch: &mut WriteBatch,
        record: &ResourceRecord,
    ) -> Result<ResourceRecord> {
        let mut updated = record.clone();
        updated.posts += 1;
        self.stage_finalize_posts(batch, record.posts, updated.clone())?;
        Ok(updated)
    }

    /// Stages the final record of a round by ownership: `record` already
    /// carries its final post count and quality, `old_posts` is the count
    /// the stored row and index still hold. One encode, zero extra record
    /// clones — the record moves into the write-through cache hint.
    pub fn stage_finalize_posts(
        &self,
        batch: &mut WriteBatch,
        old_posts: u32,
        record: ResourceRecord,
    ) -> Result<()> {
        use itag_store::table::{Entity, KeyCodec};
        let pk = record.primary_key().encoded();
        IDX_RESOURCE_BY_POSTCOUNT.stage_remove(batch, &(record.project, old_posts), &pk);
        IDX_RESOURCE_BY_POSTCOUNT.stage_insert(batch, &(record.project, record.posts), &pk);
        self.table.stage_upsert_owned(batch, record)?;
        Ok(())
    }

    /// Persists the provider's Stop/Resume toggle. The read-modify-write
    /// stages through a single [`WriteBatch`], so the flip commits as one
    /// atomic frame instead of a separate read and write commit.
    pub fn set_stopped(&self, project: ProjectId, r: ResourceId, stopped: bool) -> Result<()> {
        self.table
            .update(&(project, r), |record| record.stopped = stopped)?
            .ok_or(EngineError::UnknownResource(r))?;
        Ok(())
    }

    /// Resources of `project` with fewer than `t` posts, via one ordered
    /// index scan (the figure `lowpost-vs-budget` reads this).
    pub fn below_posts(&self, project: ProjectId, t: u32) -> Result<Vec<(ProjectId, ResourceId)>> {
        let from = (project, 0u32);
        let to = (project, t);
        Ok(IDX_RESOURCE_BY_POSTCOUNT.range(self.store.as_ref(), &from, Some(&to))?)
    }

    /// Number of resources in `project`.
    pub fn count(&self, project: ProjectId) -> Result<usize> {
        Ok(self.list(project)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itag_model::resource::ResourceKind;

    fn mgr() -> ResourceManager {
        ResourceManager::new(Arc::new(Store::in_memory()))
    }

    fn resources(n: u32) -> Vec<Resource> {
        (0..n)
            .map(|i| Resource::synthetic(ResourceId(i), ResourceKind::WebUrl))
            .collect()
    }

    const P: ProjectId = ProjectId(1);

    #[test]
    fn upload_then_list_roundtrip() {
        let m = mgr();
        m.upload(
            P,
            &resources(5),
            &[3, 0, 1, 0, 7],
            &[0.1, 0.2, 0.3, 0.4, 0.5],
        )
        .unwrap();
        let list = m.list(P).unwrap();
        assert_eq!(list.len(), 5);
        assert_eq!(list[0].posts, 3);
        assert_eq!(list[4].posts, 7);
        assert_eq!(m.count(P).unwrap(), 5);
    }

    #[test]
    fn projects_are_isolated() {
        let m = mgr();
        m.upload(P, &resources(3), &[0, 0, 0], &[]).unwrap();
        m.upload(ProjectId(2), &resources(2), &[9, 9], &[]).unwrap();
        assert_eq!(m.list(P).unwrap().len(), 3);
        assert_eq!(m.list(ProjectId(2)).unwrap().len(), 2);
        assert!(m.get(P, ResourceId(0)).unwrap().posts == 0);
        assert!(m.get(ProjectId(2), ResourceId(0)).unwrap().posts == 9);
    }

    #[test]
    fn below_posts_uses_the_count_index() {
        let m = mgr();
        m.upload(P, &resources(4), &[0, 5, 2, 10], &[]).unwrap();
        let low = m.below_posts(P, 3).unwrap();
        let ids: Vec<u32> = low.iter().map(|(_, r)| r.0).collect();
        assert_eq!(ids, vec![0, 2]); // sorted by (count, id): 0 posts, then 2
    }

    #[test]
    fn increment_keeps_index_consistent() {
        let m = mgr();
        m.upload(P, &resources(2), &[0, 0], &[]).unwrap();
        let rec = m.get(P, ResourceId(0)).unwrap();
        let mut batch = WriteBatch::new();
        let updated = m.stage_increment_posts(&mut batch, &rec).unwrap();
        m.table.store().commit(batch).unwrap();
        assert_eq!(updated.posts, 1);
        assert_eq!(m.get(P, ResourceId(0)).unwrap().posts, 1);
        let low = m.below_posts(P, 1).unwrap();
        assert_eq!(low.len(), 1, "only resource 1 still has 0 posts");
        assert_eq!(low[0].1, ResourceId(1));
    }

    #[test]
    fn stop_flag_persists() {
        let m = mgr();
        m.upload(P, &resources(1), &[0], &[]).unwrap();
        m.set_stopped(P, ResourceId(0), true).unwrap();
        assert!(m.get(P, ResourceId(0)).unwrap().stopped);
        m.set_stopped(P, ResourceId(0), false).unwrap();
        assert!(!m.get(P, ResourceId(0)).unwrap().stopped);
    }

    #[test]
    fn unknown_resource_is_an_error() {
        let m = mgr();
        assert!(matches!(
            m.get(P, ResourceId(9)),
            Err(EngineError::UnknownResource(_))
        ));
    }
}
