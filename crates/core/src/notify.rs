//! Notifications — "the Notification section reminds providers of the
//! latest tagging … as well as changes in the quality status of resources"
//! (Section III-A, Fig. 6).

use itag_model::ids::{ProjectId, ResourceId, TaggerId};
use std::collections::VecDeque;

/// Events surfaced to the provider.
#[derive(Debug, Clone, PartialEq)]
pub enum Notification {
    /// A submission was decided (approve/reject) on a resource.
    TagDecided {
        project: ProjectId,
        resource: ResourceId,
        tagger: TaggerId,
        approved: bool,
    },
    /// Project mean quality crossed a 0.1 milestone.
    QualityMilestone {
        project: ProjectId,
        quality: f64,
        milestone: f64,
    },
    /// The budget is fully spent.
    BudgetExhausted { project: ProjectId },
    /// The provider switched strategies.
    StrategySwitched { project: ProjectId, to: String },
    /// The provider stopped the project.
    ProjectStopped { project: ProjectId },
}

/// Bounded FIFO of notifications; oldest entries drop when full (the UI
/// only shows the recent tail anyway).
#[derive(Debug)]
pub struct NotificationQueue {
    items: VecDeque<Notification>,
    capacity: usize,
    dropped: u64,
}

impl NotificationQueue {
    /// Queue bounded at `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        NotificationQueue {
            items: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends, evicting the oldest entry when full.
    pub fn push(&mut self, n: Notification) {
        if self.items.len() == self.capacity {
            self.items.pop_front();
            self.dropped += 1;
        }
        self.items.push_back(n);
    }

    /// Removes and returns all pending notifications, oldest first.
    pub fn drain(&mut self) -> Vec<Notification> {
        self.items.drain(..).collect()
    }

    /// Pending count.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Notifications evicted due to the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Default for NotificationQueue {
    fn default() -> Self {
        NotificationQueue::new(1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn milestone(m: f64) -> Notification {
        Notification::QualityMilestone {
            project: ProjectId(1),
            quality: m,
            milestone: m,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = NotificationQueue::new(10);
        q.push(milestone(0.1));
        q.push(milestone(0.2));
        let drained = q.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0], milestone(0.1));
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_queue_drops_oldest() {
        let mut q = NotificationQueue::new(2);
        q.push(milestone(0.1));
        q.push(milestone(0.2));
        q.push(milestone(0.3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.dropped(), 1);
        let drained = q.drain();
        assert_eq!(drained[0], milestone(0.2));
        assert_eq!(drained[1], milestone(0.3));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = NotificationQueue::new(0);
    }
}
