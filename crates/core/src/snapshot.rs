//! Engine snapshots — analytics over one consistent round boundary.
//!
//! [`crate::engine::ITagEngine::snapshot`] captures an [`EngineSnapshot`]:
//! a typed wrapper over a [`StoreSnapshot`] of every persisted table, the
//! O(1) reputation snapshot, and one [`ProjectDigest`] per live runtime
//! (the handful of scalars and the series that exist only in memory).
//! All the dashboard reads — [`EngineSnapshot::monitor`],
//! [`EngineSnapshot::render_table`], [`EngineSnapshot::browse`],
//! [`EngineSnapshot::export`] — are rebuilt here against the frozen view,
//! so a dashboard session reads tables, listings and exports that all
//! describe the *same* round boundary, no matter how far the live engine
//! has advanced since the capture.
//!
//! Equivalence contract: at the moment of capture, every snapshot read is
//! **equal** (full `PartialEq`, floats included) to its live engine
//! counterpart — `snapshot.monitor(p) == engine.monitor(p)` and likewise
//! for `browse`/`export`. This leans on the round-boundary invariants the
//! integrity checker already pins: stored `ResourceRecord.posts/quality`
//! are bit-copies of the live quality state between rounds, and the rfd
//! of a resource is exactly its dataset-initial tags plus the stored post
//! log. The per-digest float fields (`quality_mean`, `oracle_quality`)
//! are captured as scalars rather than recomputed, because the live mean
//! is a drifting accumulator — recomputing would be close but not
//! bit-equal.
//!
//! Every read path here is panic-free (`get` + `?`, never indexing): the
//! server serves these off-lock to untrusted dashboard sessions, and the
//! panic-reachability gate holds this surface to the pinned waiver set.

use crate::export::{Export, ExportedResource};
use crate::monitor::{MonitorSnapshot, ProjectListing, ResourceRow};
use crate::records::{DatasetRecord, PostRecord, ResourceRecord, TagRecord, UserRecord, UserRole};
use crate::user_mgr::ReputationSnapshot;
use crate::{EngineError, Result};
use itag_model::ids::{PostId, ProjectId, ResourceId, TagId};
use itag_store::codec::FxHashMap;
use itag_store::StoreSnapshot;
use itag_strategy::framework::BudgetPoint;
use std::collections::BTreeMap;

/// The per-project scalars that live only in the engine runtime, captured
/// under the engine lock. Strings are the already-rendered labels the
/// monitor screens show; money is the ledger's round-boundary totals.
#[derive(Debug, Clone)]
pub struct ProjectDigest {
    pub project: ProjectId,
    pub provider: u32,
    pub name: String,
    pub state: String,
    pub strategy: String,
    /// `q(R)` — the live drifting accumulator, captured as a scalar.
    pub quality_mean: f64,
    pub quality_initial: f64,
    pub oracle_quality: f64,
    pub budget_total: u32,
    pub budget_spent: u32,
    pub open_tasks: usize,
    pub tasks_approved: u64,
    pub tasks_rejected: u64,
    pub banned_taggers: usize,
    /// Money still held in escrow (already net of paid/refunded).
    pub escrowed: u64,
    pub paid: u64,
    pub refunded: u64,
    pub pay_per_task_cents: u32,
    /// The Fig. 5 quality-over-budget trajectory.
    pub series: Vec<BudgetPoint>,
}

/// A frozen analytics view of the whole engine (see module docs).
/// Cloning is cheap: the store view is an `Arc` handle and the digests
/// are shared via the server's per-epoch cache, not per-request.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    store: StoreSnapshot,
    reputation: ReputationSnapshot,
    /// Digests keyed by project id (ordered — `browse` iterates this).
    projects: BTreeMap<u32, ProjectDigest>,
}

impl EngineSnapshot {
    pub(crate) fn assemble(
        store: StoreSnapshot,
        reputation: ReputationSnapshot,
        projects: BTreeMap<u32, ProjectDigest>,
    ) -> Self {
        EngineSnapshot {
            store,
            reputation,
            projects,
        }
    }

    /// Store LSN this view was captured at. The server's per-epoch cache
    /// compares this against [`itag_store::Store::epoch`] to decide
    /// whether a cached snapshot is still current.
    pub fn epoch(&self) -> u64 {
        self.store.epoch()
    }

    /// The underlying raw store view.
    pub fn store(&self) -> &StoreSnapshot {
        &self.store
    }

    /// The captured per-project digest, if the project had a live runtime.
    pub fn digest(&self, project: ProjectId) -> Option<&ProjectDigest> {
        self.projects.get(&project.0)
    }

    /// The reliability gate over the captured reputation counters.
    pub fn is_reliable_tagger(&self, tagger: u32) -> bool {
        self.reputation.is_reliable_with(tagger, 0, 0)
    }

    /// A project's resource records, in resource-id order (the snapshot
    /// twin of `ResourceManager::list`).
    fn project_resources(&self, project: ProjectId) -> Result<Vec<ResourceRecord>> {
        let from = (project, ResourceId(0));
        let to = (ProjectId(project.0.wrapping_add(1)), ResourceId(0));
        let to = if project.0 == u32::MAX {
            None
        } else {
            Some(&to)
        };
        Ok(self.store.table::<ResourceRecord>().scan_range(&from, to)?)
    }

    /// The Fig. 3 / Fig. 5 view of a project, rebuilt from the frozen
    /// tables plus the digest. Equal to the live `ITagEngine::monitor` at
    /// capture time: rows come from the stored resource records, whose
    /// post counts and qualities are round-boundary bit-copies of the
    /// live quality state.
    pub fn monitor(&self, project: ProjectId) -> Result<MonitorSnapshot> {
        let d = self
            .projects
            .get(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        let rows: Vec<ResourceRow> = self
            .project_resources(project)?
            .into_iter()
            .map(|r| ResourceRow {
                id: r.resource.id,
                uri: r.resource.uri,
                posts: r.posts,
                quality: r.quality,
                stopped: r.stopped,
            })
            .collect();
        let qualities: Vec<f64> = rows.iter().map(|r| r.quality).collect();
        Ok(MonitorSnapshot {
            project,
            name: d.name.clone(),
            state: d.state.clone(),
            strategy: d.strategy.clone(),
            quality_mean: d.quality_mean,
            quality_initial: d.quality_initial,
            oracle_quality: d.oracle_quality,
            budget_total: d.budget_total,
            budget_spent: d.budget_spent,
            open_tasks: d.open_tasks,
            tasks_approved: d.tasks_approved,
            tasks_rejected: d.tasks_rejected,
            banned_taggers: d.banned_taggers,
            escrowed: d.escrowed,
            paid: d.paid,
            refunded: d.refunded,
            quality_summary: itag_quality::aggregate::QualitySummary::compute(&qualities),
            series: d.series.clone(),
            rows,
        })
    }

    /// The rendered Fig. 3 console table (top `limit` rows) off the
    /// frozen view — what the server streams to dashboard sessions
    /// without touching the engine.
    pub fn render_table(&self, project: ProjectId, limit: usize) -> Result<String> {
        Ok(self.monitor(project)?.render_table(limit))
    }

    /// The tagger-side project browser (Fig. 7) over the frozen view,
    /// same sort as the live `ITagEngine::browse_projects`: pay
    /// descending, provider generosity as tie-break, id as final
    /// tie-break. Generosity comes from the captured user table.
    pub fn browse(&self) -> Result<Vec<ProjectListing>> {
        let users = self.store.table::<UserRecord>();
        let mut listings = Vec::with_capacity(self.projects.len());
        for d in self.projects.values() {
            let provider_approval_rate = users
                .get(&(UserRole::Provider.tag(), d.provider))?
                .map(|u| u.approval_rate_given())
                .unwrap_or(1.0);
            listings.push(ProjectListing {
                project: d.project,
                name: d.name.clone(),
                state: d.state.clone(),
                pay_per_task_cents: d.pay_per_task_cents,
                provider_approval_rate,
                open_tasks: d.open_tasks,
            });
        }
        listings.sort_by(|a, b| {
            b.pay_per_task_cents
                .cmp(&a.pay_per_task_cents)
                .then(
                    b.provider_approval_rate
                        .total_cmp(&a.provider_approval_rate),
                )
                .then(a.project.cmp(&b.project))
        });
        Ok(listings)
    }

    /// "Export resources with the desired tags", off the frozen view.
    /// Per-resource consensus tags are reconstructed exactly the way the
    /// live rfd was built: the dataset's initial posts plus the stored
    /// post log, counted per tag, most frequent first (ties by tag id).
    pub fn export(&self, project: ProjectId) -> Result<Export> {
        let d = self
            .projects
            .get(&project.0)
            .ok_or(EngineError::UnknownProject(project))?;
        let dataset = self
            .store
            .table::<DatasetRecord>()
            .get(&project)?
            .ok_or(EngineError::UnknownProject(project))?
            .dataset;

        // Fold tag occurrences per resource: initial posts first, then
        // every stored (approved) post of this project, streamed off the
        // frozen post log.
        let mut rfd: FxHashMap<u32, FxHashMap<TagId, u32>> = FxHashMap::default();
        for post in &dataset.initial_posts {
            let counts = rfd.entry(post.resource.0).or_default();
            for &t in &post.tags {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        self.store
            .table::<PostRecord>()
            .for_each_range(&PostId(0), None, |rec| {
                if rec.project == project {
                    let counts = rfd.entry(rec.post.resource.0).or_default();
                    for &t in &rec.post.tags {
                        *counts.entry(t).or_insert(0) += 1;
                    }
                }
                true
            })?;

        let tags_table = self.store.table::<TagRecord>();
        let mut tag_texts: FxHashMap<TagId, String> = FxHashMap::default();
        let mut resources = Vec::new();
        for record in self.project_resources(project)? {
            let mut tag_counts: Vec<(TagId, u32)> = rfd
                .remove(&record.resource.id.0)
                .map(|m| m.into_iter().collect())
                .unwrap_or_default();
            tag_counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            let mut tags = Vec::with_capacity(tag_counts.len());
            for (t, c) in tag_counts {
                let text = match tag_texts.get(&t) {
                    Some(text) => text.clone(),
                    None => {
                        let text = tags_table.get(&t)?.map(|r| r.text).unwrap_or_default();
                        tag_texts.insert(t, text.clone());
                        text
                    }
                };
                tags.push((text, c));
            }
            resources.push(ExportedResource {
                uri: record.resource.uri,
                kind: record.resource.kind.label().to_string(),
                posts: record.posts,
                quality: record.quality,
                tags,
            });
        }
        Ok(Export {
            project: d.name.clone(),
            resources,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::config::EngineConfig;
    use crate::engine::ITagEngine;
    use crate::project::ProjectSpec;
    use itag_model::delicious::DeliciousConfig;
    use itag_model::ids::ProjectId;

    fn engine_with_projects(n: u64) -> (ITagEngine, Vec<ProjectId>) {
        let mut config = EngineConfig::in_memory(0x5AB5);
        config.spammer_fraction = 0.25;
        let mut e = ITagEngine::new(config).unwrap();
        let mut ids = Vec::new();
        for i in 0..n {
            let provider = e.register_provider(&format!("prov-{i}")).unwrap();
            let dataset = DeliciousConfig::tiny(90 + i).generate().dataset;
            let p = e
                .add_project(
                    provider,
                    ProjectSpec::demo(&format!("camp-{i}"), 120),
                    dataset,
                )
                .unwrap();
            ids.push(p);
        }
        (e, ids)
    }

    /// The headline contract: every snapshot read equals its live
    /// counterpart at capture time — full `PartialEq`, floats included.
    #[test]
    fn snapshot_reads_equal_live_reads_at_capture() {
        let (mut e, ids) = engine_with_projects(3);
        e.run_all(60).unwrap();
        let snap = e.snapshot();
        assert_eq!(snap.epoch(), e.store_handle().epoch());
        for &p in &ids {
            assert_eq!(snap.monitor(p).unwrap(), e.monitor(p).unwrap());
            assert_eq!(snap.export(p).unwrap(), e.export(p).unwrap());
            assert_eq!(
                snap.render_table(p, 10).unwrap(),
                e.monitor(p).unwrap().render_table(10)
            );
        }
        assert_eq!(snap.browse().unwrap(), e.browse_projects().unwrap());
    }

    /// A snapshot keeps answering with its round boundary after the
    /// engine moves on; a fresh one tracks the live state again.
    #[test]
    fn snapshot_is_frozen_while_the_engine_advances() {
        let (mut e, ids) = engine_with_projects(2);
        e.run_all(40).unwrap();
        let frozen = e.snapshot();
        let frozen_monitors: Vec<_> = ids.iter().map(|&p| frozen.monitor(p).unwrap()).collect();

        e.run_all(40).unwrap();
        for (i, &p) in ids.iter().enumerate() {
            assert_eq!(
                frozen.monitor(p).unwrap(),
                frozen_monitors[i],
                "held snapshot must not see the new round"
            );
            let live = e.monitor(p).unwrap();
            assert!(live.budget_spent > frozen_monitors[i].budget_spent);
        }
        let fresh = e.snapshot();
        assert!(fresh.epoch() > frozen.epoch());
        for &p in &ids {
            assert_eq!(fresh.monitor(p).unwrap(), e.monitor(p).unwrap());
            assert_eq!(fresh.export(p).unwrap(), e.export(p).unwrap());
        }
        assert_eq!(fresh.browse().unwrap(), e.browse_projects().unwrap());
    }

    /// Unknown projects are clean errors on every snapshot read — the
    /// server serves these to arbitrary sessions, so nothing may panic.
    #[test]
    fn unknown_project_is_an_error_not_a_panic() {
        let (e, _) = engine_with_projects(1);
        let snap = e.snapshot();
        let ghost = ProjectId(999);
        assert!(snap.monitor(ghost).is_err());
        assert!(snap.export(ghost).is_err());
        assert!(snap.render_table(ghost, 5).is_err());
        assert!(snap.digest(ghost).is_none());
    }

    /// The reputation view rides the snapshot: a tagger the live gate
    /// flags is flagged by the captured gate too.
    #[test]
    fn reputation_gate_matches_live_at_capture() {
        let (mut e, _) = engine_with_projects(2);
        e.run_all(120).unwrap();
        let snap = e.snapshot();
        let mut checked = 0;
        for t in 0..64u32 {
            if let Ok(live) = e.is_reliable_tagger(t) {
                assert_eq!(snap.is_reliable_tagger(t), live, "tagger {t}");
                checked += 1;
            }
        }
        assert!(checked > 0);
    }
}
