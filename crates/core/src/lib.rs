//! # itag-core — the iTag engine
//!
//! The system of Fig. 2, Section III: the managers around the storage
//! engine, the project lifecycle, and the Algorithm-1 loop driven through
//! a crowdsourcing platform.
//!
//! * [`resource_mgr::ResourceManager`] — "controlling the operations on
//!   resources and their related tags … storing resource and tagging
//!   information";
//! * [`tag_mgr::TagManager`] — "the linking of tags to resources";
//! * [`quality_mgr::QualityManager`] — quality metric evaluation, learning
//!   curves, projected gains, strategy suggestion;
//! * [`user_mgr::UserManager`] — provider/tagger profiles and two-sided
//!   approval rates;
//! * [`engine::ITagEngine`] — wires everything: add a project, run the
//!   budgeted campaign through the platform, monitor in real time, promote
//!   or stop resources, switch strategies, add budget, export.
//!
//! The engine runs the same [`itag_strategy::ChooseResources`] objects as
//! the pure simulator, but routes every task through the full pipeline:
//! publish → worker → submit → approval → payment → rfd update.
//!
//! ```
//! use itag_core::config::EngineConfig;
//! use itag_core::engine::ITagEngine;
//! use itag_core::project::ProjectSpec;
//! use itag_model::delicious::DeliciousConfig;
//!
//! let mut engine = ITagEngine::new(EngineConfig::in_memory(7)).unwrap();
//! let provider = engine.register_provider("docs").unwrap();
//! let dataset = DeliciousConfig::tiny(7).generate().dataset;
//! let project = engine
//!     .add_project(provider, ProjectSpec::demo("doc-campaign", 50), dataset)
//!     .unwrap();
//! let summary = engine.run(project, 50).unwrap();
//! assert_eq!(summary.issued, 50);
//! assert!(engine.monitor(project).unwrap().quality_mean >= 0.0);
//! ```

pub mod config;
pub mod engine;
pub mod export;
pub mod monitor;
pub mod notify;
pub mod project;
pub mod quality_mgr;
pub mod records;
pub mod resource_mgr;
pub mod snapshot;
pub mod tables;
pub mod tag_mgr;
pub mod user_mgr;

pub use config::{EngineConfig, StorageConfig};
pub use engine::{ITagEngine, RunSummary};
pub use monitor::{MonitorSnapshot, ResourceDetail, ResourceRow, SortKey};
pub use notify::{Notification, NotificationQueue};
pub use project::{ProjectSpec, ProjectState};
pub use snapshot::{EngineSnapshot, ProjectDigest};

/// Engine-level errors.
#[derive(Debug)]
pub enum EngineError {
    Store(itag_store::StoreError),
    Crowd(itag_crowd::CrowdError),
    UnknownProject(itag_model::ids::ProjectId),
    UnknownResource(itag_model::ids::ResourceId),
    /// Operation invalid in the project's current state.
    BadProjectState {
        project: itag_model::ids::ProjectId,
        state: &'static str,
    },
    /// Dataset failed validation on upload.
    InvalidDataset(String),
    /// `add_budget` would overflow the project's task budget; in release
    /// the old unchecked add wrapped, leaving `budget_total < budget_spent`
    /// and an underflowing task quota.
    BudgetOverflow {
        project: itag_model::ids::ProjectId,
        current: u32,
        extra: u32,
    },
    /// Malformed configuration — e.g. a garbage `ITAG_THREADS` /
    /// `ITAG_PIPELINE` / `ITAG_NO_CACHE` value, rejected loudly instead
    /// of silently falling back to a default.
    Config(String),
}

impl EngineError {
    /// True when this error means the *storage layer* faulted on an I/O
    /// path — the signal the server uses to flip into read-only
    /// degradation. Logical errors (unknown project, corrupt dataset,
    /// bad state) are the caller's problem and never degrade the server.
    pub fn is_storage_fault(&self) -> bool {
        matches!(
            self,
            EngineError::Store(itag_store::StoreError::Io(_))
                | EngineError::Store(itag_store::StoreError::Broken(_))
        )
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Store(e) => write!(f, "storage: {e}"),
            EngineError::Crowd(e) => write!(f, "crowd platform: {e}"),
            EngineError::UnknownProject(p) => write!(f, "unknown project {p}"),
            EngineError::UnknownResource(r) => write!(f, "unknown resource {r}"),
            EngineError::BadProjectState { project, state } => {
                write!(f, "project {project} is {state}")
            }
            EngineError::InvalidDataset(m) => write!(f, "invalid dataset: {m}"),
            EngineError::BudgetOverflow {
                project,
                current,
                extra,
            } => write!(
                f,
                "adding {extra} tasks to {project} overflows its budget of {current}"
            ),
            EngineError::Config(m) => write!(f, "configuration: {m}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Store(e) => Some(e),
            EngineError::Crowd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<itag_store::StoreError> for EngineError {
    fn from(e: itag_store::StoreError) -> Self {
        EngineError::Store(e)
    }
}

impl From<itag_crowd::CrowdError> for EngineError {
    fn from(e: itag_crowd::CrowdError) -> Self {
        EngineError::Crowd(e)
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, EngineError>;
