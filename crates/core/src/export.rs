//! Export — "providers can stop the project … and also export resources
//! with the desired tags" (Section III-A).

use serde::{Deserialize, Serialize};

/// One exported resource with its consensus tags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExportedResource {
    pub uri: String,
    pub kind: String,
    pub posts: u32,
    pub quality: f64,
    /// `(tag text, occurrences)`, most frequent first.
    pub tags: Vec<(String, u32)>,
}

/// A full project export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Export {
    pub project: String,
    pub resources: Vec<ExportedResource>,
}

impl Export {
    /// CSV rendering: one row per resource, tags as a `;`-joined list.
    /// Fields containing the separator, quotes, or CR/LF are quoted.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("uri,kind,posts,quality,tags\n");
        for r in &self.resources {
            let tags = r
                .tags
                .iter()
                .map(|(t, c)| format!("{t}:{c}"))
                .collect::<Vec<_>>()
                .join(";");
            out.push_str(&format!(
                "{},{},{},{:.6},{}\n",
                csv_field(&r.uri),
                csv_field(&r.kind),
                r.posts,
                r.quality,
                csv_field(&tags),
            ));
        }
        out
    }

    /// Compact binary export (the "download" format).
    // lint: allow(panic-path)
    pub fn to_bytes(&self) -> Vec<u8> {
        itag_store::serbin::to_bytes(self).expect("export types always serialize")
    }

    /// Parses a binary export.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        itag_store::serbin::from_bytes(bytes).map_err(|e| e.to_string())
    }
}

fn csv_field(s: &str) -> String {
    // `\r` must force quoting too: a bare CR (or a CRLF pair) inside an
    // unquoted field splits the row in most CSV readers (RFC 4180 treats
    // CR as part of the record terminator).
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn export() -> Export {
        Export {
            project: "demo".into(),
            resources: vec![
                ExportedResource {
                    uri: "https://a".into(),
                    kind: "Web URL".into(),
                    posts: 4,
                    quality: 0.75,
                    tags: vec![("rust".into(), 3), ("db".into(), 1)],
                },
                ExportedResource {
                    uri: "https://b,with-comma".into(),
                    kind: "Image".into(),
                    posts: 0,
                    quality: 0.0,
                    tags: vec![],
                },
            ],
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = export().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("uri,kind"));
        assert!(lines[1].contains("rust:3;db:1"));
    }

    #[test]
    fn csv_quotes_fields_with_separators() {
        let csv = export().to_csv();
        assert!(csv.contains("\"https://b,with-comma\""));
    }

    #[test]
    fn csv_escapes_embedded_quotes() {
        let e = Export {
            project: "p".into(),
            resources: vec![ExportedResource {
                uri: "say \"hi\"".into(),
                kind: "Web URL".into(),
                posts: 1,
                quality: 0.5,
                tags: vec![],
            }],
        };
        assert!(e.to_csv().contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn csv_quotes_fields_with_bare_cr_and_crlf() {
        let e = Export {
            project: "p".into(),
            resources: vec![
                ExportedResource {
                    uri: "line\rbreak".into(),
                    kind: "Web URL".into(),
                    posts: 1,
                    quality: 0.5,
                    tags: vec![],
                },
                ExportedResource {
                    uri: "crlf\r\nfield".into(),
                    kind: "Image".into(),
                    posts: 2,
                    quality: 0.25,
                    tags: vec![],
                },
            ],
        };
        let csv = e.to_csv();
        // Quoted, so the CR cannot terminate the record early.
        assert!(csv.contains("\"line\rbreak\""), "bare CR quoted: {csv:?}");
        assert!(csv.contains("\"crlf\r\nfield\""), "CRLF quoted: {csv:?}");
        // Exactly header + 2 records when records are split on `\n`
        // outside quotes (what a conforming reader does).
        let mut records = 0;
        let mut in_quotes = false;
        for c in csv.chars() {
            match c {
                '"' => in_quotes = !in_quotes,
                '\n' if !in_quotes => records += 1,
                _ => {}
            }
        }
        assert_eq!(records, 3, "header + 2 rows: {csv:?}");
    }

    #[test]
    fn binary_roundtrip() {
        let e = export();
        let back = Export::from_bytes(&e.to_bytes()).unwrap();
        assert_eq!(back, e);
        assert!(Export::from_bytes(&[1, 2, 3]).is_err());
    }
}
