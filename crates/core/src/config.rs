//! Engine configuration.

use itag_crowd::approval::ApprovalPolicy;
use itag_crowd::platform::PlatformKind;
use itag_quality::metric::QualityMetric;
use std::path::PathBuf;

/// Where the engine keeps its data.
#[derive(Debug, Clone)]
pub enum StorageConfig {
    /// Ephemeral (simulations, benches).
    InMemory,
    /// Durable WAL + snapshots under `dir`.
    Durable {
        dir: PathBuf,
        durability: itag_store::Durability,
        /// Fsync cadence under `Durability::Sync` (see the store's
        /// durability contract); ignored otherwise.
        sync_policy: itag_store::SyncPolicy,
        /// Auto-checkpoint period in commits (0 = manual).
        checkpoint_every: u64,
    },
}

/// Engine-wide settings; per-project settings live in
/// [`crate::project::ProjectSpec`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Master seed; all engine randomness derives from it.
    pub seed: u64,
    /// Quality metric used by the Quality Manager.
    pub metric: QualityMetric,
    /// Resources per CHOOSERESOURCES() call.
    pub batch_size: usize,
    /// Workers staffing the simulated platform.
    pub workers: usize,
    /// Fraction of spammers mixed into the worker pool (ablation knob;
    /// the rest follow the demo-crowd mix).
    pub spammer_fraction: f64,
    /// Default platform for new projects.
    pub platform: PlatformKind,
    /// Default approval policy for new projects.
    pub approval: ApprovalPolicy,
    /// Record a quality point every this many issued tasks.
    pub record_every: u32,
    /// Safety cap on platform ticks while collecting one batch.
    pub max_ticks_per_batch: u32,
    /// When true, taggers failing the User Manager's reliability gate are
    /// banned from claiming further tasks (Section III-A: the approval
    /// rate of platform taggers is kept "at a reliable level").
    pub enforce_reliability: bool,
    /// Threads for [`crate::engine::ITagEngine::run_all`]. `0` = auto:
    /// the `ITAG_THREADS` environment variable if set, else the machine's
    /// available parallelism capped at 8. The tick is deterministic in the
    /// thread count, so this is purely a throughput knob.
    pub threads: usize,
    /// Enables the store's decoded-entity cache. Purely a throughput knob:
    /// results are bit-identical either way (`ITAG_NO_CACHE=1` forces it
    /// off regardless, which the CI matrix uses to prove it).
    pub entity_cache: bool,
    /// Storage backend.
    pub storage: StorageConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0x17A6,
            metric: QualityMetric::default(),
            batch_size: 10,
            workers: 50,
            spammer_fraction: 0.05,
            platform: PlatformKind::MTurk,
            approval: ApprovalPolicy::default(),
            record_every: 100,
            max_ticks_per_batch: 100_000,
            enforce_reliability: true,
            threads: 0,
            entity_cache: true,
            storage: StorageConfig::InMemory,
        }
    }
}

impl EngineConfig {
    /// In-memory config with a given seed (the common bench setup).
    pub fn in_memory(seed: u64) -> Self {
        EngineConfig {
            seed,
            ..EngineConfig::default()
        }
    }

    /// Durable config rooted at `dir` with buffered WAL writes.
    pub fn durable(seed: u64, dir: PathBuf) -> Self {
        EngineConfig {
            seed,
            storage: StorageConfig::Durable {
                dir,
                durability: itag_store::Durability::Buffered,
                sync_policy: itag_store::SyncPolicy::Always,
                checkpoint_every: 10_000,
            },
            ..EngineConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.batch_size >= 1);
        assert!(c.workers >= 1);
        assert!((0.0..=1.0).contains(&c.spammer_fraction));
        assert!(matches!(c.storage, StorageConfig::InMemory));
    }

    #[test]
    fn durable_builder_sets_dir() {
        let c = EngineConfig::durable(1, PathBuf::from("/tmp/x"));
        match c.storage {
            StorageConfig::Durable { ref dir, .. } => assert_eq!(dir, &PathBuf::from("/tmp/x")),
            _ => panic!("expected durable"),
        }
    }
}
