//! Engine configuration.

use itag_crowd::approval::ApprovalPolicy;
use itag_crowd::platform::PlatformKind;
use itag_quality::metric::QualityMetric;
use std::path::PathBuf;

/// Where the engine keeps its data.
#[derive(Debug, Clone)]
pub enum StorageConfig {
    /// Ephemeral (simulations, benches).
    InMemory,
    /// Durable WAL + snapshots under `dir`.
    Durable {
        dir: PathBuf,
        durability: itag_store::Durability,
        /// Fsync cadence under `Durability::Sync` (see the store's
        /// durability contract); ignored otherwise.
        sync_policy: itag_store::SyncPolicy,
        /// Auto-checkpoint period in commits (0 = manual).
        checkpoint_every: u64,
    },
}

/// How the engine maintains the round-start reputation view the parallel
/// tick reads (see `crate::user_mgr::ReputationLedger`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReputationMode {
    /// Incremental (the default): the engine builds the ledger from the
    /// tagger table once at open/recovery, then applies each round's
    /// per-worker decision deltas on the merger thread — per-round cost
    /// scales with the round's active workers, not the registered
    /// population.
    Ledger,
    /// The pre-ledger escape hatch: rebuild the snapshot by rescanning
    /// the tagger table at every round start. Kept as the reference
    /// schedule the equivalence suite compares against; results are
    /// bit-identical either way.
    Rescan,
}

/// Reputation schedule used when neither [`EngineConfig::reputation`] nor
/// `ITAG_REPUTATION` says otherwise.
pub const DEFAULT_REPUTATION_MODE: ReputationMode = ReputationMode::Ledger;

/// Engine-wide settings; per-project settings live in
/// [`crate::project::ProjectSpec`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Master seed; all engine randomness derives from it.
    pub seed: u64,
    /// Quality metric used by the Quality Manager.
    pub metric: QualityMetric,
    /// Resources per CHOOSERESOURCES() call.
    pub batch_size: usize,
    /// Workers staffing the simulated platform.
    pub workers: usize,
    /// Fraction of spammers mixed into the worker pool (ablation knob;
    /// the rest follow the demo-crowd mix).
    pub spammer_fraction: f64,
    /// Default platform for new projects.
    pub platform: PlatformKind,
    /// Default approval policy for new projects.
    pub approval: ApprovalPolicy,
    /// Record a quality point every this many issued tasks.
    pub record_every: u32,
    /// Safety cap on platform ticks while collecting one batch.
    pub max_ticks_per_batch: u32,
    /// When true, taggers failing the User Manager's reliability gate are
    /// banned from claiming further tasks (Section III-A: the approval
    /// rate of platform taggers is kept "at a reliable level").
    pub enforce_reliability: bool,
    /// Threads for [`crate::engine::ITagEngine::run_all`]. `0` = auto:
    /// the `ITAG_THREADS` environment variable if set, else the machine's
    /// available parallelism capped at 8. The tick is deterministic in the
    /// thread count, so this is purely a throughput knob.
    pub threads: usize,
    /// Enables the store's decoded-entity cache. Purely a throughput knob:
    /// results are bit-identical either way (`ITAG_NO_CACHE=1` forces it
    /// off regardless, which the CI matrix uses to prove it).
    pub entity_cache: bool,
    /// Round-pipeline depth for [`crate::engine::ITagEngine::run_all`]:
    /// how many staged projects may queue ahead of the merger thread
    /// before staging blocks (back-pressure). `Some(0)` disables the
    /// pipeline (the pre-pipeline barrier schedule); `None` = auto: the
    /// `ITAG_PIPELINE` environment variable if set (`0` = off, `n` =
    /// depth `n`), else [`DEFAULT_PIPELINE_DEPTH`]. Results are
    /// bit-identical at every depth — a throughput knob only.
    pub pipeline_depth: Option<usize>,
    /// Reputation-snapshot schedule for
    /// [`crate::engine::ITagEngine::run_all`]: `Some(Ledger)` maintains
    /// the round-start view incrementally, `Some(Rescan)` rebuilds it by
    /// scanning the tagger table each round; `None` = auto: the
    /// `ITAG_REPUTATION` environment variable if set (`ledger`/`rescan`),
    /// else [`DEFAULT_REPUTATION_MODE`]. Results are bit-identical in
    /// either mode — a throughput knob only.
    pub reputation: Option<ReputationMode>,
    /// Cross-project group-commit budget for
    /// [`crate::engine::ITagEngine::run_all`]: how many projects' merge
    /// frames the merger folds into **one** WAL frame + fsync before
    /// flushing (also bounded by [`COMMIT_BATCH_MAX_BYTES`]). `Some(0)`
    /// or `Some(1)` commit one frame per project (the pre-batching
    /// schedule); `None` = auto: the `ITAG_COMMIT_BATCH` environment
    /// variable if set, else [`DEFAULT_COMMIT_BATCH`]. Stored bytes are
    /// bit-identical at every budget — a throughput knob only (fewer
    /// fsyncs per round; pinned by the determinism suite).
    pub commit_batch: Option<usize>,
    /// Storage backend.
    pub storage: StorageConfig,
}

/// Pipeline depth used when neither [`EngineConfig::pipeline_depth`] nor
/// `ITAG_PIPELINE` says otherwise.
pub const DEFAULT_PIPELINE_DEPTH: usize = 2;

/// Group-commit budget used when neither [`EngineConfig::commit_batch`]
/// nor `ITAG_COMMIT_BATCH` says otherwise.
pub const DEFAULT_COMMIT_BATCH: usize = 8;

/// Byte ceiling on a group-committed frame: the merger flushes early once
/// the folded ops reach this size, so a giant round can't balloon one WAL
/// frame (and its recovery replay unit) without bound.
pub const COMMIT_BATCH_MAX_BYTES: usize = 1 << 20;

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            seed: 0x17A6,
            metric: QualityMetric::default(),
            batch_size: 10,
            workers: 50,
            spammer_fraction: 0.05,
            platform: PlatformKind::MTurk,
            approval: ApprovalPolicy::default(),
            record_every: 100,
            max_ticks_per_batch: 100_000,
            enforce_reliability: true,
            threads: 0,
            entity_cache: true,
            pipeline_depth: None,
            reputation: None,
            commit_batch: None,
            storage: StorageConfig::InMemory,
        }
    }
}

/// The engine's environment overrides, parsed **strictly** at
/// [`crate::engine::ITagEngine::new`]: a malformed value is a loud
/// configuration error naming the variable and the offending text, never
/// a silent fallback (`ITAG_THREADS=abc` used to quietly mean "auto").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EnvOverrides {
    /// `ITAG_THREADS`: worker threads for the parallel tick (≥ 1).
    pub threads: Option<usize>,
    /// `ITAG_PIPELINE`: round-pipeline depth (`0` = pipeline off).
    pub pipeline_depth: Option<usize>,
    /// `ITAG_NO_CACHE`: force the decoded-entity cache off.
    pub no_cache: Option<bool>,
    /// `ITAG_REPUTATION`: reputation-snapshot schedule
    /// (`ledger`/`rescan`).
    pub reputation: Option<ReputationMode>,
    /// `ITAG_COMMIT_BATCH`: cross-project group-commit budget
    /// (`0`/`1` = one frame per project).
    pub commit_batch: Option<usize>,
}

impl EnvOverrides {
    /// Reads and validates the overrides from the process environment.
    pub fn from_env() -> std::result::Result<EnvOverrides, String> {
        let var = |name: &str| std::env::var(name).ok();
        Ok(EnvOverrides {
            threads: parse_threads(var("ITAG_THREADS").as_deref())?,
            pipeline_depth: parse_pipeline(var("ITAG_PIPELINE").as_deref())?,
            no_cache: parse_no_cache(var("ITAG_NO_CACHE").as_deref())?,
            reputation: parse_reputation(var("ITAG_REPUTATION").as_deref())?,
            commit_batch: parse_commit_batch(var("ITAG_COMMIT_BATCH").as_deref())?,
        })
    }
}

/// Parses `ITAG_THREADS`: an integer ≥ 1, or unset. An empty (or
/// whitespace-only) value means unset — `ITAG_THREADS=` is the common
/// shell idiom for clearing a variable, not garbage.
pub fn parse_threads(raw: Option<&str>) -> std::result::Result<Option<usize>, String> {
    let Some(raw) = raw else { return Ok(None) };
    if raw.trim().is_empty() {
        return Ok(None);
    }
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(Some(n)),
        _ => Err(format!(
            "ITAG_THREADS={raw:?} is not a valid thread count (expected an integer >= 1)"
        )),
    }
}

/// Parses `ITAG_PIPELINE`: a pipeline depth (`0` = off), or unset
/// (empty counts as unset, matching the other knobs).
pub fn parse_pipeline(raw: Option<&str>) -> std::result::Result<Option<usize>, String> {
    let Some(raw) = raw else { return Ok(None) };
    if raw.trim().is_empty() {
        return Ok(None);
    }
    match raw.trim().parse::<usize>() {
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "ITAG_PIPELINE={raw:?} is not a valid pipeline depth (expected an integer; 0 disables)"
        )),
    }
}

/// Parses `ITAG_COMMIT_BATCH`: a group-commit budget (`0`/`1` = one
/// frame per project), or unset (empty counts as unset, matching the
/// other knobs).
pub fn parse_commit_batch(raw: Option<&str>) -> std::result::Result<Option<usize>, String> {
    let Some(raw) = raw else { return Ok(None) };
    if raw.trim().is_empty() {
        return Ok(None);
    }
    match raw.trim().parse::<usize>() {
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "ITAG_COMMIT_BATCH={raw:?} is not a valid group-commit budget (expected an integer; 0 or 1 disables batching)"
        )),
    }
}

/// Parses `ITAG_SNAPSHOT_READS`: a boolean switch for the server's
/// snapshot-backed dashboard reads. The knob belongs to `itag-server`,
/// but this module is the sanctioned home for `ITAG_*` environment
/// grammar (the repo lint pins env reads here and in
/// `store::envknob`), so the parser — and [`env_snapshot_reads`], the
/// one place the variable is actually read — live here.
pub fn parse_snapshot_reads(raw: Option<&str>) -> std::result::Result<Option<bool>, String> {
    let Some(raw) = raw else { return Ok(None) };
    match raw.trim() {
        "" => Ok(None),
        "1" | "true" | "on" => Ok(Some(true)),
        "0" | "false" | "off" => Ok(Some(false)),
        _ => Err(format!(
            "ITAG_SNAPSHOT_READS={raw:?} is not a valid switch (expected 0/1/true/false/on/off)"
        )),
    }
}

/// Reads and validates `ITAG_SNAPSHOT_READS` from the process
/// environment. `None` = unset (the server defaults to snapshot reads
/// on).
pub fn env_snapshot_reads() -> std::result::Result<Option<bool>, String> {
    parse_snapshot_reads(std::env::var("ITAG_SNAPSHOT_READS").ok().as_deref())
}

/// Parses `ITAG_NO_CACHE`: `1`/`true` force the cache off, `0`/`false`
/// leave it alone, unset/empty means unset, anything else is an error.
///
/// Delegates to [`itag_store::envknob::parse_no_cache`] — one grammar for
/// the knob whether the raw store or the engine reads it. The two layers
/// differ only in error posture: the engine surfaces the `Err` loudly
/// here, the store maps it to "cache off" (see `envknob`'s module docs).
pub fn parse_no_cache(raw: Option<&str>) -> std::result::Result<Option<bool>, String> {
    itag_store::envknob::parse_no_cache(raw)
}

/// Parses `ITAG_REPUTATION`: `ledger` or `rescan`, case-insensitive;
/// unset/empty means unset (auto), anything else is an error — the same
/// strict contract as the other knobs.
pub fn parse_reputation(raw: Option<&str>) -> std::result::Result<Option<ReputationMode>, String> {
    let Some(raw) = raw else { return Ok(None) };
    match raw.trim().to_ascii_lowercase().as_str() {
        "" => Ok(None),
        "ledger" => Ok(Some(ReputationMode::Ledger)),
        "rescan" => Ok(Some(ReputationMode::Rescan)),
        _ => Err(format!(
            "ITAG_REPUTATION={raw:?} is not a valid reputation schedule (expected ledger or rescan)"
        )),
    }
}

impl EngineConfig {
    /// In-memory config with a given seed (the common bench setup).
    pub fn in_memory(seed: u64) -> Self {
        EngineConfig {
            seed,
            ..EngineConfig::default()
        }
    }

    /// Durable config rooted at `dir` with buffered WAL writes.
    pub fn durable(seed: u64, dir: PathBuf) -> Self {
        EngineConfig {
            seed,
            storage: StorageConfig::Durable {
                dir,
                durability: itag_store::Durability::Buffered,
                sync_policy: itag_store::SyncPolicy::Always,
                checkpoint_every: 10_000,
            },
            ..EngineConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = EngineConfig::default();
        assert!(c.batch_size >= 1);
        assert!(c.workers >= 1);
        assert!((0.0..=1.0).contains(&c.spammer_fraction));
        assert!(matches!(c.storage, StorageConfig::InMemory));
    }

    #[test]
    fn env_parsers_accept_valid_values() {
        assert_eq!(parse_threads(None).unwrap(), None);
        assert_eq!(parse_threads(Some("1")).unwrap(), Some(1));
        assert_eq!(parse_threads(Some(" 8 ")).unwrap(), Some(8));
        assert_eq!(parse_pipeline(None).unwrap(), None);
        assert_eq!(parse_pipeline(Some("0")).unwrap(), Some(0));
        assert_eq!(parse_pipeline(Some("3")).unwrap(), Some(3));
        assert_eq!(parse_no_cache(None).unwrap(), None);
        assert_eq!(parse_no_cache(Some("1")).unwrap(), Some(true));
        assert_eq!(parse_no_cache(Some("true")).unwrap(), Some(true));
        assert_eq!(parse_no_cache(Some("0")).unwrap(), Some(false));
        assert_eq!(parse_no_cache(Some("false")).unwrap(), Some(false));
        assert_eq!(parse_commit_batch(None).unwrap(), None);
        assert_eq!(parse_commit_batch(Some("0")).unwrap(), Some(0));
        assert_eq!(parse_commit_batch(Some(" 16 ")).unwrap(), Some(16));
        assert_eq!(parse_reputation(None).unwrap(), None);
        assert_eq!(
            parse_reputation(Some("ledger")).unwrap(),
            Some(ReputationMode::Ledger)
        );
        assert_eq!(
            parse_reputation(Some(" Rescan ")).unwrap(),
            Some(ReputationMode::Rescan)
        );
        // `VAR=` in a shell means "cleared", not garbage — empty (or
        // whitespace) parses as unset for every knob.
        assert_eq!(parse_threads(Some("")).unwrap(), None);
        assert_eq!(parse_pipeline(Some(" ")).unwrap(), None);
        assert_eq!(parse_no_cache(Some("")).unwrap(), None);
        assert_eq!(parse_reputation(Some("")).unwrap(), None);
        assert_eq!(parse_commit_batch(Some(" ")).unwrap(), None);
    }

    #[test]
    fn env_parsers_reject_garbage_loudly() {
        for bad in ["abc", "-1", "1.5", "8x"] {
            let err = parse_threads(Some(bad)).unwrap_err();
            assert!(
                err.contains("ITAG_THREADS") && err.contains(bad),
                "error must name the variable and the offending value: {err}"
            );
        }
        // 0 threads is as invalid as garbage.
        assert!(parse_threads(Some("0")).unwrap_err().contains("\"0\""));
        for bad in ["on", "-2", "two"] {
            let err = parse_pipeline(Some(bad)).unwrap_err();
            assert!(err.contains("ITAG_PIPELINE") && err.contains(bad), "{err}");
        }
        for bad in ["yes", "2", "disable"] {
            let err = parse_no_cache(Some(bad)).unwrap_err();
            assert!(err.contains("ITAG_NO_CACHE") && err.contains(bad), "{err}");
        }
        for bad in ["full", "0", "incremental"] {
            let err = parse_reputation(Some(bad)).unwrap_err();
            assert!(
                err.contains("ITAG_REPUTATION") && err.contains(bad),
                "{err}"
            );
        }
        for bad in ["many", "-4", "2.5"] {
            let err = parse_commit_batch(Some(bad)).unwrap_err();
            assert!(
                err.contains("ITAG_COMMIT_BATCH") && err.contains(bad),
                "{err}"
            );
        }
    }

    #[test]
    fn durable_builder_sets_dir() {
        let c = EngineConfig::durable(1, PathBuf::from("/tmp/x"));
        match c.storage {
            StorageConfig::Durable { ref dir, .. } => assert_eq!(dir, &PathBuf::from("/tmp/x")),
            _ => panic!("expected durable"),
        }
    }
}
