//! Projects: a provider's budgeted tagging campaign (the Add-Project
//! screen, Fig. 4).

use crate::tables;
use itag_crowd::approval::ApprovalPolicy;
use itag_crowd::platform::PlatformKind;
use itag_model::ids::ProjectId;
use itag_model::resource::ResourceKind;
use itag_store::table::Entity;
use itag_store::TableId;
use itag_strategy::StrategyKind;
use serde::{Deserialize, Serialize};

/// What the provider fills in on the Add-Project screen: "name, type,
/// description, budget and pay/task", plus platform and strategy choice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectSpec {
    pub name: String,
    pub description: String,
    pub kind: ResourceKind,
    /// Budget in tagging tasks (`B`).
    pub budget: u32,
    pub pay_per_task_cents: u32,
    pub platform: PlatformKind,
    pub strategy: StrategyKind,
    pub approval: ApprovalPolicy,
}

impl ProjectSpec {
    /// A quick spec with sensible demo defaults.
    pub fn demo(name: &str, budget: u32) -> Self {
        ProjectSpec {
            name: name.to_string(),
            description: String::new(),
            kind: ResourceKind::WebUrl,
            budget,
            pay_per_task_cents: 5,
            platform: PlatformKind::MTurk,
            strategy: StrategyKind::FpMu { min_posts: 5 },
            approval: ApprovalPolicy::default(),
        }
    }

    /// Validates provider input.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.name.trim().is_empty() {
            return Err("project name must not be empty".into());
        }
        if self.pay_per_task_cents == 0 {
            return Err("pay per task must be positive".into());
        }
        Ok(())
    }
}

/// Campaign lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProjectState {
    /// Accepting tasks.
    Running,
    /// Stopped by the provider ("minimize their budget invested").
    Stopped,
    /// Budget fully spent.
    Completed,
}

impl ProjectState {
    /// Short label for the UI.
    pub fn label(self) -> &'static str {
        match self {
            ProjectState::Running => "running",
            ProjectState::Stopped => "stopped",
            ProjectState::Completed => "completed",
        }
    }
}

/// The persisted project row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectRecord {
    pub id: ProjectId,
    pub provider: u32,
    pub spec: ProjectSpec,
    pub state: ProjectState,
    pub budget_total: u32,
    pub budget_spent: u32,
    pub created_at: u64,
}

impl Entity for ProjectRecord {
    const TABLE: TableId = tables::PROJECTS;
    const NAME: &'static str = "project";
    type Key = ProjectId;

    fn primary_key(&self) -> Self::Key {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_spec_validates() {
        assert!(ProjectSpec::demo("urls-2010", 100).validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_input() {
        let mut s = ProjectSpec::demo("", 10);
        assert!(s.validate().is_err());
        s.name = "x".into();
        s.pay_per_task_cents = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn record_roundtrip() {
        let r = ProjectRecord {
            id: ProjectId(3),
            provider: 1,
            spec: ProjectSpec::demo("demo", 50),
            state: ProjectState::Running,
            budget_total: 50,
            budget_spent: 10,
            created_at: 0,
        };
        let bytes = itag_store::serbin::to_bytes(&r).unwrap();
        let back: ProjectRecord = itag_store::serbin::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn state_labels() {
        assert_eq!(ProjectState::Running.label(), "running");
        assert_eq!(ProjectState::Stopped.label(), "stopped");
        assert_eq!(ProjectState::Completed.label(), "completed");
    }
}
