//! User Manager — tracks "their approval rate, which is the ratio of
//! providers approving the tags of a given tagger, and on the tagger side,
//! the ratio of taggers approving a provider", and "guarantees that the
//! approval rate of taggers from crowdsourcing platforms are at a reliable
//! level" (Section III-A).

use crate::records::{UserRecord, UserRole};
use crate::Result;
use itag_store::codec::FxHashMap;
use itag_store::table::Entity;
use itag_store::{Store, TypedTable, WriteBatch};
use parking_lot::Mutex;
use std::sync::Arc;

/// A point-in-time copy of every tagger's received-decision counters,
/// taken at the start of a parallel round. The pipelined tick reads
/// reputation through this snapshot instead of the live tables, so a
/// project that is still ticking can never observe the merger committing
/// an earlier project's decisions — which is what keeps the round
/// deterministic at every thread count and pipeline depth. (It also
/// matches the pre-pipeline behaviour exactly: the tables used to be
/// frozen for the whole round, so a live read *was* a round-start read.)
#[derive(Debug, Clone)]
pub struct ReputationSnapshot {
    /// `tagger id → (approvals_received, rejections_received)`.
    counters: FxHashMap<u32, (u32, u32)>,
    threshold: f64,
    grace: u32,
}

impl ReputationSnapshot {
    /// The reliability gate over the snapshot, with a project's own
    /// in-round decisions layered on top (see
    /// [`UserManager::is_reliable_with`]).
    pub fn is_reliable_with(&self, tagger: u32, extra_approved: u32, extra_rejected: u32) -> bool {
        let (base_approved, base_rejected) = self.counters.get(&tagger).copied().unwrap_or((0, 0));
        reliability_gate(
            self.threshold,
            self.grace,
            base_approved,
            base_rejected,
            extra_approved,
            extra_rejected,
        )
    }
}

/// The gate math shared by live and snapshot reads: approval rate over
/// all decided tasks, after a grace period.
fn reliability_gate(
    threshold: f64,
    grace: u32,
    base_approved: u32,
    base_rejected: u32,
    extra_approved: u32,
    extra_rejected: u32,
) -> bool {
    let approved = base_approved as u64 + extra_approved as u64;
    let decided = approved + base_rejected as u64 + extra_rejected as u64;
    if decided < grace as u64 {
        return true;
    }
    approved as f64 / decided as f64 >= threshold
}

/// Profiles + two-sided approval accounting.
///
/// A write-through cache provides read-your-own-writes semantics when
/// several decisions are staged into one batch before it commits.
pub struct UserManager {
    table: TypedTable<UserRecord>,
    cache: Mutex<FxHashMap<(u16, u32), UserRecord>>,
    /// Taggers below this received-approval rate (after a grace period of
    /// decided tasks) are flagged unreliable.
    reliability_threshold: f64,
    /// Decisions before the threshold applies.
    grace_decisions: u32,
}

impl UserManager {
    pub fn new(store: Arc<Store>) -> Self {
        UserManager {
            table: TypedTable::new(store),
            cache: Mutex::new(FxHashMap::default()),
            reliability_threshold: 0.5,
            grace_decisions: 5,
        }
    }

    /// Registers a user if absent; returns the stored record.
    pub fn register(&self, role: UserRole, id: u32, name: &str) -> Result<UserRecord> {
        if let Some(existing) = self.get(role, id)? {
            return Ok(existing);
        }
        let record = UserRecord::new(role, id, name.to_string());
        self.table.upsert(&record)?;
        self.cache.lock().insert((role.tag(), id), record.clone());
        Ok(record)
    }

    /// Fetches a user (cache first, then storage).
    pub fn get(&self, role: UserRole, id: u32) -> Result<Option<UserRecord>> {
        if let Some(u) = self.cache.lock().get(&(role.tag(), id)) {
            return Ok(Some(u.clone()));
        }
        Ok(self.table.get(&(role.tag(), id))?)
    }

    /// Records one approval decision: the provider decided on the
    /// tagger's submission. Stages both updates into `batch`.
    pub fn stage_decision(
        &self,
        batch: &mut WriteBatch,
        provider: u32,
        tagger: u32,
        approved: bool,
        pay_cents: u32,
    ) -> Result<()> {
        let (approved_n, rejected_n) = if approved { (1, 0) } else { (0, 1) };
        self.stage_decisions(
            batch,
            provider,
            tagger,
            approved_n,
            rejected_n,
            if approved { pay_cents as u64 } else { 0 },
        )
    }

    /// Records a whole round of decisions between one provider and one
    /// tagger at once: `approved`/`rejected` counter deltas plus the pay
    /// released. Counters are additive, so this stages the same final
    /// records as the equivalent sequence of [`UserManager::stage_decision`]
    /// calls while encoding each record once instead of once per decision.
    pub fn stage_decisions(
        &self,
        batch: &mut WriteBatch,
        provider: u32,
        tagger: u32,
        approved: u32,
        rejected: u32,
        earned_cents: u64,
    ) -> Result<()> {
        self.stage_tagger_decisions(batch, tagger, approved, rejected, earned_cents)?;
        self.stage_provider_decisions(batch, provider, approved, rejected)
    }

    /// The tagger half of [`UserManager::stage_decisions`]: received
    /// counters + earnings only. The parallel tick's merge phase calls
    /// this once per worker, then stages the provider's round totals once
    /// via [`UserManager::stage_provider_decisions`] — one provider-row
    /// encode per project instead of one per worker.
    pub fn stage_tagger_decisions(
        &self,
        batch: &mut WriteBatch,
        tagger: u32,
        approved: u32,
        rejected: u32,
        earned_cents: u64,
    ) -> Result<()> {
        let mut t = self.get(UserRole::Tagger, tagger)?.unwrap_or_else(|| {
            UserRecord::new(UserRole::Tagger, tagger, format!("tagger-{tagger}"))
        });
        t.approvals_received += approved;
        t.rejections_received += rejected;
        t.earned_cents += earned_cents;
        self.table.stage_upsert(batch, &t)?;
        self.cache.lock().insert(t.primary_key(), t);
        Ok(())
    }

    /// The provider half of [`UserManager::stage_decisions`]: given
    /// counters only.
    pub fn stage_provider_decisions(
        &self,
        batch: &mut WriteBatch,
        provider: u32,
        approved: u32,
        rejected: u32,
    ) -> Result<()> {
        let mut p = self.get(UserRole::Provider, provider)?.unwrap_or_else(|| {
            UserRecord::new(UserRole::Provider, provider, format!("provider-{provider}"))
        });
        p.approvals_given += approved;
        p.rejections_given += rejected;
        self.table.stage_upsert(batch, &p)?;
        self.cache.lock().insert(p.primary_key(), p);
        Ok(())
    }

    /// The received-approval rate of a tagger (1.0 for unknown users —
    /// they have no history yet).
    pub fn tagger_approval_rate(&self, tagger: u32) -> Result<f64> {
        Ok(self
            .get(UserRole::Tagger, tagger)?
            .map(|u| u.approval_rate_received())
            .unwrap_or(1.0))
    }

    /// The given-approval rate of a provider (how generous they are).
    pub fn provider_approval_rate(&self, provider: u32) -> Result<f64> {
        Ok(self
            .get(UserRole::Provider, provider)?
            .map(|u| u.approval_rate_given())
            .unwrap_or(1.0))
    }

    /// The reliability gate: false once a tagger with enough history falls
    /// below the threshold.
    pub fn is_reliable(&self, tagger: u32) -> Result<bool> {
        self.is_reliable_with(tagger, 0, 0)
    }

    /// The reliability gate with not-yet-persisted decisions added on top
    /// of the stored counters. The engine's parallel tick buffers each
    /// round's decisions and commits them after the round, so in-round
    /// gating reads the stored base plus the project-local overlay —
    /// deterministic regardless of how many threads run the round.
    pub fn is_reliable_with(
        &self,
        tagger: u32,
        extra_approved: u32,
        extra_rejected: u32,
    ) -> Result<bool> {
        let (base_approved, base_rejected) = self.tagger_counters(tagger)?;
        Ok(reliability_gate(
            self.reliability_threshold,
            self.grace_decisions,
            base_approved,
            base_rejected,
            extra_approved,
            extra_rejected,
        ))
    }

    /// Copies every tagger's received-decision counters into a
    /// [`ReputationSnapshot`] — the round-start reputation view the
    /// pipelined tick reads instead of the live tables. Streams only the
    /// tagger key range (the role tag is the leading key component), so
    /// provider records are never touched.
    pub fn reputation_snapshot(&self) -> Result<ReputationSnapshot> {
        let tag = UserRole::Tagger.tag();
        let mut counters = FxHashMap::default();
        self.table
            .for_each_range(&(tag, 0u32), Some(&(tag + 1, 0u32)), |u: UserRecord| {
                counters.insert(u.id, (u.approvals_received, u.rejections_received));
                true
            })?;
        Ok(ReputationSnapshot {
            counters,
            threshold: self.reliability_threshold,
            grace: self.grace_decisions,
        })
    }

    /// A snapshot for rounds that never consult the gate (reliability
    /// enforcement off): empty counters, gate parameters copied from
    /// this manager so an accidental read still answers exactly like a
    /// history-less tagger under the live gate (reliable).
    pub fn empty_reputation_snapshot(&self) -> ReputationSnapshot {
        ReputationSnapshot {
            counters: FxHashMap::default(),
            threshold: self.reliability_threshold,
            grace: self.grace_decisions,
        }
    }

    /// Received-decision counters of a tagger without cloning the whole
    /// profile (the reliability gate runs per rejected submission). The
    /// storage fallback reads through [`TypedTable::get_arc`], so a cache
    /// miss decodes into a shared record instead of cloning one out.
    fn tagger_counters(&self, tagger: u32) -> Result<(u32, u32)> {
        if let Some(u) = self.cache.lock().get(&(UserRole::Tagger.tag(), tagger)) {
            return Ok((u.approvals_received, u.rejections_received));
        }
        Ok(self
            .table
            .get_arc(&(UserRole::Tagger.tag(), tagger))?
            .map(|u| (u.approvals_received, u.rejections_received))
            .unwrap_or((0, 0)))
    }

    /// All users in `role`, streamed off the table without materializing
    /// the other role's records.
    fn by_role(&self, role: UserRole) -> Result<Vec<UserRecord>> {
        let mut out = Vec::new();
        self.table.for_each(|u: UserRecord| {
            if u.role == role {
                out.push(u);
            }
            true
        })?;
        Ok(out)
    }

    /// All taggers, for reporting.
    pub fn taggers(&self) -> Result<Vec<UserRecord>> {
        self.by_role(UserRole::Tagger)
    }

    /// All providers, for id allocation and reporting.
    pub fn providers(&self) -> Result<Vec<UserRecord>> {
        self.by_role(UserRole::Provider)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> UserManager {
        UserManager::new(Arc::new(Store::in_memory()))
    }

    #[test]
    fn register_is_idempotent() {
        let m = mgr();
        let a = m.register(UserRole::Provider, 1, "alice").unwrap();
        let b = m.register(UserRole::Provider, 1, "other-name").unwrap();
        assert_eq!(a, b, "second registration must not overwrite");
    }

    #[test]
    fn decisions_update_both_sides() {
        let m = mgr();
        let mut batch = WriteBatch::new();
        m.stage_decision(&mut batch, 1, 7, true, 10).unwrap();
        m.stage_decision(&mut batch, 1, 7, false, 10).unwrap();
        m.table.store().commit(batch).unwrap();

        let p = m.get(UserRole::Provider, 1).unwrap().unwrap();
        assert_eq!((p.approvals_given, p.rejections_given), (1, 1));
        let t = m.get(UserRole::Tagger, 7).unwrap().unwrap();
        assert_eq!((t.approvals_received, t.rejections_received), (1, 1));
        assert_eq!(t.earned_cents, 10);
        assert!((m.tagger_approval_rate(7).unwrap() - 0.5).abs() < 1e-12);
        assert!((m.provider_approval_rate(1).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn reliability_gate_kicks_in_after_grace() {
        let m = mgr();
        // 2 rejections: within grace, still reliable.
        let mut batch = WriteBatch::new();
        for _ in 0..2 {
            m.stage_decision(&mut batch, 1, 9, false, 5).unwrap();
        }
        m.table.store().commit(batch).unwrap();
        assert!(m.is_reliable(9).unwrap());

        // 5 decisions, all rejected: below threshold → unreliable.
        let mut batch = WriteBatch::new();
        for _ in 0..3 {
            m.stage_decision(&mut batch, 1, 9, false, 5).unwrap();
        }
        m.table.store().commit(batch).unwrap();
        assert!(!m.is_reliable(9).unwrap());
    }

    #[test]
    fn unknown_users_are_trusted_by_default() {
        let m = mgr();
        assert!(m.is_reliable(42).unwrap());
        assert_eq!(m.tagger_approval_rate(42).unwrap(), 1.0);
    }

    #[test]
    fn reputation_snapshot_matches_live_gate_and_freezes_at_round_start() {
        let m = mgr();
        let mut batch = WriteBatch::new();
        for _ in 0..5 {
            m.stage_decision(&mut batch, 1, 9, false, 5).unwrap();
        }
        for _ in 0..6 {
            m.stage_decision(&mut batch, 1, 8, true, 5).unwrap();
        }
        m.table.store().commit(batch).unwrap();

        let snap = m.reputation_snapshot().unwrap();
        for t in [8u32, 9, 42] {
            assert_eq!(
                snap.is_reliable_with(t, 0, 0),
                m.is_reliable(t).unwrap(),
                "snapshot and live gate disagree for tagger {t}"
            );
        }
        // In-round overlays layer identically over both reads.
        assert_eq!(
            snap.is_reliable_with(42, 1, 4),
            m.is_reliable_with(42, 1, 4).unwrap()
        );

        // Later commits must not leak into the snapshot: that is exactly
        // the property the pipelined round relies on.
        let mut batch = WriteBatch::new();
        for _ in 0..7 {
            m.stage_decision(&mut batch, 1, 8, false, 5).unwrap();
        }
        m.table.store().commit(batch).unwrap();
        assert!(
            !m.is_reliable(8).unwrap(),
            "live gate sees the new rejections"
        );
        assert!(
            snap.is_reliable_with(8, 0, 0),
            "snapshot still answers from round start"
        );
    }

    #[test]
    fn taggers_listing_filters_providers() {
        let m = mgr();
        m.register(UserRole::Provider, 1, "p").unwrap();
        m.register(UserRole::Tagger, 1, "t1").unwrap();
        m.register(UserRole::Tagger, 2, "t2").unwrap();
        assert_eq!(m.taggers().unwrap().len(), 2);
    }
}
