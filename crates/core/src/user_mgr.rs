//! User Manager — tracks "their approval rate, which is the ratio of
//! providers approving the tags of a given tagger, and on the tagger side,
//! the ratio of taggers approving a provider", and "guarantees that the
//! approval rate of taggers from crowdsourcing platforms are at a reliable
//! level" (Section III-A).
//!
//! Reputation reads come in three flavours, all answering through the same
//! [`reliability_gate`] math:
//!
//! * **live** ([`UserManager::is_reliable`]) — the stored counters, for
//!   serial paths and reporting;
//! * **snapshot** ([`ReputationSnapshot`]) — a frozen round-start view the
//!   parallel tick reads, immune to the merger committing mid-round;
//! * **ledger** ([`ReputationLedger`]) — the engine-held incremental
//!   structure that *produces* snapshots without rescanning the tagger
//!   table: built from the table once at engine open/recovery, then kept
//!   current by applying each round's already-aggregated per-worker
//!   decision deltas ([`DecisionDeltas`]) as the merger commits them.

use crate::records::{UserRecord, UserRole};
use crate::Result;
use itag_store::codec::FxHashMap;
use itag_store::table::Entity;
use itag_store::{Store, TypedTable, WriteBatch};
use parking_lot::Mutex;
use std::sync::Arc;

/// A point-in-time view of every tagger's received-decision counters,
/// taken at the start of a parallel round. The pipelined tick reads
/// reputation through this snapshot instead of the live tables, so a
/// project that is still ticking can never observe the merger committing
/// an earlier project's decisions — which is what keeps the round
/// deterministic at every thread count and pipeline depth. (It also
/// matches the pre-pipeline behaviour exactly: the tables used to be
/// frozen for the whole round, so a live read *was* a round-start read.)
///
/// The counter map is shared (`Arc`), so taking a snapshot off a
/// [`ReputationLedger`] is O(1) — no scan, no copy. Taggers with zero
/// decided submissions are equivalent to absent entries (the gate treats
/// both as `(0, 0)`), so neither build path materializes them.
#[derive(Debug, Clone)]
pub struct ReputationSnapshot {
    /// `tagger id → (approvals_received, rejections_received)`.
    counters: Arc<FxHashMap<u32, (u32, u32)>>,
    threshold: f64,
    grace: u32,
}

impl ReputationSnapshot {
    /// The reliability gate over the snapshot, with a project's own
    /// in-round decisions layered on top (see
    /// [`UserManager::is_reliable_with`]).
    pub fn is_reliable_with(&self, tagger: u32, extra_approved: u32, extra_rejected: u32) -> bool {
        let (base_approved, base_rejected) = self.counters.get(&tagger).copied().unwrap_or((0, 0));
        reliability_gate(
            self.threshold,
            self.grace,
            base_approved,
            base_rejected,
            extra_approved,
            extra_rejected,
        )
    }
}

/// One project-round's decision effects, aggregated per worker — the exact
/// deltas [`UserManager::stage_round_deltas`] persists and a
/// [`ReputationLedger`] applies. Building it is the parallel half of the
/// round's user accounting (it runs on whichever worker thread staged the
/// project); staging and applying are the serial half (merger thread, in
/// project-id order).
#[derive(Debug, Clone, Default)]
pub struct DecisionDeltas {
    /// `(tagger, approved, rejected, earned_cents)`, ascending tagger id —
    /// a deterministic order, so each record is staged identically no
    /// matter which thread folded the round.
    per_worker: Vec<(u32, u32, u32, u64)>,
    /// Round totals, mirrored onto the provider's given-counters.
    approved_total: u32,
    rejected_total: u32,
}

impl DecisionDeltas {
    /// Folds raw `(worker, approved, pay_cents)` decisions into per-worker
    /// deltas. Counters are additive, so the fold stages the same final
    /// records as the equivalent per-decision staging sequence.
    pub fn from_decisions<I: IntoIterator<Item = (u32, bool, u32)>>(decisions: I) -> Self {
        let mut per_worker: FxHashMap<u32, (u32, u32, u64)> = FxHashMap::default();
        let (mut approved_total, mut rejected_total) = (0u32, 0u32);
        for (worker, approved, pay) in decisions {
            let e = per_worker.entry(worker).or_insert((0, 0, 0));
            if approved {
                e.0 += 1;
                e.2 += pay as u64;
                approved_total += 1;
            } else {
                e.1 += 1;
                rejected_total += 1;
            }
        }
        let mut per_worker: Vec<(u32, u32, u32, u64)> = per_worker
            .into_iter()
            .map(|(w, (a, r, c))| (w, a, r, c))
            .collect();
        per_worker.sort_unstable_by_key(|(w, ..)| *w);
        DecisionDeltas {
            per_worker,
            approved_total,
            rejected_total,
        }
    }

    /// True when the round decided nothing (no worker rows, no provider
    /// row, nothing for a ledger to apply).
    pub fn is_empty(&self) -> bool {
        self.per_worker.is_empty()
    }
}

/// The engine-held incremental reputation structure: every tagger's
/// received-decision counters, built from the tagger table **once** (at
/// engine open, which after a crash is the recovery rebuild) and
/// thereafter maintained by applying [`DecisionDeltas`] instead of
/// rescanning — per-round cost scales with the round's *active* worker
/// set, not the registered population.
///
/// Concurrency contract: [`ReputationLedger::snapshot`] hands out the
/// current counters as a shared `Arc` (the round-start view);
/// [`ReputationLedger::apply`] — called on the merger thread, in
/// project-id order, only for rounds whose commit succeeded — accumulates
/// deltas into a pending overlay without touching the shared map, so
/// outstanding snapshots keep reading the exact round-start state;
/// [`ReputationLedger::fold_pending`] (after the round, snapshots
/// dropped) folds the overlay into the counters in place. Counter deltas
/// commute, so the folded state is independent of apply order — the
/// project-id ordering is inherited from the merger for free and keeps
/// the observable sequence identical to the rescan schedule.
#[derive(Debug)]
pub struct ReputationLedger {
    counters: Arc<FxHashMap<u32, (u32, u32)>>,
    /// Deltas applied during the current round, keyed by tagger.
    pending: Mutex<FxHashMap<u32, (u32, u32)>>,
    threshold: f64,
    grace: u32,
}

impl ReputationLedger {
    /// The round-start view: O(1), shares the counter map.
    pub fn snapshot(&self) -> ReputationSnapshot {
        ReputationSnapshot {
            counters: Arc::clone(&self.counters),
            threshold: self.threshold,
            grace: self.grace,
        }
    }

    /// Accumulates one committed round's per-worker deltas into the
    /// pending overlay. Call only after the round's commit succeeded —
    /// the ledger must never run ahead of the durable tagger table.
    pub fn apply(&self, deltas: &DecisionDeltas) {
        if deltas.is_empty() {
            return;
        }
        let mut pending = self.pending.lock();
        for &(worker, approved, rejected, _earned) in &deltas.per_worker {
            let e = pending.entry(worker).or_insert((0, 0));
            e.0 += approved;
            e.1 += rejected;
        }
    }

    /// Folds the pending overlay into the shared counters. Call between
    /// rounds, after every [`ReputationSnapshot`] taken from this ledger
    /// has been dropped — the fold then mutates the map in place
    /// (`Arc::make_mut` finds it uniquely owned). A still-live snapshot
    /// costs a one-off copy but can never see the fold.
    pub fn fold_pending(&mut self) {
        let pending = std::mem::take(self.pending.get_mut());
        if pending.is_empty() {
            return;
        }
        let counters = Arc::make_mut(&mut self.counters);
        for (worker, (approved, rejected)) in pending {
            let e = counters.entry(worker).or_insert((0, 0));
            e.0 += approved;
            e.1 += rejected;
        }
    }

    /// Applies one decision immediately (the serial `collect_once` path,
    /// which commits per decision and holds `&mut` engine state — no
    /// snapshot can be outstanding, so the map is mutated in place).
    pub fn bump(&mut self, tagger: u32, approved: u32, rejected: u32) {
        if approved == 0 && rejected == 0 {
            return;
        }
        let counters = Arc::make_mut(&mut self.counters);
        let e = counters.entry(tagger).or_insert((0, 0));
        e.0 += approved;
        e.1 += rejected;
    }

    /// Number of taggers with decided submissions (diagnostics/tests).
    pub fn tracked_taggers(&self) -> usize {
        self.counters.len()
    }
}

/// The gate math shared by live and snapshot reads: approval rate over
/// all decided tasks, after a grace period.
fn reliability_gate(
    threshold: f64,
    grace: u32,
    base_approved: u32,
    base_rejected: u32,
    extra_approved: u32,
    extra_rejected: u32,
) -> bool {
    let approved = base_approved as u64 + extra_approved as u64;
    let decided = approved + base_rejected as u64 + extra_rejected as u64;
    if decided < grace as u64 {
        return true;
    }
    approved as f64 / decided as f64 >= threshold
}

/// Exclusive end bound of role `tag`'s key range: the first key of the
/// next role, or `None` (scan to the end of the table) when `tag` is the
/// maximum value — `tag + 1` would overflow there, and the wrapped bound
/// `(0, 0)` would silently turn the scan into an empty range.
fn role_range_end(tag: u16) -> Option<(u16, u32)> {
    tag.checked_add(1).map(|next| (next, 0u32))
}

/// Profiles + two-sided approval accounting.
///
/// The staged-record overlay (`staged`) provides read-your-own-writes
/// semantics while decisions are staged into a not-yet-committed batch;
/// callers clear it with [`UserManager::clear_staged`] once the batch
/// resolves (committed or abandoned), so it stays bounded by one round's
/// active worker set instead of accumulating every user ever touched.
pub struct UserManager {
    table: TypedTable<UserRecord>,
    staged: Mutex<FxHashMap<(u16, u32), UserRecord>>,
    /// Taggers below this received-approval rate (after a grace period of
    /// decided tasks) are flagged unreliable.
    reliability_threshold: f64,
    /// Decisions before the threshold applies.
    grace_decisions: u32,
}

impl UserManager {
    pub fn new(store: Arc<Store>) -> Self {
        UserManager {
            table: TypedTable::new(store),
            staged: Mutex::named("core.user_mgr.staged", FxHashMap::default()),
            reliability_threshold: 0.5,
            grace_decisions: 5,
        }
    }

    /// Registers a user if absent; returns the stored record. The
    /// get-then-upsert cycle runs under the store's RMW lock (the same
    /// one [`TypedTable::update`] takes), so two concurrent registrations
    /// of the same id serialize: the first writer's record is stored and
    /// every caller gets that exact record back.
    pub fn register(&self, role: UserRole, id: u32, name: &str) -> Result<UserRecord> {
        let _rmw = self.table.store().rmw_guard();
        if let Some(existing) = self.get(role, id)? {
            return Ok(existing);
        }
        let record = UserRecord::new(role, id, name.to_string());
        self.table.upsert(&record)?;
        Ok(record)
    }

    /// Bulk-registers `count` users with ids `start..start + count`
    /// (population seeding for scale scenarios). Existing records are left
    /// untouched; rows are staged in chunked batches so seeding a large
    /// population costs a handful of commits, not one per user. The RMW
    /// lock is taken per chunk — each id's exists-check and write stay
    /// atomic against concurrent registrations, but a big seed never
    /// stalls the store's other read-modify-write users for its whole
    /// duration.
    pub fn register_bulk(
        &self,
        role: UserRole,
        start: u32,
        count: u32,
        prefix: &str,
    ) -> Result<()> {
        const CHUNK: u32 = 4096;
        let mut id = start;
        let end = start.saturating_add(count);
        while id < end {
            let chunk_end = id.saturating_add(CHUNK).min(end);
            let _rmw = self.table.store().rmw_guard();
            let mut batch = WriteBatch::with_capacity((chunk_end - id) as usize);
            for i in id..chunk_end {
                if self.table.get_arc(&(role.tag(), i))?.is_some() {
                    continue;
                }
                self.table.stage_upsert(
                    &mut batch,
                    &UserRecord::new(role, i, format!("{prefix}{i}")),
                )?;
            }
            if !batch.is_empty() {
                self.table.store().commit(batch)?;
            }
            id = chunk_end;
        }
        Ok(())
    }

    /// Fetches a user (staged overlay first, then storage).
    pub fn get(&self, role: UserRole, id: u32) -> Result<Option<UserRecord>> {
        if let Some(u) = self.staged.lock().get(&(role.tag(), id)) {
            return Ok(Some(u.clone()));
        }
        Ok(self.table.get(&(role.tag(), id))?)
    }

    /// Records one approval decision: the provider decided on the
    /// tagger's submission. Stages both updates into `batch`.
    pub fn stage_decision(
        &self,
        batch: &mut WriteBatch,
        provider: u32,
        tagger: u32,
        approved: bool,
        pay_cents: u32,
    ) -> Result<()> {
        let (approved_n, rejected_n) = if approved { (1, 0) } else { (0, 1) };
        self.stage_decisions(
            batch,
            provider,
            tagger,
            approved_n,
            rejected_n,
            if approved { pay_cents as u64 } else { 0 },
        )
    }

    /// Records a whole round of decisions between one provider and one
    /// tagger at once: `approved`/`rejected` counter deltas plus the pay
    /// released. Counters are additive, so this stages the same final
    /// records as the equivalent sequence of [`UserManager::stage_decision`]
    /// calls while encoding each record once instead of once per decision.
    pub fn stage_decisions(
        &self,
        batch: &mut WriteBatch,
        provider: u32,
        tagger: u32,
        approved: u32,
        rejected: u32,
        earned_cents: u64,
    ) -> Result<()> {
        self.stage_tagger_decisions(batch, tagger, approved, rejected, earned_cents)?;
        self.stage_provider_decisions(batch, provider, approved, rejected)
    }

    /// Stages one round's aggregated deltas: every worker's tagger row
    /// (ascending id) plus the provider's round totals — one encode per
    /// touched record. This is the per-round delta surface: the same
    /// [`DecisionDeltas`] value staged here is what a
    /// [`ReputationLedger`] applies once the batch commits.
    pub fn stage_round_deltas(
        &self,
        batch: &mut WriteBatch,
        provider: u32,
        deltas: &DecisionDeltas,
    ) -> Result<()> {
        for &(worker, approved, rejected, earned) in &deltas.per_worker {
            self.stage_tagger_decisions(batch, worker, approved, rejected, earned)?;
        }
        if !deltas.is_empty() {
            self.stage_provider_decisions(
                batch,
                provider,
                deltas.approved_total,
                deltas.rejected_total,
            )?;
        }
        Ok(())
    }

    /// The tagger half of [`UserManager::stage_decisions`]: received
    /// counters + earnings only.
    pub fn stage_tagger_decisions(
        &self,
        batch: &mut WriteBatch,
        tagger: u32,
        approved: u32,
        rejected: u32,
        earned_cents: u64,
    ) -> Result<()> {
        let mut t = self.get(UserRole::Tagger, tagger)?.unwrap_or_else(|| {
            UserRecord::new(UserRole::Tagger, tagger, format!("tagger-{tagger}"))
        });
        t.approvals_received += approved;
        t.rejections_received += rejected;
        t.earned_cents += earned_cents;
        self.table.stage_upsert(batch, &t)?;
        self.staged.lock().insert(t.primary_key(), t);
        Ok(())
    }

    /// The provider half of [`UserManager::stage_decisions`]: given
    /// counters only.
    pub fn stage_provider_decisions(
        &self,
        batch: &mut WriteBatch,
        provider: u32,
        approved: u32,
        rejected: u32,
    ) -> Result<()> {
        let mut p = self.get(UserRole::Provider, provider)?.unwrap_or_else(|| {
            UserRecord::new(UserRole::Provider, provider, format!("provider-{provider}"))
        });
        p.approvals_given += approved;
        p.rejections_given += rejected;
        self.table.stage_upsert(batch, &p)?;
        self.staged.lock().insert(p.primary_key(), p);
        Ok(())
    }

    /// Drops the staged-record overlay. Call once the batch the records
    /// were staged into has resolved — after a successful commit the
    /// table serves the same values, and after a failed one the overlay
    /// would otherwise keep answering with records that were never
    /// stored.
    pub fn clear_staged(&self) {
        let mut staged = self.staged.lock();
        if !staged.is_empty() {
            *staged = FxHashMap::default();
        }
    }

    /// Number of records in the staged overlay (bounded-memory tests).
    pub fn staged_len(&self) -> usize {
        self.staged.lock().len()
    }

    /// The received-approval rate of a tagger (1.0 for unknown users —
    /// they have no history yet).
    pub fn tagger_approval_rate(&self, tagger: u32) -> Result<f64> {
        Ok(self
            .get(UserRole::Tagger, tagger)?
            .map(|u| u.approval_rate_received())
            .unwrap_or(1.0))
    }

    /// The given-approval rate of a provider (how generous they are).
    pub fn provider_approval_rate(&self, provider: u32) -> Result<f64> {
        Ok(self
            .get(UserRole::Provider, provider)?
            .map(|u| u.approval_rate_given())
            .unwrap_or(1.0))
    }

    /// The reliability gate: false once a tagger with enough history falls
    /// below the threshold.
    pub fn is_reliable(&self, tagger: u32) -> Result<bool> {
        self.is_reliable_with(tagger, 0, 0)
    }

    /// The reliability gate with not-yet-persisted decisions added on top
    /// of the stored counters. The engine's parallel tick buffers each
    /// round's decisions and commits them after the round, so in-round
    /// gating reads the stored base plus the project-local overlay —
    /// deterministic regardless of how many threads run the round.
    pub fn is_reliable_with(
        &self,
        tagger: u32,
        extra_approved: u32,
        extra_rejected: u32,
    ) -> Result<bool> {
        let (base_approved, base_rejected) = self.tagger_counters(tagger)?;
        Ok(reliability_gate(
            self.reliability_threshold,
            self.grace_decisions,
            base_approved,
            base_rejected,
            extra_approved,
            extra_rejected,
        ))
    }

    /// Copies every decided tagger's received-decision counters into a
    /// [`ReputationSnapshot`] by scanning the tagger key range — the
    /// **rescan** schedule (`ITAG_REPUTATION=rescan`), kept as the
    /// reference the incremental ledger must match. Streams only the
    /// tagger key range (the role tag is the leading key component), so
    /// provider records are never touched.
    pub fn reputation_snapshot(&self) -> Result<ReputationSnapshot> {
        Ok(ReputationSnapshot {
            counters: Arc::new(self.scan_tagger_counters()?),
            threshold: self.reliability_threshold,
            grace: self.grace_decisions,
        })
    }

    /// Builds the incremental [`ReputationLedger`] from the tagger table —
    /// the build-once path at engine open, which doubles as the recovery
    /// rebuild after a crash (the WAL replay restores the table, this
    /// scan restores the ledger).
    pub fn reputation_ledger(&self) -> Result<ReputationLedger> {
        Ok(ReputationLedger {
            counters: Arc::new(self.scan_tagger_counters()?),
            pending: Mutex::named("core.reputation.pending", FxHashMap::default()),
            threshold: self.reliability_threshold,
            grace: self.grace_decisions,
        })
    }

    /// The shared scan behind both build paths: every tagger with at
    /// least one decided submission. Zero-counter rows are skipped — the
    /// gate treats them exactly like absent entries — so the map size is
    /// bounded by the decided population, not the registered one.
    fn scan_tagger_counters(&self) -> Result<FxHashMap<u32, (u32, u32)>> {
        let tag = UserRole::Tagger.tag();
        let mut counters = FxHashMap::default();
        self.table.for_each_range(
            &(tag, 0u32),
            role_range_end(tag).as_ref(),
            |u: UserRecord| {
                if u.approvals_received != 0 || u.rejections_received != 0 {
                    counters.insert(u.id, (u.approvals_received, u.rejections_received));
                }
                true
            },
        )?;
        Ok(counters)
    }

    /// A snapshot for rounds that never consult the gate (reliability
    /// enforcement off): empty counters, gate parameters copied from
    /// this manager so an accidental read still answers exactly like a
    /// history-less tagger under the live gate (reliable).
    pub fn empty_reputation_snapshot(&self) -> ReputationSnapshot {
        ReputationSnapshot {
            counters: Arc::new(FxHashMap::default()),
            threshold: self.reliability_threshold,
            grace: self.grace_decisions,
        }
    }

    /// Received-decision counters of a tagger without cloning the whole
    /// profile (the reliability gate runs per rejected submission). The
    /// storage fallback reads through [`TypedTable::get_arc`], so a cache
    /// miss decodes into a shared record instead of cloning one out.
    fn tagger_counters(&self, tagger: u32) -> Result<(u32, u32)> {
        if let Some(u) = self.staged.lock().get(&(UserRole::Tagger.tag(), tagger)) {
            return Ok((u.approvals_received, u.rejections_received));
        }
        Ok(self
            .table
            .get_arc(&(UserRole::Tagger.tag(), tagger))?
            .map(|u| (u.approvals_received, u.rejections_received))
            .unwrap_or((0, 0)))
    }

    /// All users in `role`, streamed off the role's own key range —
    /// the other role's records are never visited or decoded.
    fn by_role(&self, role: UserRole) -> Result<Vec<UserRecord>> {
        let tag = role.tag();
        let mut out = Vec::new();
        self.table.for_each_range(
            &(tag, 0u32),
            role_range_end(tag).as_ref(),
            |u: UserRecord| {
                out.push(u);
                true
            },
        )?;
        Ok(out)
    }

    /// All taggers, for reporting.
    pub fn taggers(&self) -> Result<Vec<UserRecord>> {
        self.by_role(UserRole::Tagger)
    }

    /// All providers, for id allocation and reporting.
    pub fn providers(&self) -> Result<Vec<UserRecord>> {
        self.by_role(UserRole::Provider)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr() -> UserManager {
        UserManager::new(Arc::new(Store::in_memory()))
    }

    #[test]
    fn register_is_idempotent() {
        let m = mgr();
        let a = m.register(UserRole::Provider, 1, "alice").unwrap();
        let b = m.register(UserRole::Provider, 1, "other-name").unwrap();
        assert_eq!(a, b, "second registration must not overwrite");
    }

    #[test]
    fn concurrent_registration_of_one_id_converges_on_one_record() {
        // Pre-fix, register was a non-atomic get-then-upsert: two racers
        // could both miss the get, the last upsert's name would win, and
        // the first caller's returned record would disagree with storage.
        // Under the RMW lock every caller must get the stored record.
        let m = Arc::new(mgr());
        let returned: Vec<UserRecord> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let m = Arc::clone(&m);
                    scope.spawn(move || {
                        m.register(UserRole::Tagger, 7, &format!("racer-{i}"))
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let stored = m.get(UserRole::Tagger, 7).unwrap().unwrap();
        for r in &returned {
            assert_eq!(
                r, &stored,
                "a register call returned a record that is not the stored one"
            );
        }
    }

    #[test]
    fn register_bulk_seeds_population_without_clobbering() {
        let m = mgr();
        // An existing tagger with history must survive bulk seeding over
        // its id range.
        let mut batch = WriteBatch::new();
        m.stage_decision(&mut batch, 1, 10_002, true, 5).unwrap();
        m.table.store().commit(batch).unwrap();
        m.clear_staged();

        m.register_bulk(UserRole::Tagger, 10_000, 5_000, "seed-")
            .unwrap();
        assert_eq!(m.taggers().unwrap().len(), 5_000);
        let survivor = m.get(UserRole::Tagger, 10_002).unwrap().unwrap();
        assert_eq!(survivor.approvals_received, 1, "seeding clobbered history");
        assert_eq!(
            m.get(UserRole::Tagger, 10_001).unwrap().unwrap().name,
            "seed-10001"
        );
        // Zero-decision seeds are invisible to both snapshot builders.
        assert!(m.reputation_snapshot().unwrap().counters.len() == 1);
        assert_eq!(m.reputation_ledger().unwrap().tracked_taggers(), 1);
    }

    #[test]
    fn decisions_update_both_sides() {
        let m = mgr();
        let mut batch = WriteBatch::new();
        m.stage_decision(&mut batch, 1, 7, true, 10).unwrap();
        m.stage_decision(&mut batch, 1, 7, false, 10).unwrap();
        m.table.store().commit(batch).unwrap();

        let p = m.get(UserRole::Provider, 1).unwrap().unwrap();
        assert_eq!((p.approvals_given, p.rejections_given), (1, 1));
        let t = m.get(UserRole::Tagger, 7).unwrap().unwrap();
        assert_eq!((t.approvals_received, t.rejections_received), (1, 1));
        assert_eq!(t.earned_cents, 10);
        assert!((m.tagger_approval_rate(7).unwrap() - 0.5).abs() < 1e-12);
        assert!((m.provider_approval_rate(1).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn staged_overlay_clears_to_bounded_size_and_storage_agrees() {
        let m = mgr();
        let mut batch = WriteBatch::new();
        for t in 0..64u32 {
            m.stage_decision(&mut batch, 1, t, t % 2 == 0, 5).unwrap();
        }
        assert_eq!(m.staged_len(), 65, "64 taggers + 1 provider staged");
        m.table.store().commit(batch).unwrap();
        m.clear_staged();
        assert_eq!(m.staged_len(), 0, "overlay must be empty after resolve");
        // Reads fall through to storage and see the committed values.
        let t = m.get(UserRole::Tagger, 0).unwrap().unwrap();
        assert_eq!((t.approvals_received, t.rejections_received), (1, 0));
        assert!((m.provider_approval_rate(1).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clearing_an_abandoned_batch_discards_never_committed_records() {
        let m = mgr();
        let mut batch = WriteBatch::new();
        m.stage_decision(&mut batch, 1, 9, false, 5).unwrap();
        drop(batch); // the batch never commits (e.g. a failed merge)
        m.clear_staged();
        assert!(
            m.get(UserRole::Tagger, 9).unwrap().is_none(),
            "a record staged into an abandoned batch must not survive"
        );
    }

    #[test]
    fn reliability_gate_kicks_in_after_grace() {
        let m = mgr();
        // 2 rejections: within grace, still reliable.
        let mut batch = WriteBatch::new();
        for _ in 0..2 {
            m.stage_decision(&mut batch, 1, 9, false, 5).unwrap();
        }
        m.table.store().commit(batch).unwrap();
        assert!(m.is_reliable(9).unwrap());

        // 5 decisions, all rejected: below threshold → unreliable.
        let mut batch = WriteBatch::new();
        for _ in 0..3 {
            m.stage_decision(&mut batch, 1, 9, false, 5).unwrap();
        }
        m.table.store().commit(batch).unwrap();
        assert!(!m.is_reliable(9).unwrap());
    }

    /// Seeds `tagger` with exact counters, committed (not staged).
    fn seed_counters(m: &UserManager, tagger: u32, approved: u32, rejected: u32) {
        let mut batch = WriteBatch::new();
        m.stage_decisions(&mut batch, 1, tagger, approved, rejected, 0)
            .unwrap();
        m.table.store().commit(batch).unwrap();
        m.clear_staged();
    }

    #[test]
    fn gate_boundaries_agree_on_live_snapshot_and_ledger_paths() {
        // Default gate: threshold 0.5, grace 5.
        let m = mgr();
        seed_counters(&m, 1, 0, 4); // decided = 4 < grace → reliable
        seed_counters(&m, 2, 0, 5); // decided == grace exactly → gate applies
        seed_counters(&m, 3, 5, 5); // rate exactly == threshold → reliable
        seed_counters(&m, 4, 4, 5); // rate 4/9 < threshold → unreliable
        let snap = m.reputation_snapshot().unwrap();
        let ledger = m.reputation_ledger().unwrap();
        let lsnap = ledger.snapshot();
        let expect = [(1u32, true), (2, false), (3, true), (4, false)];
        for (tagger, reliable) in expect {
            assert_eq!(m.is_reliable(tagger).unwrap(), reliable, "live, {tagger}");
            assert_eq!(
                snap.is_reliable_with(tagger, 0, 0),
                reliable,
                "snapshot, {tagger}"
            );
            assert_eq!(
                lsnap.is_reliable_with(tagger, 0, 0),
                reliable,
                "ledger snapshot, {tagger}"
            );
        }
        // In-round overlay exactly to the boundary: tagger 2 (0/5) gains
        // 5 approvals → 5/10, exactly the threshold → reliable again.
        assert!(m.is_reliable_with(2, 5, 0).unwrap());
        assert!(snap.is_reliable_with(2, 5, 0));
        assert!(lsnap.is_reliable_with(2, 5, 0));
        // One short of the boundary stays unreliable.
        assert!(!m.is_reliable_with(2, 4, 0).unwrap());
        assert!(!snap.is_reliable_with(2, 4, 0));
        assert!(!lsnap.is_reliable_with(2, 4, 0));
    }

    #[test]
    fn banned_tagger_can_cross_back_above_threshold_mid_campaign() {
        // A tagger who fell through the gate (and was banned) keeps
        // accruing decisions from already-claimed tasks; enough approvals
        // push the rate back over the threshold and every path must flip
        // back to reliable at the same decision.
        let m = mgr();
        seed_counters(&m, 8, 1, 5); // 1/6 → unreliable (banned)
        assert!(!m.is_reliable(8).unwrap());
        let snap = m.reputation_snapshot().unwrap();
        let ledger = m.reputation_ledger().unwrap();
        let lsnap = ledger.snapshot();
        // 3 more approvals: 4/9 — still below 0.5 on every path.
        assert!(!m.is_reliable_with(8, 3, 0).unwrap());
        assert!(!snap.is_reliable_with(8, 3, 0));
        assert!(!lsnap.is_reliable_with(8, 3, 0));
        // A 4th approval: 5/10 == threshold — reliable again everywhere.
        assert!(m.is_reliable_with(8, 4, 0).unwrap());
        assert!(snap.is_reliable_with(8, 4, 0));
        assert!(lsnap.is_reliable_with(8, 4, 0));
    }

    #[test]
    fn unknown_users_are_trusted_by_default() {
        let m = mgr();
        assert!(m.is_reliable(42).unwrap());
        assert_eq!(m.tagger_approval_rate(42).unwrap(), 1.0);
    }

    #[test]
    fn reputation_snapshot_matches_live_gate_and_freezes_at_round_start() {
        let m = mgr();
        let mut batch = WriteBatch::new();
        for _ in 0..5 {
            m.stage_decision(&mut batch, 1, 9, false, 5).unwrap();
        }
        for _ in 0..6 {
            m.stage_decision(&mut batch, 1, 8, true, 5).unwrap();
        }
        m.table.store().commit(batch).unwrap();

        let snap = m.reputation_snapshot().unwrap();
        for t in [8u32, 9, 42] {
            assert_eq!(
                snap.is_reliable_with(t, 0, 0),
                m.is_reliable(t).unwrap(),
                "snapshot and live gate disagree for tagger {t}"
            );
        }
        // In-round overlays layer identically over both reads.
        assert_eq!(
            snap.is_reliable_with(42, 1, 4),
            m.is_reliable_with(42, 1, 4).unwrap()
        );

        // Later commits must not leak into the snapshot: that is exactly
        // the property the pipelined round relies on.
        let mut batch = WriteBatch::new();
        for _ in 0..7 {
            m.stage_decision(&mut batch, 1, 8, false, 5).unwrap();
        }
        m.table.store().commit(batch).unwrap();
        assert!(
            !m.is_reliable(8).unwrap(),
            "live gate sees the new rejections"
        );
        assert!(
            snap.is_reliable_with(8, 0, 0),
            "snapshot still answers from round start"
        );
    }

    #[test]
    fn decision_deltas_fold_matches_per_decision_order() {
        let decisions = [
            (3u32, true, 5u32),
            (1, false, 5),
            (3, false, 5),
            (2, true, 7),
            (3, true, 5),
        ];
        let d = DecisionDeltas::from_decisions(decisions);
        assert_eq!(
            d.per_worker,
            vec![(1, 0, 1, 0), (2, 1, 0, 7), (3, 2, 1, 10)],
            "per-worker deltas must fold and sort by worker id"
        );
        assert_eq!((d.approved_total, d.rejected_total), (3, 2));
        assert!(!d.is_empty());
        assert!(DecisionDeltas::from_decisions([]).is_empty());
    }

    #[test]
    fn ledger_apply_fold_matches_a_rescan_and_snapshots_freeze() {
        let m = mgr();
        seed_counters(&m, 5, 2, 3);
        let mut ledger = m.reputation_ledger().unwrap();
        let round_start = ledger.snapshot();

        // A round commits deltas for taggers 5 and 6; the ledger applies
        // the same deltas on the merger side.
        let deltas =
            DecisionDeltas::from_decisions([(5u32, true, 4u32), (5, true, 4), (6, false, 4)]);
        let mut batch = WriteBatch::new();
        m.stage_round_deltas(&mut batch, 1, &deltas).unwrap();
        m.table.store().commit(batch).unwrap();
        m.clear_staged();
        ledger.apply(&deltas);

        // The outstanding round-start snapshot is frozen: pending deltas
        // are invisible until the fold.
        assert_eq!(
            round_start.counters.get(&5).copied(),
            Some((2, 3)),
            "snapshot must keep the round-start view while deltas are pending"
        );
        drop(round_start);
        ledger.fold_pending();

        // After the fold the ledger's snapshot equals a fresh rescan.
        let folded = ledger.snapshot();
        let rescan = m.reputation_snapshot().unwrap();
        assert_eq!(
            *folded.counters, *rescan.counters,
            "ledger diverged from the tagger table"
        );
        assert_eq!(folded.counters.get(&5).copied(), Some((4, 3)));
        assert_eq!(folded.counters.get(&6).copied(), Some((0, 1)));

        // bump (the serial path) keeps matching the table too.
        let mut batch = WriteBatch::new();
        m.stage_decision(&mut batch, 1, 6, true, 4).unwrap();
        m.table.store().commit(batch).unwrap();
        m.clear_staged();
        ledger.bump(6, 1, 0);
        assert_eq!(
            *ledger.snapshot().counters,
            *m.reputation_snapshot().unwrap().counters
        );
    }

    #[test]
    fn role_range_end_is_overflow_safe() {
        assert_eq!(role_range_end(0), Some((1, 0)));
        assert_eq!(role_range_end(1), Some((2, 0)));
        assert_eq!(
            role_range_end(u16::MAX),
            None,
            "the last role tag must scan open-ended, not wrap to an empty range"
        );
    }

    #[test]
    fn role_scan_reaches_rows_under_the_maximum_role_tag() {
        // No current role uses tag u16::MAX, but the scan helpers must not
        // silently rely on that: plant a row under the max tag directly
        // and prove the same bound construction still enumerates it.
        let m = mgr();
        let record = UserRecord::new(UserRole::Tagger, 5, "edge".into());
        let mut key = Vec::new();
        use itag_store::table::KeyCodec;
        (u16::MAX, 5u32).encode_into(&mut key);
        m.table
            .store()
            .put(
                UserRecord::TABLE,
                key,
                itag_store::serbin::to_bytes(&record).unwrap(),
            )
            .unwrap();
        let mut seen = 0;
        m.table
            .for_each_range(
                &(u16::MAX, 0u32),
                role_range_end(u16::MAX).as_ref(),
                |_: UserRecord| {
                    seen += 1;
                    true
                },
            )
            .unwrap();
        assert_eq!(seen, 1, "row under the max role tag was not scanned");
    }

    #[test]
    fn taggers_listing_filters_providers() {
        let m = mgr();
        m.register(UserRole::Provider, 1, "p").unwrap();
        m.register(UserRole::Tagger, 1, "t1").unwrap();
        m.register(UserRole::Tagger, 2, "t2").unwrap();
        assert_eq!(m.taggers().unwrap().len(), 2);
    }
}
