//! Storable entity records (the engine's row types).

use crate::tables;
use itag_model::dataset::Dataset;
use itag_model::ids::{PostId, ProjectId, ResourceId, TagId};
use itag_model::post::Post;
use itag_model::resource::Resource;
use itag_store::table::{Entity, IndexDef};
use itag_store::TableId;
use serde::{Deserialize, Serialize};

/// A resource owned by a project, with its live post count and latest
/// quality. The quality rides on the resource row (rather than a separate
/// per-resource snapshot table) so the hot path stages **one** record per
/// touched resource per round — posts, index position and quality commit
/// together, atomically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceRecord {
    pub project: ProjectId,
    pub resource: Resource,
    /// Approved posts (the `k_i` that drives quality).
    pub posts: u32,
    /// Latest `q_i` snapshot (what survives restarts; the live series
    /// stays in [`crate::quality_mgr::ProjectQuality`]).
    pub quality: f64,
    /// Set by the provider's Stop button.
    pub stopped: bool,
}

impl Entity for ResourceRecord {
    const TABLE: TableId = tables::RESOURCES;
    const NAME: &'static str = "resource";
    type Key = (ProjectId, ResourceId);

    fn primary_key(&self) -> Self::Key {
        (self.project, self.resource.id)
    }
}

/// Secondary index `(project, post count) → (project, resource)`:
/// the Fewest-Posts scan as a single ordered range read.
pub const IDX_RESOURCE_BY_POSTCOUNT: IndexDef<ResourceRecord, (ProjectId, u32)> = IndexDef {
    table: tables::IDX_RESOURCE_BY_POSTCOUNT,
    extract: |r| (r.project, r.posts),
};

/// One dictionary entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagRecord {
    pub id: TagId,
    pub text: String,
}

impl Entity for TagRecord {
    const TABLE: TableId = tables::TAGS;
    const NAME: &'static str = "tag";
    type Key = TagId;

    fn primary_key(&self) -> Self::Key {
        self.id
    }
}

/// A stored post, annotated with its project.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PostRecord {
    pub project: ProjectId,
    pub post: Post,
}

impl Entity for PostRecord {
    const TABLE: TableId = tables::POSTS;
    const NAME: &'static str = "post";
    type Key = PostId;

    fn primary_key(&self) -> Self::Key {
        self.post.id
    }
}

/// Secondary index `(project, resource) → post id`: a resource's post
/// sequence as an ordered scan.
pub const IDX_POSTS_BY_RESOURCE: IndexDef<PostRecord, (ProjectId, ResourceId)> = IndexDef {
    table: tables::IDX_POSTS_BY_RESOURCE,
    extract: |p| (p.project, p.post.resource),
};

/// Secondary index `(project, tagger) → post id`: a tagger's history on a
/// project ("taggers can … view their historical tagging data", Fig. 8).
pub const IDX_POSTS_BY_TAGGER: IndexDef<PostRecord, (ProjectId, itag_model::ids::TaggerId)> =
    IndexDef {
        table: tables::IDX_POSTS_BY_TAGGER,
        extract: |p| (p.project, p.post.tagger),
    };

/// User roles (one table serves both sides of the marketplace).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UserRole {
    Provider,
    Tagger,
}

impl UserRole {
    /// Key discriminant.
    pub fn tag(self) -> u16 {
        match self {
            UserRole::Provider => 0,
            UserRole::Tagger => 1,
        }
    }
}

/// A provider or tagger profile with two-sided approval counters
/// (Section III-A's User Manager).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserRecord {
    pub role: UserRole,
    pub id: u32,
    pub name: String,
    /// Decisions received on this user's submissions (tagger side).
    pub approvals_received: u32,
    pub rejections_received: u32,
    /// Decisions this user made on others' submissions (provider side).
    pub approvals_given: u32,
    pub rejections_given: u32,
    pub earned_cents: u64,
}

impl UserRecord {
    pub fn new(role: UserRole, id: u32, name: String) -> Self {
        UserRecord {
            role,
            id,
            name,
            approvals_received: 0,
            rejections_received: 0,
            approvals_given: 0,
            rejections_given: 0,
            earned_cents: 0,
        }
    }

    /// "The ratio of providers approving the tags of a given tagger."
    pub fn approval_rate_received(&self) -> f64 {
        let n = self.approvals_received + self.rejections_received;
        if n == 0 {
            1.0
        } else {
            self.approvals_received as f64 / n as f64
        }
    }

    /// "The ratio of taggers approving a provider" — realized here as the
    /// provider's generosity: the share of submissions they approve (a
    /// provider who "holds back on approving tags" scores low).
    pub fn approval_rate_given(&self) -> f64 {
        let n = self.approvals_given + self.rejections_given;
        if n == 0 {
            1.0
        } else {
            self.approvals_given as f64 / n as f64
        }
    }
}

impl Entity for UserRecord {
    const TABLE: TableId = tables::USERS;
    const NAME: &'static str = "user";
    type Key = (u16, u32);

    fn primary_key(&self) -> Self::Key {
        (self.role.tag(), self.id)
    }
}

/// The simulation dataset backing a project (latents + popularity),
/// persisted so an engine reopen can resume the campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetRecord {
    pub project: ProjectId,
    pub dataset: Dataset,
}

impl Entity for DatasetRecord {
    const TABLE: TableId = tables::DATASETS;
    const NAME: &'static str = "dataset";
    type Key = ProjectId;

    fn primary_key(&self) -> Self::Key {
        self.project
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itag_model::resource::ResourceKind;
    use itag_store::serbin;

    #[test]
    fn resource_record_roundtrip_and_key() {
        let r = ResourceRecord {
            project: ProjectId(2),
            resource: Resource::synthetic(ResourceId(5), ResourceKind::WebUrl),
            posts: 3,
            quality: 0.75,
            stopped: false,
        };
        assert_eq!(r.primary_key(), (ProjectId(2), ResourceId(5)));
        let bytes = serbin::to_bytes(&r).unwrap();
        let back: ResourceRecord = serbin::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn borrowed_post_tuple_encodes_like_post_record() {
        // TagManager::stage_post serializes `(project, &post)` instead of
        // building a PostRecord (saves cloning the tag vector per post);
        // serbin encodes structs and tuples as plain field concatenation,
        // so the two layouts must stay byte-identical.
        let post = Post::new(
            PostId(7),
            ResourceId(3),
            itag_model::ids::TaggerId(11),
            vec![TagId(1), TagId(2), TagId(9)],
            4,
            123,
        );
        let record = PostRecord {
            project: ProjectId(5),
            post: post.clone(),
        };
        let via_record = serbin::to_bytes(&record).unwrap();
        let via_tuple = serbin::to_bytes(&(ProjectId(5), &post)).unwrap();
        assert_eq!(via_record, via_tuple);
        let back: PostRecord = serbin::from_bytes(&via_tuple).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn user_rates_start_at_full_trust() {
        let u = UserRecord::new(UserRole::Tagger, 1, "t".into());
        assert_eq!(u.approval_rate_received(), 1.0);
        assert_eq!(u.approval_rate_given(), 1.0);
    }

    #[test]
    fn user_rates_reflect_counters() {
        let mut u = UserRecord::new(UserRole::Tagger, 1, "t".into());
        u.approvals_received = 8;
        u.rejections_received = 2;
        assert!((u.approval_rate_received() - 0.8).abs() < 1e-12);
        u.approvals_given = 1;
        u.rejections_given = 3;
        assert!((u.approval_rate_given() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn role_tags_are_distinct() {
        assert_ne!(UserRole::Provider.tag(), UserRole::Tagger.tag());
        let p = UserRecord::new(UserRole::Provider, 7, "p".into());
        let t = UserRecord::new(UserRole::Tagger, 7, "t".into());
        assert_ne!(p.primary_key(), t.primary_key());
    }
}
