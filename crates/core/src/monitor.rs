//! Monitoring views — the provider screens of Figs. 3, 5 and 6 as data:
//! the sortable project table, the quality-evolution series, and the
//! single-resource drill-down.

use itag_model::ids::{ProjectId, ResourceId};
use itag_quality::aggregate::QualitySummary;
use itag_quality::history::QualityPoint;
use itag_strategy::framework::BudgetPoint;
use serde::{Deserialize, Serialize};

/// One row of the provider's resource table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceRow {
    pub id: ResourceId,
    pub uri: String,
    pub posts: u32,
    pub quality: f64,
    pub stopped: bool,
}

/// Sort orders for the main UI table ("projects are listed and can be
/// sorted according to some rules (e.g., tagging quality)").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortKey {
    /// Ascending quality — worst first, the triage view.
    QualityAsc,
    /// Descending quality.
    QualityDesc,
    /// Fewest posts first.
    PostsAsc,
    /// Resource id.
    Id,
}

/// A point-in-time view of a project (Fig. 3 + Fig. 5).
///
/// `PartialEq` compares every field (including the float series exactly) —
/// the concurrency determinism suite relies on bit-for-bit equality of
/// snapshots taken at different thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonitorSnapshot {
    pub project: ProjectId,
    pub name: String,
    pub state: String,
    pub strategy: String,
    /// `q(R)` under the configured metric.
    pub quality_mean: f64,
    /// `q(R)` when the campaign started.
    pub quality_initial: f64,
    /// Ground-truth quality (simulation oracle; a deployment would omit).
    pub oracle_quality: f64,
    pub budget_total: u32,
    pub budget_spent: u32,
    pub open_tasks: usize,
    pub tasks_approved: u64,
    pub tasks_rejected: u64,
    /// Taggers banned by the reliability gate.
    pub banned_taggers: usize,
    /// Money: (still escrowed, paid to taggers, refunded).
    pub escrowed: u64,
    pub paid: u64,
    pub refunded: u64,
    /// Distribution of per-resource qualities (percentiles and spread).
    pub quality_summary: QualitySummary,
    /// Quality trajectory over spent budget (the Fig. 5 chart).
    pub series: Vec<BudgetPoint>,
    pub rows: Vec<ResourceRow>,
}

impl MonitorSnapshot {
    /// The headline the provider watches: quality improvement so far.
    pub fn improvement(&self) -> f64 {
        self.quality_mean - self.quality_initial
    }

    /// Sorts the resource table (stable, deterministic tie-breaks by id).
    pub fn sort_rows(&mut self, key: SortKey) {
        match key {
            SortKey::QualityAsc => self
                .rows
                .sort_by(|a, b| a.quality.total_cmp(&b.quality).then(a.id.cmp(&b.id))),
            SortKey::QualityDesc => self
                .rows
                .sort_by(|a, b| b.quality.total_cmp(&a.quality).then(a.id.cmp(&b.id))),
            SortKey::PostsAsc => self
                .rows
                .sort_by(|a, b| a.posts.cmp(&b.posts).then(a.id.cmp(&b.id))),
            SortKey::Id => self.rows.sort_by_key(|r| r.id),
        }
    }

    /// Renders the Fig. 3-style console table (top `limit` rows).
    pub fn render_table(&self, limit: usize) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "project {} [{}] strategy={} quality {:.4} (Δ {:+.4}) budget {}/{} open={}",
            self.name,
            self.state,
            self.strategy,
            self.quality_mean,
            self.improvement(),
            self.budget_spent,
            self.budget_total,
            self.open_tasks,
        );
        let _ = writeln!(
            out,
            "{:>6} {:<28} {:>6} {:>8} {:>7}",
            "id", "uri", "posts", "quality", "stopped"
        );
        for row in self.rows.iter().take(limit) {
            let _ = writeln!(
                out,
                "{:>6} {:<28} {:>6} {:>8.4} {:>7}",
                row.id.0,
                truncate_utf8(&row.uri, 28),
                row.posts,
                row.quality,
                if row.stopped { "yes" } else { "" },
            );
        }
        out
    }
}

/// The longest prefix of `s` that fits in `max_bytes` without splitting a
/// UTF-8 sequence. Byte-slicing at a fixed index panics on multi-byte
/// boundaries, which made any non-ASCII resource URI crash the monitor
/// table.
pub fn truncate_utf8(s: &str, max_bytes: usize) -> &str {
    if s.len() <= max_bytes {
        return s;
    }
    let mut end = max_bytes;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    &s[..end]
}

/// One row of the tagger-side project browser (Fig. 7): "project
/// information such as the name and the approval rate of the provider,
/// and the incentive for tagging one resource."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectListing {
    pub project: ProjectId,
    pub name: String,
    pub state: String,
    pub pay_per_task_cents: u32,
    /// The provider's generosity rate (share of submissions approved).
    pub provider_approval_rate: f64,
    /// Tasks currently claimable.
    pub open_tasks: usize,
}

/// The single-resource drill-down (Fig. 6): tags with frequencies plus the
/// quality evolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceDetail {
    pub id: ResourceId,
    pub uri: String,
    pub description: String,
    pub posts: u32,
    pub quality: f64,
    /// `(tag text, occurrences)`, most frequent first.
    pub top_tags: Vec<(String, u32)>,
    /// Quality as a function of the resource's post count.
    pub series: Vec<QualityPoint>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> MonitorSnapshot {
        MonitorSnapshot {
            project: ProjectId(1),
            name: "demo".into(),
            state: "running".into(),
            strategy: "FP-MU".into(),
            quality_mean: 0.62,
            quality_initial: 0.4,
            oracle_quality: 0.7,
            budget_total: 100,
            budget_spent: 40,
            open_tasks: 3,
            tasks_approved: 35,
            tasks_rejected: 5,
            banned_taggers: 1,
            escrowed: 15,
            paid: 175,
            refunded: 25,
            quality_summary: QualitySummary::compute(&[0.9, 0.1, 0.1]),
            series: vec![],
            rows: vec![
                ResourceRow {
                    id: ResourceId(0),
                    uri: "u0".into(),
                    posts: 9,
                    quality: 0.9,
                    stopped: false,
                },
                ResourceRow {
                    id: ResourceId(1),
                    uri: "u1".into(),
                    posts: 2,
                    quality: 0.1,
                    stopped: true,
                },
                ResourceRow {
                    id: ResourceId(2),
                    uri: "u2".into(),
                    posts: 5,
                    quality: 0.1,
                    stopped: false,
                },
            ],
        }
    }

    #[test]
    fn improvement_is_delta() {
        assert!((snapshot().improvement() - 0.22).abs() < 1e-12);
    }

    #[test]
    fn sorts_are_deterministic() {
        let mut s = snapshot();
        s.sort_rows(SortKey::QualityAsc);
        let ids: Vec<u32> = s.rows.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 2, 0], "ties broken by id");
        s.sort_rows(SortKey::QualityDesc);
        assert_eq!(s.rows[0].id, ResourceId(0));
        s.sort_rows(SortKey::PostsAsc);
        assert_eq!(s.rows[0].id, ResourceId(1));
        s.sort_rows(SortKey::Id);
        assert_eq!(s.rows[0].id, ResourceId(0));
    }

    #[test]
    fn render_produces_header_and_rows() {
        let s = snapshot();
        let out = s.render_table(2);
        assert!(out.contains("demo"));
        assert!(out.contains("FP-MU"));
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2 + 2, "header + column line + 2 rows");
    }

    #[test]
    fn render_truncates_multibyte_uris_on_char_boundaries() {
        // 33 bytes, and byte 28 falls inside a 3-byte kanji sequence —
        // the pre-fix byte slice `&uri[..28]` panicked here.
        let mut s = snapshot();
        s.rows[0].uri = "https://例.jp/資料/長い名前の頁".into();
        assert!(s.rows[0].uri.len() > 28);
        let out = s.render_table(3);
        assert!(out.contains("https://例.jp/"), "prefix survives: {out}");
        for line in out.lines() {
            assert!(line.len() < 200); // sanity: still one row per line
        }
    }

    #[test]
    fn truncate_utf8_never_splits_sequences() {
        let s = "aé字🙂"; // 1 + 2 + 3 + 4 bytes
        let expect = [
            "",
            "a",
            "a",
            "aé",
            "aé",
            "aé",
            "aé字",
            "aé字",
            "aé字",
            "aé字",
            "aé字🙂",
        ];
        for (max, want) in expect.iter().enumerate() {
            assert_eq!(truncate_utf8(s, max), *want, "max_bytes={max}");
        }
        assert_eq!(truncate_utf8("ascii", 28), "ascii");
    }
}
