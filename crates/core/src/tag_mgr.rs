//! Tag Manager — "the linking of tags to resources is handled by the Tag
//! Manager, after the desired resource has been tagged" (Section III-B).

use crate::records::{PostRecord, TagRecord, IDX_POSTS_BY_RESOURCE};
use crate::Result;
use itag_model::ids::{PostId, ProjectId, ResourceId, TagId};
use itag_model::post::Post;
use itag_model::tag::TagDictionary;
use itag_store::{Store, TypedTable, WriteBatch};
use std::sync::Arc;

/// Persists the tag dictionary and the post log.
pub struct TagManager {
    tags: TypedTable<TagRecord>,
    posts: TypedTable<PostRecord>,
    store: Arc<Store>,
}

impl TagManager {
    pub fn new(store: Arc<Store>) -> Self {
        TagManager {
            tags: TypedTable::new(Arc::clone(&store)),
            posts: TypedTable::new(Arc::clone(&store)),
            store,
        }
    }

    /// Persists a whole dictionary (idempotent upserts).
    pub fn store_dictionary(&self, dict: &TagDictionary) -> Result<()> {
        let mut batch = WriteBatch::with_capacity(dict.len());
        for i in 0..dict.len() as u32 {
            let id = TagId(i);
            if let Some(text) = dict.text(id) {
                self.tags.stage_upsert(
                    &mut batch,
                    &TagRecord {
                        id,
                        text: text.to_string(),
                    },
                )?;
            }
        }
        self.store.commit(batch)?;
        Ok(())
    }

    /// The text of a tag (empty string if unknown — display contexts only).
    /// Reads through [`TypedTable::get_arc`]: a hit clones only the text,
    /// not the whole record.
    pub fn text(&self, id: TagId) -> String {
        self.tags
            .get_arc(&id)
            .ok()
            .flatten()
            .map(|t| t.text.clone())
            .unwrap_or_default()
    }

    /// Stages one post (row + by-resource and by-tagger indexes) without
    /// cloning the post: serbin encodes structs as plain field
    /// concatenation, so the tuple `(project, &post)` produces bytes
    /// identical to a built [`PostRecord`] (pinned by a records.rs test),
    /// and the index rows are staged straight from the borrowed fields.
    pub fn stage_post(
        &self,
        batch: &mut WriteBatch,
        project: ProjectId,
        post: &Post,
    ) -> Result<()> {
        use itag_store::serbin;
        use itag_store::table::{Entity, KeyCodec};
        let pk = post.id.encoded();
        let row = serbin::to_bytes(&(project, post)).map_err(itag_store::StoreError::from)?;
        IDX_POSTS_BY_RESOURCE.stage_insert(batch, &(project, post.resource), &pk);
        crate::records::IDX_POSTS_BY_TAGGER.stage_insert(batch, &(project, post.tagger), &pk);
        batch.put(PostRecord::TABLE, pk, row);
        Ok(())
    }

    /// A tagger's post history on a project, arrival order (Fig. 8's
    /// "view their historical tagging data").
    pub fn posts_by_tagger(
        &self,
        project: ProjectId,
        tagger: itag_model::ids::TaggerId,
    ) -> Result<Vec<Post>> {
        let ids =
            crate::records::IDX_POSTS_BY_TAGGER.lookup(self.store.as_ref(), &(project, tagger))?;
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(rec) = self.posts.get(&id)? {
                out.push(rec.post);
            }
        }
        out.sort_by_key(|p| p.id);
        Ok(out)
    }

    /// The post sequence of a resource, in post-id (arrival) order.
    pub fn posts_of(&self, project: ProjectId, r: ResourceId) -> Result<Vec<Post>> {
        let ids = IDX_POSTS_BY_RESOURCE.lookup(self.store.as_ref(), &(project, r))?;
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(rec) = self.posts.get(&id)? {
                out.push(rec.post);
            }
        }
        out.sort_by_key(|p| p.id);
        Ok(out)
    }

    /// All posts of a project, arrival order. Streams the post log instead
    /// of materializing every project's posts just to filter one out.
    pub fn all_posts(&self, project: ProjectId) -> Result<Vec<Post>> {
        let mut out: Vec<Post> = Vec::new();
        self.posts.for_each(|p: PostRecord| {
            if p.project == project {
                out.push(p.post);
            }
            true
        })?;
        out.sort_by_key(|p| p.id);
        Ok(out)
    }

    /// Total stored posts (all projects).
    pub fn post_count(&self) -> usize {
        self.posts.count()
    }

    /// Largest stored post id (for id-counter recovery on reopen).
    pub fn last_post_id(&self) -> Option<PostId> {
        use itag_store::table::{Entity, KeyCodec};
        self.store
            .last_key(PostRecord::TABLE)
            .and_then(|k| PostId::decode(&k).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itag_model::ids::TaggerId;

    fn mgr() -> TagManager {
        TagManager::new(Arc::new(Store::in_memory()))
    }

    const P: ProjectId = ProjectId(1);

    fn post(id: u64, resource: u32, seq: u32) -> Post {
        Post::new(
            PostId(id),
            ResourceId(resource),
            TaggerId(0),
            vec![TagId(1), TagId(2)],
            seq,
            id,
        )
    }

    #[test]
    fn dictionary_roundtrip() {
        let m = mgr();
        let mut d = TagDictionary::new();
        d.intern("rust");
        d.intern("database");
        m.store_dictionary(&d).unwrap();
        assert_eq!(m.text(TagId(0)), "rust");
        assert_eq!(m.text(TagId(1)), "database");
        assert_eq!(m.text(TagId(9)), "");
    }

    #[test]
    fn post_sequences_are_per_resource_and_ordered() {
        let m = mgr();
        let mut batch = WriteBatch::new();
        m.stage_post(&mut batch, P, &post(2, 1, 2)).unwrap();
        m.stage_post(&mut batch, P, &post(0, 1, 1)).unwrap();
        m.stage_post(&mut batch, P, &post(1, 2, 1)).unwrap();
        m.posts.store().commit(batch).unwrap();

        let seq = m.posts_of(P, ResourceId(1)).unwrap();
        assert_eq!(seq.len(), 2);
        assert!(seq[0].id < seq[1].id);
        assert_eq!(m.posts_of(P, ResourceId(9)).unwrap().len(), 0);
        assert_eq!(m.post_count(), 3);
        assert_eq!(m.last_post_id(), Some(PostId(2)));
    }

    #[test]
    fn all_posts_filters_by_project() {
        let m = mgr();
        let mut batch = WriteBatch::new();
        m.stage_post(&mut batch, P, &post(0, 0, 1)).unwrap();
        m.stage_post(&mut batch, ProjectId(2), &post(1, 0, 1))
            .unwrap();
        m.posts.store().commit(batch).unwrap();
        assert_eq!(m.all_posts(P).unwrap().len(), 1);
        assert_eq!(m.all_posts(ProjectId(2)).unwrap().len(), 1);
        assert_eq!(m.all_posts(ProjectId(3)).unwrap().len(), 0);
    }
}
