//! Quality Manager — "receives the budget together with other resource
//! information, creates a Project, … executes the best strategy to
//! allocate resources to taggers" and "constantly provide feedback to
//! the provider" (Section III-A).
//!
//! The per-project *live* quality state lives here: rfd histories, cached
//! qualities, learning-curve gain estimators. The engine consults it for
//! every strategy decision; the durable per-resource quality snapshot is
//! the `quality` column of [`crate::records::ResourceRecord`] (staged by
//! the Resource Manager together with the post count, so both commit
//! atomically in one record per resource per round).

use itag_model::dataset::Dataset;
use itag_model::ids::{ResourceId, TagId};
use itag_quality::gain::GainEstimator;
use itag_quality::history::ResourceQuality;
use itag_quality::metric::QualityMetric;
use itag_strategy::StrategyKind;

/// Live quality state of one project.
pub struct ProjectQuality {
    pub metric: QualityMetric,
    pub states: Vec<ResourceQuality>,
    pub qualities: Vec<f64>,
    pub counts: Vec<u32>,
    quality_sum: f64,
    pub gains: GainEstimator,
}

impl ProjectQuality {
    /// Builds state from a dataset, replaying its initial posts.
    pub fn from_dataset(dataset: &Dataset, metric: QualityMetric) -> Self {
        let n = dataset.len();
        let max_lag = match metric {
            QualityMetric::Stability { window, .. }
            | QualityMetric::SmoothedStability { window, .. } => window.max(1) as usize,
            QualityMetric::Oracle => 1,
        };
        let mut states: Vec<ResourceQuality> =
            (0..n).map(|_| ResourceQuality::new(max_lag)).collect();
        for post in &dataset.initial_posts {
            states[post.resource.index()].push_post(&post.tags);
        }
        let counts: Vec<u32> = states.iter().map(|s| s.posts()).collect();
        let qualities: Vec<f64> = states
            .iter()
            .enumerate()
            .map(|(i, s)| metric.eval(s, Some(&dataset.latent[i])))
            .collect();
        let quality_sum = qualities.iter().sum();
        let mut pq = ProjectQuality {
            metric,
            states,
            qualities,
            counts,
            quality_sum,
            gains: GainEstimator::oracle(&dataset.latent),
        };
        for i in 0..n {
            let q = pq.qualities[i];
            pq.states[i].record(q);
        }
        pq
    }

    /// Folds one approved post into resource `r`; returns the new quality.
    pub fn apply_post(&mut self, dataset: &Dataset, r: ResourceId, tags: &[TagId]) -> f64 {
        let i = r.index();
        self.states[i].push_post(tags);
        self.counts[i] += 1;
        let q = self.metric.eval(&self.states[i], Some(&dataset.latent[i]));
        self.quality_sum += q - self.qualities[i];
        self.qualities[i] = q;
        self.states[i].record(q);
        q
    }

    /// Dataset quality `q(R, k⃗)`.
    pub fn mean_quality(&self) -> f64 {
        if self.qualities.is_empty() {
            0.0
        } else {
            self.quality_sum / self.qualities.len() as f64
        }
    }

    /// Ground-truth quality under the oracle metric.
    pub fn oracle_mean_quality(&self, dataset: &Dataset) -> f64 {
        let n = self.states.len().max(1) as f64;
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| QualityMetric::Oracle.eval(s, Some(&dataset.latent[i])))
            .sum::<f64>()
            / n
    }

    /// Resources with quality at or above `tau`.
    pub fn count_quality_at_least(&self, tau: f64) -> usize {
        self.qualities.iter().filter(|&&q| q >= tau).count()
    }

    /// Resources with fewer than `t` posts.
    pub fn count_below_posts(&self, t: u32) -> usize {
        self.counts.iter().filter(|&&c| c < t).count()
    }
}

/// Advice around [`ProjectQuality`] (persistence moved onto the resource
/// rows — see the module docs).
pub struct QualityManager;

impl QualityManager {
    /// "We will help providers choose the best strategy given the current
    /// resources and tags statistics": the suggestion heuristic.
    ///
    /// * Many untagged/thin resources → the FP phase matters → FP-MU.
    /// * Coverage fine but rfds unsettled → MU.
    /// * Already stable everywhere → FC (no point steering; harvest
    ///   preferences, as Table I's FC "pro" says).
    pub fn suggest_strategy(pq: &ProjectQuality, window: u32) -> StrategyKind {
        let n = pq.counts.len().max(1);
        let thin = pq.count_below_posts(window) as f64 / n as f64;
        if thin > 0.10 {
            return StrategyKind::FpMu { min_posts: window };
        }
        let unstable = pq.qualities.iter().filter(|&&q| q < 0.8).count() as f64 / n as f64;
        if unstable > 0.05 {
            StrategyKind::MostUnstable
        } else {
            StrategyKind::FreeChoice
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use itag_model::delicious::DeliciousConfig;

    fn dataset() -> Dataset {
        DeliciousConfig::tiny(31).generate().dataset
    }

    #[test]
    fn state_builds_from_initial_posts() {
        let d = dataset();
        let expected = d.initial_counts();
        let pq = ProjectQuality::from_dataset(&d, QualityMetric::default());
        assert_eq!(pq.counts, expected);
        let mean = pq.mean_quality();
        assert!((0.0..=1.0).contains(&mean));
    }

    #[test]
    fn apply_post_moves_the_cached_mean_consistently() {
        let d = dataset();
        let mut pq = ProjectQuality::from_dataset(&d, QualityMetric::default());
        let r = ResourceId(0);
        let tags: Vec<TagId> = d.latent[0].top_k(2).to_vec();
        pq.apply_post(&d, r, &tags);
        assert_eq!(pq.counts[0], d.initial_counts()[0] + 1);
        let recomputed: f64 = pq.qualities.iter().sum::<f64>() / pq.qualities.len() as f64;
        assert!((pq.mean_quality() - recomputed).abs() < 1e-12);
    }

    #[test]
    fn suggestion_tracks_dataset_shape() {
        let d = dataset();
        let pq = ProjectQuality::from_dataset(&d, QualityMetric::default());
        // The tiny Delicious corpus has a thin tail → hybrid suggested.
        assert_eq!(
            QualityManager::suggest_strategy(&pq, 5),
            StrategyKind::FpMu { min_posts: 5 }
        );

        // Saturate every resource with identical posts → stable → FC.
        let mut pq = ProjectQuality::from_dataset(&d, QualityMetric::default());
        for i in 0..d.len() {
            let tags: Vec<TagId> = d.latent[i].top_k(2).to_vec();
            for _ in 0..12 {
                pq.apply_post(&d, ResourceId(i as u32), &tags);
            }
        }
        assert_eq!(
            QualityManager::suggest_strategy(&pq, 5),
            StrategyKind::FreeChoice
        );
    }

    #[test]
    fn threshold_counters() {
        let d = dataset();
        let pq = ProjectQuality::from_dataset(&d, QualityMetric::default());
        assert_eq!(pq.count_quality_at_least(0.0), d.len());
        assert_eq!(pq.count_quality_at_least(1.1), 0);
        assert!(pq.count_below_posts(u32::MAX) == d.len());
    }
}
